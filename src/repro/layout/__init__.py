"""Layout data model: pins, nets, wire segments (active lines), the routed
layout container, per-net RC trees, and validation."""

from repro.layout.net import Net, Pin
from repro.layout.segment import Direction, WireSegment
from repro.layout.rctree import LineTiming, RCTree, OHM_FF_TO_PS
from repro.layout.layout import FillFeature, RoutedLayout
from repro.layout.validate import ValidationReport, validate_fill, validate_layout

__all__ = [
    "Net",
    "Pin",
    "Direction",
    "WireSegment",
    "LineTiming",
    "RCTree",
    "OHM_FF_TO_PS",
    "FillFeature",
    "RoutedLayout",
    "ValidationReport",
    "validate_fill",
    "validate_layout",
]
