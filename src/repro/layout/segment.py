"""Wire segments ("active lines").

A :class:`WireSegment` is one axis-aligned piece of routed wire, described
by its *signal-oriented* centerline: ``start`` is the end electrically
closer to the driver, ``end`` the end closer to the sinks. The paper's
per-tile formulations need exactly this orientation to compute the entry
resistance ``R_l`` and the cumulative resistance along the line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LayoutError
from repro.geometry import Point, Rect


class Direction(enum.Enum):
    """Signal flow direction of an axis-aligned segment."""

    EAST = "+x"
    WEST = "-x"
    NORTH = "+y"
    SOUTH = "-y"

    @property
    def is_horizontal(self) -> bool:
        return self in (Direction.EAST, Direction.WEST)

    @property
    def sign(self) -> int:
        """+1 for increasing-coordinate flow, -1 for decreasing."""
        return 1 if self in (Direction.EAST, Direction.NORTH) else -1


@dataclass(frozen=True)
class WireSegment:
    """One axis-aligned routed wire piece, oriented driver → sink side.

    Attributes:
        net: owning net name.
        index: identifier unique within the net.
        layer: routing layer name.
        start: centerline endpoint nearer the driver, DBU.
        end: centerline endpoint nearer the sinks, DBU.
        width: wire width, DBU.
    """

    net: str
    index: int
    layer: str
    start: Point
    end: Point
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise LayoutError(f"segment {self.net}:{self.index}: width must be positive")
        if self.start == self.end:
            raise LayoutError(f"segment {self.net}:{self.index}: zero-length segment")
        if self.start.x != self.end.x and self.start.y != self.end.y:
            raise LayoutError(
                f"segment {self.net}:{self.index}: not axis-aligned "
                f"({self.start} -> {self.end})"
            )

    # -- orientation -------------------------------------------------------

    @property
    def direction(self) -> Direction:
        """Signal flow direction."""
        if self.start.y == self.end.y:
            return Direction.EAST if self.end.x > self.start.x else Direction.WEST
        return Direction.NORTH if self.end.y > self.start.y else Direction.SOUTH

    @property
    def is_horizontal(self) -> bool:
        """True for E/W segments."""
        return self.start.y == self.end.y

    @property
    def length(self) -> int:
        """Centerline length, DBU."""
        return abs(self.end.x - self.start.x) + abs(self.end.y - self.start.y)

    # -- geometry ------------------------------------------------------------

    @property
    def rect(self) -> Rect:
        """Drawn metal rectangle: centerline expanded by width/2 laterally
        and capped with square (width/2) end extensions, matching typical
        DEF wire semantics."""
        half = self.width // 2
        xlo, xhi = min(self.start.x, self.end.x), max(self.start.x, self.end.x)
        ylo, yhi = min(self.start.y, self.end.y), max(self.start.y, self.end.y)
        return Rect(xlo - half, ylo - half, xhi + half, yhi + half)

    @property
    def low_coord(self) -> int:
        """Smaller centerline coordinate along the routing axis."""
        return min(self.start.x, self.end.x) if self.is_horizontal else min(self.start.y, self.end.y)

    @property
    def high_coord(self) -> int:
        """Larger centerline coordinate along the routing axis."""
        return max(self.start.x, self.end.x) if self.is_horizontal else max(self.start.y, self.end.y)

    @property
    def cross_coord(self) -> int:
        """Centerline coordinate on the axis perpendicular to routing
        (the y of a horizontal line, the x of a vertical one)."""
        return self.start.y if self.is_horizontal else self.start.x

    def reversed(self) -> "WireSegment":
        """Same geometry with opposite signal orientation."""
        return WireSegment(self.net, self.index, self.layer, self.end, self.start, self.width)

    def distance_from_start(self, axis_coord: int) -> int:
        """Distance (DBU, >= 0) along the wire from ``start`` to the point
        whose routing-axis coordinate is ``axis_coord`` (clamped to the
        segment extent)."""
        coord = min(max(axis_coord, self.low_coord), self.high_coord)
        origin = self.start.x if self.is_horizontal else self.start.y
        return abs(coord - origin)
