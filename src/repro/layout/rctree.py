"""Per-net RC trees.

Builds an electrically annotated routing tree from a net's segments:

* splits segments at T-junctions and pin taps so every electrical node is a
  tree vertex,
* orients every segment driver → sink side (signal flow),
* computes the *upstream resistance* at every node (paper's "entry
  resistance" ``R_l`` is this, evaluated where a line enters a tile),
* counts *downstream sinks* per line (the weight ``W_l`` of Section 4),
* evaluates Elmore sink delays (paper Eq. 8) and delay increments for
  capacitance added at any position on any line (paper Eq. 9).

Units: resistance Ω, capacitance fF, delay ps (Ω·fF = 10⁻³ ps).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

from repro.errors import LayoutError
from repro.geometry import Point
from repro.layout.net import Net
from repro.layout.segment import WireSegment
from repro.tech.process import ProcessStack

#: Ω·fF to picoseconds.
OHM_FF_TO_PS = 1e-3


@dataclass(frozen=True)
class LineTiming:
    """Electrical annotation of one oriented active line.

    Attributes:
        segment: the oriented wire segment (start = driver side).
        upstream_res: total resistance from the net driver (including its
            output resistance and any via into this line) to
            ``segment.start``, Ω.
        unit_res: wire resistance per DBU of length, Ω/DBU.
        downstream_sinks: number of sink pins whose driver→sink path passes
            through this line (the weight ``W_l``).
        via_res: lumped via resistance charged where the routing changed
            layer onto this line (already folded into ``upstream_res``;
            kept separately for Elmore edge accounting), Ω.
    """

    segment: WireSegment
    upstream_res: float
    unit_res: float
    downstream_sinks: int
    via_res: float = 0.0

    def resistance_at(self, axis_coord: int) -> float:
        """Total upstream resistance at the point of this line whose
        routing-axis coordinate is ``axis_coord`` (paper's
        ``R_l + Σ r_l`` term), Ω."""
        return self.upstream_res + self.unit_res * self.segment.distance_from_start(axis_coord)


def _on_interior(seg: WireSegment, p: Point) -> bool:
    """True when ``p`` lies strictly inside the centerline of ``seg``."""
    if seg.is_horizontal:
        return p.y == seg.start.y and min(seg.start.x, seg.end.x) < p.x < max(seg.start.x, seg.end.x)
    return p.x == seg.start.x and min(seg.start.y, seg.end.y) < p.y < max(seg.start.y, seg.end.y)


class RCTree:
    """Oriented, electrically annotated routing tree of one net.

    Build with :meth:`RCTree.build`; the input net's segments may be in any
    orientation — the tree re-orients them by tracing signal flow from the
    driver pin.
    """

    def __init__(
        self,
        net: Net,
        lines: list[LineTiming],
        node_points: list[Point],
        parent: list[int],
        parent_line: list[int],
        node_cap: list[float],
        upstream_res: list[float],
        sink_nodes: dict[str, int],
    ):
        self.net = net
        self.lines = lines
        self._points = node_points
        self._parent = parent
        self._parent_line = parent_line
        self._node_cap = node_cap
        self._upstream_res = upstream_res
        self._sink_nodes = sink_nodes

    # -- construction -------------------------------------------------------

    @staticmethod
    def build(net: Net, stack: ProcessStack) -> "RCTree":
        """Construct the RC tree of ``net`` against process ``stack``.

        Raises :class:`LayoutError` when the routing is not a connected
        tree over all pins (cycle, disconnect, pin off-wire).
        """
        if not net.segments:
            raise LayoutError(f"net {net.name}: no routing segments")
        driver = net.driver  # validates single driver
        pieces = RCTree._split_segments(net)

        # Node table over all endpoints.
        node_index: dict[Point, int] = {}

        def node_of(p: Point) -> int:
            if p not in node_index:
                node_index[p] = len(node_index)
            return node_index[p]

        adjacency: dict[int, list[tuple[int, WireSegment]]] = defaultdict(list)
        for seg in pieces:
            u, v = node_of(seg.start), node_of(seg.end)
            adjacency[u].append((v, seg))
            adjacency[v].append((u, seg))

        for pin in net.pins:
            if pin.point not in node_index:
                raise LayoutError(
                    f"net {net.name}: pin {pin.name} at {pin.point} is not on the routing"
                )

        # BFS from the driver: orientation, parents, cycle/disconnect checks.
        n = len(node_index)
        root = node_index[driver.point]
        parent = [-1] * n
        parent_seg: list[WireSegment | None] = [None] * n
        order: list[int] = [root]
        visited = [False] * n
        visited[root] = True
        queue: deque[int] = deque([root])
        edge_count = 0
        while queue:
            u = queue.popleft()
            for v, seg in adjacency[u]:
                if visited[v]:
                    continue
                visited[v] = True
                parent[v] = u
                parent_seg[v] = seg
                order.append(v)
                queue.append(v)
                edge_count += 1
        if not all(visited):
            raise LayoutError(f"net {net.name}: routing is disconnected")
        if edge_count != len(pieces):
            raise LayoutError(f"net {net.name}: routing contains a cycle")

        # Node capacitances: half of each wire's ground cap at each end,
        # plus sink load caps.
        points_by_id = [None] * n
        for p, i in node_index.items():
            points_by_id[i] = p
        node_cap = [0.0] * n
        unit_res_of: dict[int, float] = {}
        via_res_of: dict[int, float] = {}
        arrival_layer: dict[int, str] = {root: driver.layer}
        dbu = stack.dbu_per_micron
        oriented_lines: list[WireSegment] = []
        line_of_node: list[int] = [-1] * n  # line index whose end is this node
        for v in order[1:]:
            seg = parent_seg[v]
            assert seg is not None
            u = parent[v]
            start, end = points_by_id[u], points_by_id[v]
            oriented = WireSegment(seg.net, len(oriented_lines), seg.layer, start, end, seg.width)
            layer = stack.layer(seg.layer)
            length_um = oriented.length / dbu
            wire_cap = layer.ground_cap_ff_per_um * length_um
            node_cap[u] += wire_cap / 2.0
            node_cap[v] += wire_cap / 2.0
            unit_res_of[oriented.index] = layer.unit_resistance(seg.width, dbu) / dbu
            # A layer change at the entry node costs one via.
            via_res_of[oriented.index] = (
                stack.via_res_ohm if seg.layer != arrival_layer[u] else 0.0
            )
            arrival_layer[v] = seg.layer
            line_of_node[v] = oriented.index
            oriented_lines.append(oriented)

        sink_nodes: dict[str, int] = {}
        for pin in net.sinks:
            node_cap[node_index[pin.point]] += pin.load_cap_ff
            sink_nodes[pin.name] = node_index[pin.point]

        # Downstream sink counts per node (post-order accumulate).
        sink_count = [0] * n
        for node in sink_nodes.values():
            sink_count[node] += 1
        for v in reversed(order[1:]):
            sink_count[parent[v]] += sink_count[v]

        # Upstream resistance per node (pre-order), root carries driver res.
        upstream = [0.0] * n
        upstream[root] = driver.driver_res_ohm
        for v in order[1:]:
            seg = oriented_lines[line_of_node[v]]
            upstream[v] = (
                upstream[parent[v]]
                + via_res_of[seg.index]
                + unit_res_of[seg.index] * seg.length
            )

        lines = [
            LineTiming(
                segment=seg,
                upstream_res=upstream[node_index[seg.start]] + via_res_of[seg.index],
                unit_res=unit_res_of[seg.index],
                downstream_sinks=sink_count[node_index[seg.end]],
                via_res=via_res_of[seg.index],
            )
            for seg in oriented_lines
        ]
        parent_line_arr = [line_of_node[v] for v in range(n)]
        return RCTree(
            net=net,
            lines=lines,
            node_points=points_by_id,
            parent=parent,
            parent_line=parent_line_arr,
            node_cap=node_cap,
            upstream_res=upstream,
            sink_nodes=sink_nodes,
        )

    @staticmethod
    def _split_segments(net: Net) -> list[WireSegment]:
        """Split raw segments at T-junctions and interior pin taps so every
        electrical node is a segment endpoint."""
        breakpoints: set[Point] = set()
        for seg in net.segments:
            breakpoints.add(seg.start)
            breakpoints.add(seg.end)
        for pin in net.pins:
            breakpoints.add(pin.point)

        pieces: list[WireSegment] = []
        counter = 0
        for seg in net.segments:
            interior = sorted(
                (p for p in breakpoints if _on_interior(seg, p)),
                key=lambda p: seg.distance_from_start(p.x if seg.is_horizontal else p.y),
            )
            chain = [seg.start, *interior, seg.end]
            for a, b in zip(chain, chain[1:]):
                pieces.append(WireSegment(seg.net, counter, seg.layer, a, b, seg.width))
                counter += 1
        return pieces

    # -- queries ------------------------------------------------------------

    @property
    def sink_names(self) -> list[str]:
        """Sink pin names in declaration order."""
        return [p.name for p in self.net.sinks]

    @property
    def total_sinks(self) -> int:
        """Number of sink pins."""
        return len(self._sink_nodes)

    def line(self, index: int) -> LineTiming:
        """Line annotation by line index."""
        return self.lines[index]

    def elmore_delays(self) -> dict[str, float]:
        """Elmore delay (ps) at every sink, paper Eq. 8.

        τ(sink) = Σ_v C_v · R(common upstream path of v and sink), computed
        edge-wise: each line contributes R_line · C(subtree below it) to all
        sinks below it.
        """
        n = len(self._points)
        # Subtree capacitance below each node.
        subtree_cap = list(self._node_cap)
        order = self._topological_order()
        for v in reversed(order[1:]):
            subtree_cap[self._parent[v]] += subtree_cap[v]
        # Delay accumulates down the tree: tau(v) = tau(parent) + R_edge * C_subtree(v)
        # plus the driver resistance charging everything.
        tau = [0.0] * n
        root = order[0]
        driver_res = self._upstream_res[root]
        tau[root] = driver_res * subtree_cap[root]
        for v in order[1:]:
            line = self.lines[self._parent_line[v]]
            r_edge = line.via_res + line.unit_res * line.segment.length
            tau[v] = tau[self._parent[v]] + r_edge * subtree_cap[v]
        return {
            name: tau[node] * OHM_FF_TO_PS for name, node in self._sink_nodes.items()
        }

    def delay_increment(self, line_index: int, axis_coord: int, added_cap_ff: float) -> float:
        """Elmore delay increment (ps) at *each* downstream sink when
        ``added_cap_ff`` is attached to line ``line_index`` at routing-axis
        coordinate ``axis_coord`` (paper Eq. 9)."""
        line = self.lines[line_index]
        return line.resistance_at(axis_coord) * added_cap_ff * OHM_FF_TO_PS

    def weighted_delay_increment(self, line_index: int, axis_coord: int, added_cap_ff: float) -> float:
        """Total sink-delay increment (ps) summed over downstream sinks —
        the weighted objective contribution of Section 4."""
        line = self.lines[line_index]
        return line.downstream_sinks * self.delay_increment(line_index, axis_coord, added_cap_ff)

    def _topological_order(self) -> list[int]:
        """Nodes in BFS order from the root (parents before children)."""
        n = len(self._points)
        children: dict[int, list[int]] = defaultdict(list)
        root = -1
        for v in range(n):
            if self._parent[v] == -1:
                root = v
            else:
                children[self._parent[v]].append(v)
        order = [root]
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v in children[u]:
                order.append(v)
                queue.append(v)
        return order
