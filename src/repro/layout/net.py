"""Nets and pins."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LayoutError
from repro.geometry import Point
from repro.layout.segment import WireSegment


@dataclass(frozen=True)
class Pin:
    """A net terminal.

    Attributes:
        name: pin name, unique within the net.
        point: location (on the wire tree), DBU.
        layer: layer the pin connects on.
        is_driver: True for the (single) source of the net.
        load_cap_ff: sink input capacitance, fF (ignored on drivers).
        driver_res_ohm: driver output resistance, Ω (ignored on sinks).
    """

    name: str
    point: Point
    layer: str
    is_driver: bool = False
    load_cap_ff: float = 0.0
    driver_res_ohm: float = 0.0

    def __post_init__(self) -> None:
        if self.load_cap_ff < 0:
            raise LayoutError(f"pin {self.name}: load capacitance must be non-negative")
        if self.driver_res_ohm < 0:
            raise LayoutError(f"pin {self.name}: driver resistance must be non-negative")


@dataclass
class Net:
    """A routed signal net: one driver pin, one or more sinks, and a list of
    wire segments forming a connected routing tree."""

    name: str
    pins: list[Pin] = field(default_factory=list)
    segments: list[WireSegment] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise LayoutError("net name must be non-empty")

    @property
    def driver(self) -> Pin:
        """The unique driver pin."""
        drivers = [p for p in self.pins if p.is_driver]
        if len(drivers) != 1:
            raise LayoutError(f"net {self.name}: expected exactly 1 driver, found {len(drivers)}")
        return drivers[0]

    @property
    def sinks(self) -> list[Pin]:
        """All non-driver pins, in declaration order."""
        return [p for p in self.pins if not p.is_driver]

    @property
    def total_wirelength(self) -> int:
        """Sum of centerline lengths, DBU."""
        return sum(seg.length for seg in self.segments)

    def add_pin(self, pin: Pin) -> None:
        """Attach a pin; names must stay unique within the net."""
        if any(p.name == pin.name for p in self.pins):
            raise LayoutError(f"net {self.name}: duplicate pin name {pin.name!r}")
        self.pins.append(pin)

    def add_segment(self, segment: WireSegment) -> None:
        """Attach a wire segment; it must belong to this net."""
        if segment.net != self.name:
            raise LayoutError(
                f"segment claims net {segment.net!r} but is added to net {self.name!r}"
            )
        if any(s.index == segment.index for s in self.segments):
            raise LayoutError(f"net {self.name}: duplicate segment index {segment.index}")
        self.segments.append(segment)

    def segment_by_index(self, index: int) -> WireSegment:
        """Look a segment up by its per-net index."""
        for seg in self.segments:
            if seg.index == index:
                return seg
        raise LayoutError(f"net {self.name}: no segment with index {index}")
