"""Layout validation.

Checks the invariants the PIL-Fill flow relies on:

* every net has exactly one driver and at least one sink,
* routing forms a connected tree over all pins (delegated to RCTree),
* all geometry lies inside the die,
* same-net overlaps aside, no two nets' drawn rectangles overlap on the
  same layer (shorts),
* fill features respect the buffer distance to active geometry and the
  fill-to-fill gap (used to verify synthesis output).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import GridBinIndex, Rect
from repro.layout.layout import RoutedLayout
from repro.tech.rules import FillRules


@dataclass
class ValidationReport:
    """Outcome of a validation pass: a list of human-readable violations."""

    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violations were recorded."""
        return not self.violations

    def add(self, message: str) -> None:
        """Record one violation."""
        self.violations.append(message)

    def __str__(self) -> str:
        if self.ok:
            return "OK"
        return "\n".join(self.violations)


def validate_layout(layout: RoutedLayout) -> ValidationReport:
    """Validate net structure, connectivity, and absence of shorts."""
    report = ValidationReport()
    for net in layout.nets.values():
        drivers = [p for p in net.pins if p.is_driver]
        if len(drivers) != 1:
            report.add(f"net {net.name}: {len(drivers)} drivers (expected 1)")
            continue
        if not net.sinks:
            report.add(f"net {net.name}: no sinks")
        try:
            layout.tree(net.name)
        except Exception as exc:  # connectivity problems surface here
            report.add(f"net {net.name}: {exc}")

    for layer in layout.used_layers:
        index: GridBinIndex[tuple[str, int, Rect]] = GridBinIndex(
            max(1, max(layout.die.width, layout.die.height) // 16)
        )
        counter = 0
        for net in layout.nets.values():
            for seg in net.segments:
                if seg.layer != layer:
                    continue
                for other_rect, (other_net, _oid, _r) in index.query_pairs(seg.rect):
                    if other_net != net.name and other_rect.overlaps(seg.rect):
                        report.add(
                            f"short on {layer}: net {net.name} seg {seg.index} overlaps "
                            f"net {other_net} at {seg.rect.intersection(other_rect)}"
                        )
                index.insert(seg.rect, (net.name, counter, seg.rect))
                counter += 1
    return report


def validate_fill(layout: RoutedLayout, rules: FillRules) -> ValidationReport:
    """Verify placed fill respects buffer distance and fill-to-fill gap."""
    report = ValidationReport()
    fills_by_layer: dict[str, list[Rect]] = {}
    for feature in layout.fills:
        fills_by_layer.setdefault(feature.layer, []).append(feature.rect)

    for layer, fill_rects in fills_by_layer.items():
        active = layout.feature_rects(layer)
        active_index: GridBinIndex[int] = GridBinIndex(
            max(1, max(layout.die.width, layout.die.height) // 16)
        )
        for i, rect in enumerate(active):
            active_index.insert(rect, i)

        for rect in fill_rects:
            # Buffer distance: grow the fill rect and demand no active overlap.
            grown = rect.expanded(rules.buffer_distance)
            for idx in active_index.query(grown):
                if active[idx].overlaps(grown):
                    report.add(
                        f"fill at {rect} on {layer} violates buffer distance "
                        f"{rules.buffer_distance} to active {active[idx]}"
                    )
                    break

        fill_index: GridBinIndex[int] = GridBinIndex(
            max(1, max(layout.die.width, layout.die.height) // 16)
        )
        for i, rect in enumerate(fill_rects):
            grown = rect.expanded(rules.fill_gap)
            for j in fill_index.query(grown):
                if fill_rects[j].overlaps(grown):
                    report.add(
                        f"fill at {rect} on {layer} violates gap {rules.fill_gap} "
                        f"to fill {fill_rects[j]}"
                    )
                    break
            fill_index.insert(rect, i)
    return report
