"""The routed-layout container.

:class:`RoutedLayout` owns the die area, the process stack, all nets, and
(after :meth:`RoutedLayout.build_timing`) the per-net RC trees whose
oriented lines are the *active lines* every downstream algorithm works on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import LayoutError
from repro.geometry import GridBinIndex, Rect
from repro.layout.net import Net
from repro.layout.rctree import LineTiming, RCTree
from repro.layout.segment import WireSegment
from repro.tech.process import ProcessStack


@dataclass
class FillFeature:
    """One placed square of floating fill."""

    layer: str
    rect: Rect

    def __post_init__(self) -> None:
        if self.rect.width != self.rect.height:
            raise LayoutError(f"fill features must be square, got {self.rect}")


class RoutedLayout:
    """A routed design: die, technology, nets, and derived timing views."""

    def __init__(self, name: str, die: Rect, stack: ProcessStack):
        if die.is_empty():
            raise LayoutError(f"die area must have positive extent, got {die}")
        self.name = name
        self.die = die
        self.stack = stack
        self.nets: dict[str, Net] = {}
        self.fills: list[FillFeature] = []
        self._trees: dict[str, RCTree] | None = None

    # -- construction -------------------------------------------------------

    def add_net(self, net: Net) -> None:
        """Register a net; geometry must stay inside the die."""
        if net.name in self.nets:
            raise LayoutError(f"duplicate net {net.name!r}")
        for seg in net.segments:
            if not self.die.contains_rect(seg.rect):
                raise LayoutError(
                    f"net {net.name}: segment {seg.index} at {seg.rect} leaves die {self.die}"
                )
            if not self.stack.has_layer(seg.layer):
                raise LayoutError(f"net {net.name}: unknown layer {seg.layer!r}")
        self.nets[net.name] = net
        self._trees = None  # timing views are now stale

    def add_fill(self, feature: FillFeature) -> None:
        """Register a placed fill feature."""
        if not self.die.contains_rect(feature.rect):
            raise LayoutError(f"fill at {feature.rect} leaves die {self.die}")
        self.fills.append(feature)

    # -- timing views ---------------------------------------------------------

    def build_timing(self) -> None:
        """(Re)build RC trees for every net. Called lazily by accessors."""
        self._trees = {name: RCTree.build(net, self.stack) for name, net in self.nets.items()}

    def tree(self, net_name: str) -> RCTree:
        """RC tree of one net."""
        if self._trees is None:
            self.build_timing()
        try:
            return self._trees[net_name]
        except KeyError:
            raise LayoutError(f"unknown net {net_name!r}") from None

    def trees(self) -> Iterator[RCTree]:
        """All RC trees, in net insertion order."""
        if self._trees is None:
            self.build_timing()
        return iter(self._trees.values())

    def active_lines(self, layer: str) -> list[tuple[RCTree, LineTiming]]:
        """All oriented active lines on ``layer`` with their owning trees."""
        out: list[tuple[RCTree, LineTiming]] = []
        for tree in self.trees():
            for line in tree.lines:
                if line.segment.layer == layer:
                    out.append((tree, line))
        return out

    def line_index(self, layer: str, bin_size: int | None = None) -> GridBinIndex[tuple[str, int]]:
        """Spatial index of active-line rectangles on ``layer``; items are
        ``(net_name, line_index)`` keys resolvable via :meth:`tree`."""
        if bin_size is None:
            bin_size = max(1, max(self.die.width, self.die.height) // 16)
        index: GridBinIndex[tuple[str, int]] = GridBinIndex(bin_size)
        for tree in self.trees():
            for line in tree.lines:
                if line.segment.layer == layer:
                    index.insert(line.segment.rect, (tree.net.name, line.segment.index))
        return index

    # -- geometry queries -----------------------------------------------------

    def segments_on_layer(self, layer: str) -> list[WireSegment]:
        """Raw (input-orientation) segments on ``layer``."""
        return [
            seg for net in self.nets.values() for seg in net.segments if seg.layer == layer
        ]

    def feature_rects(self, layer: str, include_fill: bool = False) -> list[Rect]:
        """Drawn metal rectangles on ``layer`` (optionally including fill)."""
        rects = [seg.rect for seg in self.segments_on_layer(layer)]
        if include_fill:
            rects.extend(f.rect for f in self.fills if f.layer == layer)
        return rects

    @property
    def used_layers(self) -> list[str]:
        """Layers carrying at least one segment, in stack order."""
        present = {seg.layer for net in self.nets.values() for seg in net.segments}
        return [name for name in self.stack.layer_names if name in present]

    # -- statistics ------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Summary counters, handy for logging and test assertions."""
        n_segments = sum(len(net.segments) for net in self.nets.values())
        n_sinks = sum(len(net.sinks) for net in self.nets.values())
        wirelength = sum(net.total_wirelength for net in self.nets.values())
        return {
            "nets": len(self.nets),
            "segments": n_segments,
            "sinks": n_sinks,
            "wirelength_dbu": wirelength,
            "fills": len(self.fills),
            "die_area_dbu2": self.die.area,
        }
