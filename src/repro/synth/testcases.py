"""The T1 / T2 testcase presets.

The paper's T1 and T2 are industry layouts we cannot redistribute; these
presets generate synthetic stand-ins at a scale where all 12 table
configurations run on a laptop. T2 is denser and higher-fanout than T1 so
its absolute delay-impact mass is several times larger — mirroring the
magnitude ordering of the paper's tables (T2 rows ≫ T1 rows).

The paper's configuration triples ``T/W/r`` use window sizes 32 and 20;
we interpret those in microns (:func:`density_rules_for`), which against
these die sizes yields tile grids in the same regime the paper sweeps.
"""

from __future__ import annotations

from typing import Iterator

from repro.io.deflite import net_ylo, write_def_lines
from repro.layout.layout import RoutedLayout
from repro.synth.generator import (
    GeneratorSpec,
    Hotspot,
    generate_layout,
    iter_layout_nets,
    spec_die,
)
from repro.tech.process import ProcessStack, default_stack
from repro.tech.rules import DensityRules, FillRules
from repro.units import um_to_dbu

#: Window sizes (µm) used by the paper's configurations.
WINDOW_SIZES_UM = (32, 20)
#: Dissection values used by the paper's configurations.
R_VALUES = (2, 4, 8)


def t1_spec(seed: int = 1) -> GeneratorSpec:
    """T1: mid-density, moderate fanout, 128 µm die."""
    return GeneratorSpec(
        name="T1",
        die_um=128.0,
        n_nets=90,
        seed=seed,
        trunk_len_um=(18.0, 70.0),
        branch_len_um=(2.0, 16.0),
        sinks_per_net=(1, 3),
        hotspots=(Hotspot(0.3, 0.7, 0.14, 0.45),),
    )


def t2_spec(seed: int = 2) -> GeneratorSpec:
    """T2: denser, higher fanout, 96 µm die — larger total delay-impact
    mass per feature, like the paper's T2."""
    return GeneratorSpec(
        name="T2",
        die_um=96.0,
        n_nets=110,
        seed=seed,
        trunk_len_um=(16.0, 60.0),
        branch_len_um=(2.0, 12.0),
        sinks_per_net=(2, 5),
        driver_res_ohm=(100.0, 400.0),
        hotspots=(
            Hotspot(0.25, 0.7, 0.12, 0.35),
            Hotspot(0.75, 0.3, 0.10, 0.25),
        ),
    )


def t3_spec(seed: int = 3, n_nets: int = 7000) -> GeneratorSpec:
    """T3: the chip-scale streaming testcase — a 768 µm die (64x the T2
    area) at T2's density and fanout profile, so its feature mass lands
    roughly 60x T2's. Too big to round-trip comfortably through
    materialized text at interactive speed; it exists to exercise the
    streaming DEF reader and the FFT density backend at the scale they
    were built for."""
    return GeneratorSpec(
        name="T3",
        die_um=768.0,
        n_nets=n_nets,
        seed=seed,
        trunk_len_um=(16.0, 60.0),
        branch_len_um=(2.0, 12.0),
        sinks_per_net=(2, 5),
        driver_res_ohm=(100.0, 400.0),
        hotspots=(
            Hotspot(0.25, 0.7, 0.12, 0.35),
            Hotspot(0.75, 0.3, 0.10, 0.25),
        ),
    )


def make_t1(stack: ProcessStack | None = None, seed: int = 1) -> RoutedLayout:
    """Build the T1 stand-in layout."""
    return generate_layout(t1_spec(seed), stack)


def make_t2(stack: ProcessStack | None = None, seed: int = 2) -> RoutedLayout:
    """Build the T2 stand-in layout."""
    return generate_layout(t2_spec(seed), stack)


def make_t3(stack: ProcessStack | None = None, seed: int = 3) -> RoutedLayout:
    """Materialize the chip-scale T3 layout.

    Expensive (thousands of nets) — generated on demand, never at
    import. Chip-scale flows should prefer :func:`iter_t3_def_lines` +
    :func:`repro.pilfill.prepare.prepare_streaming`, which never build
    this object; ``make_t3`` exists as the equivalence oracle."""
    return generate_layout(t3_spec(seed), stack)


def iter_banded_def_lines(
    spec: GeneratorSpec, stack: ProcessStack | None = None
) -> Iterator[str]:
    """DEF-lite lines of a spec's layout, nets band-sorted, one at a time.

    Nets are emitted in ascending bounding-box y-low order — the
    band-sorted contract :class:`repro.io.deflite.DefWindowStream` and
    ``prepare_streaming(banded=True)`` key on. Net objects are generated
    lazily and held only for the sort (a few hundred bytes each); the
    full DEF text is never assembled. The emitted *design* is identical
    to ``generate_layout(spec)`` — same nets, same geometry — only the
    statement order differs, and the readers' results are order-independent.
    """
    stack = stack or default_stack()
    nets = sorted(iter_layout_nets(spec, stack), key=net_ylo)
    yield from write_def_lines(
        spec.name,
        spec_die(spec, stack),
        stack.dbu_per_micron,
        nets,
        net_count=len(nets),
    )


def iter_t3_def_lines(
    stack: ProcessStack | None = None, seed: int = 3, n_nets: int = 7000
) -> Iterator[str]:
    """Band-sorted DEF-lite lines of the T3 testcase (see
    :func:`iter_banded_def_lines`)."""
    yield from iter_banded_def_lines(t3_spec(seed, n_nets), stack)


def default_fill_rules(stack: ProcessStack | None = None) -> FillRules:
    """The fill pattern used across the experiments: 0.5 µm squares,
    0.25 µm gap, 0.25 µm buffer distance (small enough that typical line
    gaps hold several site rows — and large enough relative to narrow gaps
    that ILP-I's w ≪ d assumption visibly breaks, as in the paper)."""
    dbu = (stack or default_stack()).dbu_per_micron
    return FillRules(
        fill_size=um_to_dbu(0.5, dbu),
        fill_gap=um_to_dbu(0.25, dbu),
        buffer_distance=um_to_dbu(0.25, dbu),
    )


def density_rules_for(
    window_um: int,
    r: int,
    stack: ProcessStack | None = None,
    max_density: float = 0.35,
) -> DensityRules:
    """Density rules for one ``W/r`` configuration (window in µm)."""
    dbu = (stack or default_stack()).dbu_per_micron
    return DensityRules(
        window_size=um_to_dbu(float(window_um), dbu),
        r=r,
        max_density=max_density,
    )
