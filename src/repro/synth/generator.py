"""Seeded synthetic routed-layout generator.

Substitutes the paper's two industry LEF/DEF testcases. Nets follow a
trunk-branch topology: a horizontal trunk on an h-layer driven from one
end, with vertical branches on the v-layer above dropping to sink pins.
Net positions are drawn from a mixture of uniform background and Gaussian
hotspots, producing the density variation that makes the Min-Var fill
step meaningful. All placement is rejection-sampled against already-drawn
geometry so layouts are short-free by construction.

Determinism: everything derives from the spec's seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import LayoutError
from repro.geometry import GridBinIndex, Point, Rect
from repro.layout import Net, Pin, RoutedLayout, WireSegment
from repro.tech.process import ProcessStack, default_stack
from repro.units import um_to_dbu


@dataclass(frozen=True)
class Hotspot:
    """A Gaussian congestion hotspot (coordinates relative to die, 0..1)."""

    cx: float
    cy: float
    sigma: float
    weight: float


@dataclass
class GeneratorSpec:
    """Parameters of one synthetic testcase.

    Lengths in microns; converted to DBU against the stack resolution.
    """

    name: str
    die_um: float
    n_nets: int
    seed: int
    trunk_layer: str = "metal3"
    branch_layer: str = "metal4"
    trunk_len_um: tuple[float, float] = (20.0, 80.0)
    branch_len_um: tuple[float, float] = (2.0, 20.0)
    sinks_per_net: tuple[int, int] = (1, 4)
    wire_width_um: float = 0.4
    driver_res_ohm: tuple[float, float] = (50.0, 200.0)
    sink_cap_ff: tuple[float, float] = (2.0, 10.0)
    margin_um: float = 2.0
    hotspots: tuple[Hotspot, ...] = (Hotspot(0.3, 0.7, 0.12, 0.5),)
    placement_attempts: int = 60
    #: Fraction of nets that get a short wrong-direction jog on the trunk
    #: layer (vertical metal on a horizontal layer). Jogs are excluded from
    #: the scan-line's parallel-line model but still block fill sites —
    #: exercising the exact legality path like real routing does.
    jog_fraction: float = 0.0
    jog_len_um: tuple[float, float] = (1.0, 3.0)


def spec_die(spec: GeneratorSpec, stack: ProcessStack | None = None) -> Rect:
    """Die rectangle a spec generates into (square, origin at 0)."""
    dbu = (stack or default_stack()).dbu_per_micron
    die_side = um_to_dbu(spec.die_um, dbu)
    return Rect(0, 0, die_side, die_side)


def generate_layout(spec: GeneratorSpec, stack: ProcessStack | None = None) -> RoutedLayout:
    """Generate a routed layout from ``spec``.

    Nets that cannot be placed after ``placement_attempts`` tries are
    skipped, so congested specs degrade gracefully rather than loop
    forever; the returned layout may hold slightly fewer nets than asked.
    """
    if stack is None:
        stack = default_stack()
    layout = RoutedLayout(spec.name, spec_die(spec, stack), stack)
    placed = 0
    for net in iter_layout_nets(spec, stack):
        layout.add_net(net)
        placed += 1
    if placed == 0:
        raise LayoutError(f"{spec.name}: no nets could be placed; spec too congested")
    return layout


def iter_layout_nets(spec: GeneratorSpec, stack: ProcessStack | None = None) -> Iterator[Net]:
    """Yield the spec's nets one at a time, in placement (RNG) order.

    The lazy core of :func:`generate_layout`: collecting every yielded
    net into a layout reproduces ``generate_layout`` bit for bit (one
    shared RNG stream, occupancy claimed inside the generator before
    each yield). Chip-scale emitters consume this directly so a T3-sized
    instance never has to exist as a materialized layout just to be
    written out. The occupancy index grows with the drawn geometry —
    that is inherent to short-free rejection sampling — but net objects
    themselves are yielded and forgotten.
    """
    if stack is None:
        stack = default_stack()
    dbu = stack.dbu_per_micron
    die = spec_die(spec, stack)
    die_side = die.xhi
    rng = random.Random(spec.seed)

    width = um_to_dbu(spec.wire_width_um, dbu)
    margin = um_to_dbu(spec.margin_um, dbu)
    spacing = max(
        stack.layer(spec.trunk_layer).min_space_dbu,
        stack.layer(spec.branch_layer).min_space_dbu,
    )

    bin_size = max(1, die_side // 32)
    occupied: dict[str, GridBinIndex[int]] = {
        spec.trunk_layer: GridBinIndex(bin_size),
        spec.branch_layer: GridBinIndex(bin_size),
    }
    occupied_rects: dict[str, list[Rect]] = {spec.trunk_layer: [], spec.branch_layer: []}

    def conflicts(layer: str, rect: Rect) -> bool:
        grown = rect.expanded(spacing)
        for idx in occupied[layer].query(grown):
            if occupied_rects[layer][idx].overlaps(grown):
                return True
        return False

    def claim(layer: str, rect: Rect) -> None:
        occupied[layer].insert(rect, len(occupied_rects[layer]))
        occupied_rects[layer].append(rect)

    def sample_center() -> tuple[int, int]:
        total_weight = sum(h.weight for h in spec.hotspots)
        roll = rng.random()
        if roll < total_weight and spec.hotspots:
            # Pick a hotspot proportionally to weight.
            pick = rng.random() * total_weight
            acc = 0.0
            chosen = spec.hotspots[-1]
            for h in spec.hotspots:
                acc += h.weight
                if pick <= acc:
                    chosen = h
                    break
            x = rng.gauss(chosen.cx, chosen.sigma) * die_side
            y = rng.gauss(chosen.cy, chosen.sigma) * die_side
        else:
            x = rng.uniform(0, die_side)
            y = rng.uniform(0, die_side)
        return int(x), int(y)

    for net_no in range(spec.n_nets):
        net = _try_place_net(
            f"net{net_no}", spec, rng, die, margin, width, dbu,
            sample_center, conflicts,
        )
        if net is None:
            continue
        # Commit geometry to the occupancy structures.
        for seg in net.segments:
            claim(seg.layer, seg.rect)
        yield net


def _try_place_net(
    name: str,
    spec: GeneratorSpec,
    rng: random.Random,
    die: Rect,
    margin: int,
    width: int,
    dbu: int,
    sample_center,
    conflicts,
) -> Net | None:
    """Attempt to place one trunk-branch net; None when space ran out."""
    half = width // 2
    lo = die.xlo + margin + half
    hi = die.xhi - margin - half

    for _attempt in range(spec.placement_attempts):
        cx, cy = sample_center()
        trunk_len = um_to_dbu(rng.uniform(*spec.trunk_len_um), dbu)
        x0 = max(lo, min(cx - trunk_len // 2, hi - trunk_len))
        x1 = x0 + trunk_len
        y = max(lo, min(cy, hi))
        if x1 > hi:
            continue
        trunk = WireSegment(name, 0, spec.trunk_layer, Point(x0, y), Point(x1, y), width)
        if conflicts(spec.trunk_layer, trunk.rect):
            continue

        n_sinks = rng.randint(*spec.sinks_per_net)
        # Branch tap positions strictly inside the trunk, sorted, distinct,
        # and at least 2×width apart so junction rects stay manageable.
        xs: list[int] = []
        if n_sinks > 1:
            candidates = list(range(x0 + 2 * width, x1 - 2 * width, max(2 * width, 1)))
            want = min(n_sinks - 1, len(candidates))
            if want > 0:
                xs = sorted(rng.sample(candidates, want))
        segments = [trunk]
        pins = [
            Pin("drv", Point(x0, y), spec.trunk_layer, is_driver=True,
                driver_res_ohm=rng.uniform(*spec.driver_res_ohm))
        ]
        # Final sink at the trunk's far end.
        pins.append(
            Pin("s0", Point(x1, y), spec.trunk_layer,
                load_cap_ff=rng.uniform(*spec.sink_cap_ff))
        )
        ok = True
        for i, bx in enumerate(xs):
            blen = um_to_dbu(rng.uniform(*spec.branch_len_um), dbu)
            up = rng.random() < 0.5
            by = y + blen if up else y - blen
            by = max(lo, min(by, hi))
            if abs(by - y) < width:
                ok = False
                break
            branch = WireSegment(
                name, i + 1, spec.branch_layer, Point(bx, y), Point(bx, by), width
            )
            if conflicts(spec.branch_layer, branch.rect):
                ok = False
                break
            segments.append(branch)
            pins.append(
                Pin(f"s{i + 1}", Point(bx, by), spec.branch_layer,
                    load_cap_ff=rng.uniform(*spec.sink_cap_ff))
            )
        if not ok:
            continue

        # Optional wrong-direction jog: replace the trunk-end sink with a
        # short vertical hop on the SAME layer ending at the sink. The
        # random draw is guarded so jog-free specs keep the exact RNG
        # stream (and therefore the exact layouts) of earlier releases.
        if spec.jog_fraction > 0 and rng.random() < spec.jog_fraction:
            jog_len = um_to_dbu(rng.uniform(*spec.jog_len_um), dbu)
            jy = y + jog_len if rng.random() < 0.5 else y - jog_len
            jy = max(lo, min(jy, hi))
            if abs(jy - y) >= width:
                jog = WireSegment(
                    name, len(segments), spec.trunk_layer, Point(x1, y), Point(x1, jy), width
                )
                if not conflicts(spec.trunk_layer, jog.rect):
                    segments.append(jog)
                    pins[1] = Pin(
                        "s0", Point(x1, jy), spec.trunk_layer,
                        load_cap_ff=pins[1].load_cap_ff,
                    )

        net = Net(name)
        for pin in pins:
            net.add_pin(pin)
        for seg in segments:
            net.add_segment(seg)
        return net
    return None
