"""Synthetic routed-layout generation and the T1/T2 testcase presets."""

from repro.synth.editing import EditSummary, edit_window
from repro.synth.generator import (
    GeneratorSpec,
    Hotspot,
    generate_layout,
    iter_layout_nets,
    spec_die,
)
from repro.synth.testcases import (
    R_VALUES,
    WINDOW_SIZES_UM,
    default_fill_rules,
    density_rules_for,
    iter_banded_def_lines,
    iter_t3_def_lines,
    make_t1,
    make_t2,
    make_t3,
    t1_spec,
    t2_spec,
    t3_spec,
)

__all__ = [
    "EditSummary",
    "edit_window",
    "GeneratorSpec",
    "Hotspot",
    "generate_layout",
    "iter_layout_nets",
    "spec_die",
    "iter_banded_def_lines",
    "iter_t3_def_lines",
    "R_VALUES",
    "WINDOW_SIZES_UM",
    "default_fill_rules",
    "density_rules_for",
    "make_t1",
    "make_t2",
    "make_t3",
    "t1_spec",
    "t2_spec",
    "t3_spec",
]
