"""Deterministic ECO edits on generated layouts.

Incremental-fill tests and benches need *reproducible* engineering
change orders: the same (layout, window, seed) triple must always
produce the same edited layout, or warm-vs-cold comparisons chase a
moving target. :func:`edit_window` provides that — it perturbs only a
given rectangular window, preferring to *insert* a short trunk net
there (conflict-checked against existing geometry, mirroring the
generator's rejection sampling) and falling back to *removing* a net
that crosses the window when nothing fits.

The edit RNG is derived from the seed and the window coordinates, never
from the process RNG or the clock, so edits replay bit-identically
across runs, machines, and backends.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import LayoutError
from repro.geometry import GridBinIndex, Point, Rect
from repro.layout import Net, Pin, RoutedLayout, WireSegment
from repro.units import um_to_dbu

#: Placement attempts before the insert falls back to a removal.
EDIT_ATTEMPTS = 40


@dataclass(frozen=True)
class EditSummary:
    """What one :func:`edit_window` call actually changed.

    Attributes:
        action: ``"insert"`` (a net was added inside the window),
            ``"remove"`` (a window-crossing net was deleted), or
            ``"none"`` (the window held no editable geometry and had no
            room — the returned layout is content-identical).
        net: name of the inserted/removed net (empty for ``"none"``).
        rect: bounding box of the changed geometry — the true dirty
            region for cache invalidation. A removed net may extend past
            the requested window, so callers must dirty ``rect``, not
            the window they asked for. Equals the clipped window for
            ``"none"``.
    """

    action: str
    net: str
    rect: Rect


def _edit_rng(seed: int, window: Rect) -> random.Random:
    return random.Random(
        f"eco:{seed}:{window.xlo}:{window.ylo}:{window.xhi}:{window.yhi}"
    )


def _copy_without(layout: RoutedLayout, skip: str | None) -> RoutedLayout:
    """A new layout sharing every net object except ``skip``.

    Nets are immutable once built (the engine never mutates layout
    inputs), so structural sharing is safe and keeps edits cheap.
    """
    edited = RoutedLayout(layout.name, layout.die, layout.stack)
    for name, net in layout.nets.items():
        if name != skip:
            edited.add_net(net)
    return edited


def edit_window(
    layout: RoutedLayout,
    window: Rect,
    seed: int,
    layer: str | None = None,
) -> tuple[RoutedLayout, EditSummary]:
    """Apply one deterministic ECO inside ``window``; the input layout is
    never mutated.

    Tries :data:`EDIT_ATTEMPTS` rejection-sampled placements of a short
    horizontal trunk net (driver one end, sink the other — the
    generator's minimal net shape) inside the window on ``layer``
    (default: the lowest used routing layer). If nothing fits, removes
    a seeded choice among the nets whose ``layer`` geometry crosses the
    window; if none cross, returns an identical copy with action
    ``"none"``.

    Raises:
        LayoutError: when ``window`` does not intersect the die.
    """
    region = window.intersection(layout.die)
    if region is None:
        raise LayoutError(f"edit window {window} lies outside die {layout.die}")
    if layer is None:
        used = layout.used_layers
        if not used:
            raise LayoutError("layout has no routed geometry to edit")
        layer = used[0]
    if not layout.stack.has_layer(layer):
        raise LayoutError(f"layout stack has no layer {layer!r}")

    rng = _edit_rng(seed, window)
    dbu = layout.stack.dbu_per_micron
    spacing = layout.stack.layer(layer).min_space_dbu

    existing = layout.segments_on_layer(layer)
    width = existing[0].width if existing else um_to_dbu(0.4, dbu)

    # Occupancy over ALL drawn metal on the layer (not just the window):
    # a candidate near the window edge must clear its out-of-window
    # neighbors too. Same conflict idiom as the generator.
    bin_size = max(1, layout.die.width // 32)
    occupied: GridBinIndex[int] = GridBinIndex(bin_size)
    rects = layout.feature_rects(layer)
    occupied.insert_many((rect, i) for i, rect in enumerate(rects))

    def conflicts(rect: Rect) -> bool:
        grown = rect.expanded(spacing)
        return any(rects[i].overlaps(grown) for i in occupied.query(grown))

    inserted = _try_insert(layout, region, rng, layer, width, conflicts)
    if inserted is not None:
        edited = _copy_without(layout, skip=None)
        edited.add_net(inserted)
        rect = inserted.segments[0].rect
        return edited, EditSummary(action="insert", net=inserted.name, rect=rect)

    crossing = sorted(
        name
        for name, net in layout.nets.items()
        if any(seg.layer == layer and seg.rect.overlaps(region) for seg in net.segments)
    )
    if crossing:
        victim = crossing[rng.randrange(len(crossing))]
        dirty = Rect.bounding(seg.rect for seg in layout.nets[victim].segments)
        return (
            _copy_without(layout, skip=victim),
            EditSummary(action="remove", net=victim, rect=dirty),
        )

    return _copy_without(layout, skip=None), EditSummary(action="none", net="", rect=region)


def _try_insert(
    layout: RoutedLayout,
    region: Rect,
    rng: random.Random,
    layer: str,
    width: int,
    conflicts: Callable[[Rect], bool],
) -> Net | None:
    """Rejection-sample a horizontal two-pin trunk net inside ``region``."""
    half = width // 2
    xlo = region.xlo + half
    xhi = region.xhi - half
    ylo = region.ylo + half
    yhi = region.yhi - half
    min_len = 4 * width
    if xhi - xlo < min_len or yhi <= ylo:
        return None

    base = f"eco{rng.randrange(1 << 30)}"
    name = base
    suffix = 0
    while name in layout.nets:
        suffix += 1
        name = f"{base}_{suffix}"

    for _attempt in range(EDIT_ATTEMPTS):
        span = xhi - xlo
        length = max(min_len, int(span * rng.uniform(0.4, 0.9)))
        if length > span:
            length = span
        x0 = rng.randint(xlo, xhi - length)
        y = rng.randint(ylo, yhi)
        trunk = WireSegment(name, 0, layer, Point(x0, y), Point(x0 + length, y), width)
        if not layout.die.contains_rect(trunk.rect):
            continue
        if conflicts(trunk.rect):
            continue
        net = Net(name)
        net.add_pin(
            Pin("drv", Point(x0, y), layer, is_driver=True,
                driver_res_ohm=rng.uniform(50.0, 200.0))
        )
        net.add_pin(
            Pin("s0", Point(x0 + length, y), layer,
                load_cap_ff=rng.uniform(2.0, 10.0))
        )
        net.add_segment(trunk)
        return net
    return None
