"""Plain-text visualization and reporting.

EDA debugging lives and dies by being able to *see* the layout; this
module renders layouts, density maps, and fill placements as ASCII art and
produces text reports — no plotting dependencies, terminal- and
log-friendly, deterministic (so tests can assert on output).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dissection.density import DensityMap
from repro.dissection.fixed import FixedDissection
from repro.geometry import Rect
from repro.layout.layout import FillFeature, RoutedLayout
from repro.pilfill.evaluate import ImpactReport

#: Light-to-dark shade ramp used by all renderers.
SHADES = " .:-=+*#%@"


def shade(value: float, vmax: float) -> str:
    """Map ``value`` in [0, vmax] to one shade character."""
    if vmax <= 0:
        return SHADES[0]
    level = int(min(max(value / vmax, 0.0), 1.0) * (len(SHADES) - 1))
    return SHADES[level]


def render_grid(values: np.ndarray, vmax: float | None = None) -> str:
    """Render a 2-D array with (0, 0) at the bottom-left."""
    if vmax is None:
        vmax = float(values.max()) if values.size else 1.0
    rows = []
    for iy in range(values.shape[1] - 1, -1, -1):
        rows.append("".join(shade(values[ix, iy], vmax) for ix in range(values.shape[0])))
    return "\n".join(rows)


def render_density(density: DensityMap, vmax: float | None = None) -> str:
    """ASCII tile-density map of a layer."""
    d = density.dissection
    values = np.array([
        [density.tile_density(ix, iy) for iy in range(d.ny)] for ix in range(d.nx)
    ])
    return render_grid(values, vmax)


def render_layout(
    layout: RoutedLayout,
    layer: str,
    width: int = 64,
    features: list[FillFeature] | None = None,
) -> str:
    """Coarse raster of a layer: ``#`` for active metal, ``o`` for fill,
    ``.`` for empty. One character covers ``die_width / width`` DBU."""
    die = layout.die
    height = max(1, round(width * die.height / die.width))
    cell_w = max(1, die.width // width)
    cell_h = max(1, die.height // height)
    grid = [["." for _ in range(width)] for _ in range(height)]

    def paint(rect: Rect, char: str) -> None:
        x0 = max(0, (rect.xlo - die.xlo) // cell_w)
        x1 = min(width - 1, (rect.xhi - 1 - die.xlo) // cell_w)
        y0 = max(0, (rect.ylo - die.ylo) // cell_h)
        y1 = min(height - 1, (rect.yhi - 1 - die.ylo) // cell_h)
        for y in range(y0, y1 + 1):
            for x in range(x0, x1 + 1):
                if char == "#" or grid[y][x] == ".":
                    grid[y][x] = char

    for feature in features or []:
        if feature.layer == layer:
            paint(feature.rect, "o")
    for rect in layout.feature_rects(layer):
        paint(rect, "#")
    return "\n".join("".join(row) for row in reversed(grid))


@dataclass
class FillSummary:
    """One-stop text summary of a fill run."""

    method: str
    features: int
    tau_ps: float
    weighted_tau_ps: float
    free_features: int

    def __str__(self) -> str:
        return (
            f"{self.method}: {self.features} features "
            f"({self.free_features} impact-free), "
            f"tau={self.tau_ps:.4f} ps, weighted tau={self.weighted_tau_ps:.4f} ps"
        )


def summarize(method: str, features: list[FillFeature], impact: ImpactReport) -> FillSummary:
    """Build a :class:`FillSummary` from an evaluator report."""
    return FillSummary(
        method=method,
        features=len(features),
        tau_ps=impact.total_ps,
        weighted_tau_ps=impact.weighted_total_ps,
        free_features=impact.features_free,
    )


def impact_histogram(impact: ImpactReport, bins: int = 8, width: int = 40) -> str:
    """ASCII histogram of per-net weighted delay increments.

    Shows where the fill pain concentrates — a handful of victim nets or
    spread thin.
    """
    values = sorted(impact.per_net_weighted_ps.values())
    if not values:
        return "(no per-net impact)"
    lo, hi = values[0], values[-1]
    if hi <= lo:
        return f"{len(values)} nets, all at {lo:.5f} ps"
    edges = [lo + (hi - lo) * i / bins for i in range(bins + 1)]
    counts = [0] * bins
    for v in values:
        idx = min(int((v - lo) / (hi - lo) * bins), bins - 1)
        counts[idx] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * (0 if peak == 0 else round(count / peak * width))
        lines.append(f"{edges[i]:>10.5f}..{edges[i + 1]:<10.5f} |{bar} {count}")
    return "\n".join(lines)


def budget_heatmap(
    dissection: FixedDissection, budget: dict[tuple[int, int], int]
) -> str:
    """ASCII map of the per-tile fill budget."""
    values = np.zeros((dissection.nx, dissection.ny))
    for (ix, iy), count in budget.items():
        values[ix, iy] = count
    return render_grid(values)
