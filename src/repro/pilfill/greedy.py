"""The Greedy PIL-Fill method (paper Fig. 8).

Per tile: score every slack column by its *whole-column* delay — the exact
capacitance of filling it to capacity times the cumulative weighted
resistance r̂_k (Fig. 8 lines 11-13) — then fill columns cheapest-first,
each to capacity (or to the remaining budget), deleting them as they fill
(lines 15-19).

The whole-column score is the published algorithm's weakness: a large
cheap-per-feature column can be passed over for a small expensive one.
The marginal variant (:func:`solve_tile_greedy_marginal`) fixes this and —
because the cost tables are convex — is actually *optimal*, matching
ILP-II; it is provided as an extension/ablation beyond the paper.
"""

from __future__ import annotations

from repro.errors import FillError
from repro.pilfill.costs import ColumnCosts
from repro.pilfill.dp import allocate_marginal_greedy, allocation_cost
from repro.pilfill.solution import TileSolution


def solve_tile_greedy(costs: list[ColumnCosts], budget: int) -> TileSolution:
    """Solve one tile with the paper's Greedy algorithm (Fig. 8)."""
    if budget == 0:
        return TileSolution(counts=[0] * len(costs))
    capacity = sum(c.capacity for c in costs)
    if budget > capacity:
        raise FillError(f"budget {budget} exceeds tile capacity {capacity}")

    # Fig. 8 line 13: sort by whole-column delay r̂_k · Cap(C_k); our cost
    # tables already fold r̂ in, so the score is exact[C_k]. Ties resolve
    # by column index for determinism.
    order = sorted(
        range(len(costs)),
        key=lambda k: (costs[k].exact[costs[k].capacity], k),
    )
    counts = [0] * len(costs)
    remaining = budget
    for k in order:
        if remaining == 0:
            break
        take = min(remaining, costs[k].capacity)
        counts[k] = take
        remaining -= take
    objective = allocation_cost([c.exact for c in costs], counts)
    return TileSolution(counts=counts, model_objective_ps=objective)


def solve_tile_greedy_marginal(costs: list[ColumnCosts], budget: int) -> TileSolution:
    """Extension: marginal-cost greedy (optimal for the convex exact
    model). Not in the paper; used for the ablation benchmarks."""
    if budget == 0:
        return TileSolution(counts=[0] * len(costs))
    tables = [c.exact for c in costs]
    counts = allocate_marginal_greedy(tables, budget)
    return TileSolution(counts=counts, model_objective_ps=allocation_cost(tables, counts))
