"""ILP-II: the lookup-table integer program (paper Section 5.3).

Replaces ILP-I's linear capacitance with the exact per-column table
``f(n, d)`` through one-hot selector binaries ``m_{k,n}`` (Eqs. 18-20):

    m_k = Σ n · m_{k,n}        (Eq. 18)
    Σ_n m_{k,n} = 1            (Eq. 19)
    Cap_k = Σ f(n, d_k) m_{k,n}  (Eq. 20)

Note the published Eq. 19 sums from n = 1, which would force every column
to hold at least one feature; we include the n = 0 selector so empty
columns are representable (clearly the authors' intent — otherwise tiles
with more column capacity than budget would be infeasible).

Because the exact capacitance is modeled without approximation, ILP-II is
the reference-quality method: it dominates ILP-I and Greedy in the paper's
tables at 3-6× their runtime.
"""

from __future__ import annotations

from repro.errors import FillError, SolverError, SolveTimeoutError
from repro.ilp import Model, VarKind, solve
from repro.ilp.result import SolveStatus
from repro.obs.trace import TracerLike
from repro.pilfill.costs import ColumnCosts
from repro.pilfill.solution import TileSolution


def solve_tile_ilp2(
    costs: list[ColumnCosts],
    budget: int,
    backend: str = "auto",
    time_limit: float | None = None,
    tracer: TracerLike | None = None,
) -> TileSolution:
    """Solve one tile with the ILP-II (lookup table) formulation.

    Args:
        costs: per-column cost tables (the ``exact`` tables are used; the
            sink weights and upstream resistances are already folded in, so
            ``exact[n]`` is the Eq. 21 objective contribution directly).
        budget: features to place in this tile.
        backend: ILP backend (``bundled``/``scipy``/``auto``).
        time_limit: wall-clock deadline in seconds for this tile's solve;
            exceeding it raises :class:`SolveTimeoutError`.
    """
    if budget == 0:
        return TileSolution(counts=[0] * len(costs))
    capacity = sum(c.capacity for c in costs)
    if budget > capacity:
        raise FillError(f"budget {budget} exceeds tile capacity {capacity}")

    model = Model("ilp2-tile")
    m_vars = []
    objective_terms = []
    for k, cc in enumerate(costs):
        m_k = model.add_var(f"m_{k}", lb=0, ub=cc.capacity, kind=VarKind.INTEGER)
        m_vars.append(m_k)
        if cc.capacity == 0:
            continue
        selectors = [
            model.add_var(f"s_{k}_{n}", kind=VarKind.BINARY)
            for n in range(cc.capacity + 1)
        ]
        # Eq. 19 (with the n = 0 selector included).
        model.add_constraint(sum((s * 1.0 for s in selectors), start=0.0) == 1.0)
        # Eq. 18.
        model.add_constraint(
            m_k == sum((selectors[n] * float(n) for n in range(cc.capacity + 1)), start=0.0)
        )
        # Eq. 20 folded with Eq. 21 into the objective directly.
        for n in range(1, cc.capacity + 1):
            if cc.exact[n] != 0.0:  # pilfill: allow[D104] -- exact-zero sparsity test: no-impact entries are literal 0.0, not computed
                objective_terms.append(selectors[n] * cc.exact[n])

    model.add_constraint(sum((m * 1.0 for m in m_vars), start=0.0) == float(budget))
    model.minimize(sum(objective_terms, start=0.0))

    result = solve(model, backend=backend, time_limit=time_limit, tracer=tracer)
    if result.status is SolveStatus.TIME_LIMIT:
        raise SolveTimeoutError(f"ILP-II tile solve hit the {time_limit}s deadline")
    if not result.status.is_optimal:
        raise SolverError(f"ILP-II tile solve failed: {result.status}")
    counts = [int(result.value(m.name)) for m in m_vars]
    return TileSolution(
        counts=counts,
        model_objective_ps=result.objective,
        nodes=result.nodes,
        iterations=result.iterations,
    )
