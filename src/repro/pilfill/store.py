"""Versioned solution store backing the incremental ECO re-fill cache.

A store maps a content digest (see :mod:`repro.pilfill.incremental`) to a
:class:`CachedEntry` — the solved :class:`~repro.pilfill.solution.
TileSolution` plus its :class:`~repro.pilfill.robust.SolveReport`. Two
layers:

* **memory** — a plain dict, always present; hits cost a lookup.
* **disk** — optional (``cache_dir``), one JSON file per entry sharded by
  digest prefix (``<dir>/<xx>/<digest>.json``), written atomically so a
  crash mid-write can never leave a torn entry. Disk entries carry the
  store schema + version; any mismatch reads as a miss, so bumping
  :data:`STORE_VERSION` retires every stale entry without a migration.

The store is content-addressed: an edited tile produces a *new* digest,
so a stale entry is never looked up again *under its new inputs*. But
content addressing alone is not enough for the dirty-window contract —
an ECO invalidation names digests whose inputs may recur (a revert, or
neighbor churn that cancels out), and those must not be re-hit by a
fresh process with a cold memory layer. Eviction
(:meth:`SolutionStore.evict`) therefore drops *both* layers: the memory
entry and, when a disk layer is configured, the entry file itself.

Entries round-trip through JSON exactly: ``json`` serializes floats via
``repr`` (shortest round-trip form), so a solution loaded from disk is
bit-identical to the one stored — the property the incremental re-fill
contract stands on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.io.atomic import atomic_write_json
from repro.pilfill.robust import SolveReport
from repro.pilfill.solution import TileSolution

TileKey = tuple[int, int]


def copy_solution(solution: TileSolution) -> TileSolution:
    """A fresh, independently-mutable copy of ``solution``.

    ``TileSolution.counts`` is a list; both cache directions copy so the
    store, the priming run's result, and every warm result own disjoint
    objects (``site_indices`` is an immutable tuple and may be shared).
    """
    return TileSolution(
        counts=list(solution.counts),
        model_objective_ps=solution.model_objective_ps,
        nodes=solution.nodes,
        iterations=solution.iterations,
        site_indices=solution.site_indices,
    )

#: Bump to invalidate every persisted entry when solve semantics change
#: (method behavior, cost-table construction, RNG derivation, ...).
STORE_VERSION = 1

#: Schema tag embedded in every on-disk entry.
STORE_SCHEMA = "pilfill-solution-store/v1"


@dataclass(frozen=True)
class CachedEntry:
    """One cached tile outcome: the solution and its provenance report.

    Registered on the C202 payload registry: both fields are themselves
    registered payload classes, so an entry is picklable by construction
    (a future ``pilfill serve`` can ship hits across a pool boundary).
    """

    solution: TileSolution
    report: SolveReport

    def materialize(self) -> tuple[TileSolution, SolveReport]:
        """Fresh objects safe to merge into a ``FillResult``.

        ``TileSolution`` is mutable (its ``counts`` is a list), so a hit
        must never hand the cached instance itself to a result — two runs
        sharing one solution object would couple their bookkeeping.
        ``SolveReport`` is frozen and may be shared as-is.
        """
        return copy_solution(self.solution), self.report


def encode_entry(digest: str, entry: CachedEntry) -> dict[str, object]:
    """JSON-ready dict of one entry (schema + version embedded)."""
    sol = entry.solution
    report = entry.report
    return {
        "schema": STORE_SCHEMA,
        "version": STORE_VERSION,
        "digest": digest,
        "solution": {
            "counts": list(sol.counts),
            "model_objective_ps": sol.model_objective_ps,
            "nodes": sol.nodes,
            "iterations": sol.iterations,
            "site_indices": (
                None
                if sol.site_indices is None
                else [list(sites) for sites in sol.site_indices]
            ),
        },
        "report": {
            "key": list(report.key),
            "requested_method": report.requested_method,
            "used_method": report.used_method,
            "retries": report.retries,
            "errors": list(report.errors),
        },
    }


def decode_entry(payload: object) -> CachedEntry | None:
    """Entry from an on-disk dict; ``None`` for any mismatch or damage.

    Version/schema gating happens here so every reader shares it: a
    future :data:`STORE_VERSION` bump silently retires old entries.
    """
    if not isinstance(payload, dict):
        return None
    if payload.get("schema") != STORE_SCHEMA or payload.get("version") != STORE_VERSION:
        return None
    try:
        sol = payload["solution"]
        rep = payload["report"]
        raw_sites = sol["site_indices"]
        site_indices = (
            None
            if raw_sites is None
            else tuple(tuple(int(s) for s in sites) for sites in raw_sites)
        )
        solution = TileSolution(
            counts=[int(c) for c in sol["counts"]],
            model_objective_ps=float(sol["model_objective_ps"]),
            nodes=int(sol["nodes"]),
            iterations=int(sol["iterations"]),
            site_indices=site_indices,
        )
        key_list = rep["key"]
        report = SolveReport(
            key=(int(key_list[0]), int(key_list[1])),
            requested_method=str(rep["requested_method"]),
            used_method=None if rep["used_method"] is None else str(rep["used_method"]),
            retries=int(rep["retries"]),
            errors=tuple(str(e) for e in rep["errors"]),
        )
    except (KeyError, IndexError, TypeError, ValueError):
        return None
    return CachedEntry(solution=solution, report=report)


class SolutionStore:
    """Digest-keyed store of :class:`CachedEntry`, memory + optional disk.

    Args:
        cache_dir: directory for the disk layer; ``None`` keeps the store
            memory-only (entries then live as long as the store object).
    """

    def __init__(self, cache_dir: str | Path | None = None):
        self._dir = Path(cache_dir) if cache_dir is not None else None
        self._memory: dict[str, CachedEntry] = {}

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def disk_backed(self) -> bool:
        """Whether a disk layer is configured."""
        return self._dir is not None

    @property
    def cache_dir(self) -> Path | None:
        return self._dir

    def entry_path(self, digest: str) -> Path:
        """On-disk location of one entry (digest-prefix sharded)."""
        if self._dir is None:
            raise ValueError("store has no disk layer")
        return self._dir / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> CachedEntry | None:
        """The entry at ``digest`` — memory first, then disk (which also
        repopulates the memory layer). ``None`` on a miss."""
        entry = self._memory.get(digest)
        if entry is not None:
            return entry
        if self._dir is None:
            return None
        path = self.entry_path(digest)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        entry = decode_entry(payload)
        if entry is not None:
            self._memory[digest] = entry
        return entry

    def put(self, digest: str, entry: CachedEntry) -> None:
        """Record ``entry`` in memory and (when configured) on disk.

        Disk writes are atomic and best-effort: a read-only or full
        filesystem degrades the store to memory-only rather than failing
        the run — caching is an optimization, never a correctness gate.
        """
        self._memory[digest] = entry
        if self._dir is None:
            return
        try:
            atomic_write_json(
                self.entry_path(digest), encode_entry(digest, entry), indent=None
            )
        except OSError:  # pragma: no cover - store is best-effort
            pass

    def evict(self, digest: str) -> bool:
        """Drop ``digest`` from *every* layer; True when any layer held it.

        The dirty-window pass evicts digests whose solved answer is no
        longer trustworthy (an ECO touched the tile or its neighborhood).
        Dropping only the memory layer would leave the disk entry live
        for any *other* process — or a later cold start — whose digest
        computation lands back on the same value, silently serving a
        stale solution. The disk unlink is best-effort like :meth:`put`
        (a read-only filesystem cannot un-write the entry, but such a
        store also never recorded the pre-ECO run that would alias it).
        """
        held = self._memory.pop(digest, None) is not None
        if self._dir is not None:
            path = self.entry_path(digest)
            try:
                if path.exists():
                    path.unlink()
                    held = True
            except OSError:  # pragma: no cover - store is best-effort
                pass
        return held
