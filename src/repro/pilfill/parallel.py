"""Parallel per-tile dispatch for the PIL-Fill solve phase.

The per-tile MDFC instances are independent — the paper's tiled
formulation (and follow-ups such as the timing-aware fill flow of
arXiv:1711.01407) exploits exactly this. This module fans the tile
solves out over a worker pool and merges the outcomes deterministically:

* **Determinism.** Tiles carry their own RNG (seeded from the run seed
  and the tile key, see :func:`tile_rng`), so a stochastic method like
  the Normal baseline draws the same samples no matter which worker
  solves the tile or in which order tiles finish. The caller merges
  outcomes in dissection order, so any worker count / backend is
  bit-identical to the serial path.
* **Two backends.** ``backend="thread"`` shares the read-only cost
  tables across a thread pool — right for the numeric solvers
  (scipy/HiGHS) that release the GIL during their solves.
  ``backend="process"`` ships each tile as a compact picklable
  :class:`TilePayload` (cost arrays + budget + seed, *not* layout
  objects) to a process pool — right for the pure-Python methods
  (Greedy, DP, Normal, bundled branch-and-bound) whose hot loops hold
  the GIL and gain nothing from threads.
* **Per-tile timing.** Every outcome records its solve seconds so the
  hot tiles are visible from the CLI and harness.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.errors import FillError
from repro.pilfill.columns import ColumnNeighbor
from repro.pilfill.methods import solve_tile_method, trim_to

TileKey = tuple[int, int]
T = TypeVar("T")

#: Accepted values of the ``backend`` knob.
PARALLEL_BACKENDS = ("thread", "process")


def tile_rng(seed: int, key: TileKey) -> random.Random:
    """An RNG owned by one tile, reproducible regardless of solve order.

    String seeds hash through SHA-512 inside :class:`random.Random`, so
    the stream is stable across processes and interpreter hash
    randomization.
    """
    return random.Random(f"pilfill:{seed}:{key[0]}:{key[1]}")


@dataclass(frozen=True)
class TileOutcome:
    """One tile's solve result plus its wall-clock cost."""

    key: TileKey
    value: object
    seconds: float


@dataclass(frozen=True)
class PayloadColumn:
    """Electrical view of one slack column, without layout geometry.

    Mirrors the parts of :class:`~repro.pilfill.columns.SlackColumn` the
    per-tile solvers read (neighbors, gap, r̂) — site rectangles stay in
    the parent process, which places the returned counts itself.
    """

    gap_um: float | None
    below: ColumnNeighbor | None
    above: ColumnNeighbor | None

    @property
    def has_impact(self) -> bool:
        return self.below is not None and self.above is not None and self.gap_um is not None

    def resistance_weight(self, weighted: bool) -> float:
        total = 0.0
        for neighbor in (self.below, self.above):
            if neighbor is not None:
                w = neighbor.sinks if weighted else 1
                total += w * neighbor.resistance_ohm
        return total


@dataclass(frozen=True)
class PayloadColumnCosts:
    """Picklable stand-in for :class:`~repro.pilfill.costs.ColumnCosts`."""

    column: PayloadColumn
    exact: tuple[float, ...]
    linear: tuple[float, ...]

    @property
    def capacity(self) -> int:
        return len(self.exact) - 1


@dataclass(frozen=True)
class TilePayload:
    """Everything a worker process needs to solve one tile.

    Built from the engine's prepared cost tables by
    :func:`make_tile_payload`; deliberately contains no layout, engine,
    or dissection objects so pickling stays cheap. ``delay_budget_ps``
    switches the worker to the MVDC solve (budget then acts as the
    feature-count cap).
    """

    key: TileKey
    method: str
    budget: int
    weighted: bool
    ilp_backend: str
    seed: int
    columns: tuple[PayloadColumnCosts, ...]
    delay_budget_ps: float | None = None


def make_tile_payload(
    key: TileKey,
    costs: Sequence,
    budget: int,
    *,
    method: str,
    weighted: bool,
    ilp_backend: str,
    seed: int,
    delay_budget_ps: float | None = None,
) -> TilePayload:
    """Compact payload for one tile from its :class:`ColumnCosts` list."""
    columns = tuple(
        PayloadColumnCosts(
            column=PayloadColumn(
                gap_um=cc.column.gap_um,
                below=cc.column.below,
                above=cc.column.above,
            ),
            exact=tuple(cc.exact),
            linear=tuple(cc.linear),
        )
        for cc in costs
    )
    return TilePayload(
        key=key,
        method=method,
        budget=budget,
        weighted=weighted,
        ilp_backend=ilp_backend,
        seed=seed,
        columns=columns,
        delay_budget_ps=delay_budget_ps,
    )


def solve_tile_payload(payload: TilePayload) -> TileOutcome:
    """Solve one shipped tile (runs inside a worker process).

    Produces the same :class:`TileSolution` the in-process path would:
    the cost tables are bit-identical copies and the RNG is re-derived
    from ``(seed, key)``, so the solve is order- and host-independent.
    """
    t0 = time.perf_counter()
    costs = list(payload.columns)
    if payload.delay_budget_ps is not None:
        from repro.pilfill.mvdc import solve_tile_mvdc

        solution = solve_tile_mvdc(costs, payload.delay_budget_ps)
        if solution.total_features > payload.budget:
            solution = trim_to(costs, solution, payload.budget)
    else:
        solution = solve_tile_method(
            costs,
            payload.method,
            payload.budget,
            payload.weighted,
            payload.ilp_backend,
            tile_rng(payload.seed, payload.key),
        )
    return TileOutcome(key=payload.key, value=solution, seconds=time.perf_counter() - t0)


def dispatch_tile_payloads(
    payloads: Sequence[TilePayload],
    workers: int = 1,
) -> dict[TileKey, TileOutcome]:
    """Solve shipped tiles, serially or on a process pool.

    ``workers=1`` (or a single payload) solves in-process — same code
    path as the pool workers, so results never depend on the worker
    count. The returned mapping is ordered by ``payloads`` regardless of
    completion order, giving a deterministic merge.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(payloads) <= 1:
        return {p.key: solve_tile_payload(p) for p in payloads}
    with ProcessPoolExecutor(max_workers=min(workers, len(payloads))) as pool:
        chunk = max(1, len(payloads) // (workers * 4))
        outcomes = pool.map(solve_tile_payload, payloads, chunksize=chunk)
        return {outcome.key: outcome for outcome in outcomes}


def dispatch_tiles(
    keys: Sequence[TileKey],
    solve_one: Callable[[TileKey], T],
    workers: int = 1,
    backend: str = "thread",
) -> dict[TileKey, TileOutcome]:
    """Solve every tile, serially or on a worker pool.

    Args:
        keys: tile keys to solve (each must be independent of the others).
        solve_one: maps a tile key to its solve result; must not mutate
            shared state. Stochastic solvers should draw from
            :func:`tile_rng` so results are order-independent.
        workers: 1 → plain loop (no executor overhead); >1 → worker pool.
        backend: ``"thread"`` shares ``solve_one`` across a thread pool;
            ``"process"`` requires a *picklable* ``solve_one`` (a
            module-level function or :func:`functools.partial` over one —
            closures will not pickle). Engine callers use the payload
            path (:func:`dispatch_tile_payloads`) instead, which ships
            compact per-tile data rather than pickling shared state.

    Returns:
        Outcomes keyed by tile. The mapping is insertion-ordered by
        ``keys`` regardless of completion order, so iterating it (or the
        original key sequence) yields a deterministic merge.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if backend not in PARALLEL_BACKENDS:
        raise FillError(
            f"unknown parallel backend {backend!r}; expected one of {PARALLEL_BACKENDS}"
        )

    def timed(key: TileKey) -> TileOutcome:
        t0 = time.perf_counter()
        value = solve_one(key)
        return TileOutcome(key=key, value=value, seconds=time.perf_counter() - t0)

    if workers == 1 or len(keys) <= 1:
        return {key: timed(key) for key in keys}
    if backend == "process":
        with ProcessPoolExecutor(max_workers=min(workers, len(keys))) as pool:
            values = pool.map(solve_one, keys)
            return {
                key: TileOutcome(key=key, value=value, seconds=0.0)
                for key, value in zip(keys, values)
            }
    with ThreadPoolExecutor(max_workers=workers) as pool:
        # map() preserves input order, giving the deterministic merge.
        return {outcome.key: outcome for outcome in pool.map(timed, keys)}
