"""Parallel per-tile dispatch for the PIL-Fill solve phase.

The per-tile MDFC instances are independent — the paper's tiled
formulation (and follow-ups such as the timing-aware fill flow of
arXiv:1711.01407) exploits exactly this. This module fans the tile
solves out over a worker pool and merges the outcomes deterministically:

* **Determinism.** Tiles carry their own RNG (seeded from the run seed
  and the tile key, see :func:`tile_rng`), so a stochastic method like
  the Normal baseline draws the same samples no matter which worker
  solves the tile or in which order tiles finish. The caller merges
  outcomes in dissection order, so any worker count / backend is
  bit-identical to the serial path.
* **Two backends.** ``backend="thread"`` shares the read-only cost
  tables across a thread pool — right for the numeric solvers
  (scipy/HiGHS) that release the GIL during their solves.
  ``backend="process"`` ships tiles as compact picklable
  :class:`TilePayload` s (cost arrays + budget + seed, *not* layout
  objects) to a process pool — right for the pure-Python methods
  (Greedy, DP, Normal, bundled branch-and-bound) whose hot loops hold
  the GIL and gain nothing from threads. The pool is *persistent*
  (reused across runs), tiles travel in chunked batches, and the cost
  tables can ride a shared-memory store instead of each payload — see
  :mod:`repro.pilfill.executor` for the dispatch machinery.
* **Per-tile timing.** Every outcome records its solve seconds so the
  hot tiles are visible from the CLI and harness.
* **Fault isolation.** With ``isolate=True`` (the default) a tile whose
  solve raises — or whose pool worker dies — never aborts the sweep: the
  dispatcher retries the tile once with the same derived RNG (attempt
  numbers, not shared counters, drive the retry so the contract holds
  across process boundaries), and records a failed
  :class:`TileOutcome` (``value=None``, ``error`` set) if the retry also
  fails. Timeouts are the exception: a deadline that fired once will
  fire again, so :class:`~repro.errors.SolveTimeoutError` fails the
  tile without a retry.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

from repro.errors import FillError, SolveTimeoutError
from repro.obs.metrics import NULL_METRICS, Metrics, MetricsLike, MetricsSnapshot
from repro.obs.trace import NULL_TRACER, SpanRecord, Tracer, TracerLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.pilfill.executor import SharedStoreHandle, TileBatch
from repro.pilfill.columns import ColumnNeighbor
from repro.pilfill.costlike import TileCosts
from repro.pilfill.methods import solve_tile_method, trim_to
from repro.pilfill.robust import RobustSolve, SolveReport, solve_tile_robust
from repro.testing.faults import FaultSpec

TileKey = tuple[int, int]
T = TypeVar("T")

#: Accepted values of the ``backend`` knob.
PARALLEL_BACKENDS = ("thread", "process")

#: Dispatcher attempts per tile under ``isolate=True`` (1 + one retry).
MAX_ATTEMPTS = 2


def tile_rng(seed: int, key: TileKey) -> random.Random:
    """An RNG owned by one tile, reproducible regardless of solve order.

    String seeds hash through SHA-512 inside :class:`random.Random`, so
    the stream is stable across processes and interpreter hash
    randomization.
    """
    return random.Random(f"pilfill:{seed}:{key[0]}:{key[1]}")


@dataclass(frozen=True)
class TileOutcome:
    """One tile's solve result plus its wall-clock cost.

    ``value`` is ``None`` when every attempt failed (``error`` then holds
    the last failure — prefixed ``TIME_LIMIT:`` for deadline expiries —
    ``error_chain`` the fallback-rung history that preceded it, and
    ``retries`` how many retries were spent). When the solve went through
    the robust layer, ``report`` carries its
    :class:`~repro.pilfill.robust.SolveReport`. ``spans`` / ``metrics``
    marshal the tile-local telemetry buffer back from pool workers; both
    stay empty when telemetry is off. ``pid`` records the process that
    produced the outcome, so pool reuse (stable worker PIDs across
    consecutive runs) is observable from the results.
    """

    key: TileKey
    value: object  # pilfill: allow[C202] -- generic slot for dispatch_tiles results; payload path only ever stores TileSolution | None
    seconds: float
    report: SolveReport | None = None
    error: str | None = None
    retries: int = 0
    error_chain: tuple[str, ...] = ()
    spans: tuple[SpanRecord, ...] = ()
    metrics: MetricsSnapshot | None = None
    pid: int | None = None

    @property
    def failed(self) -> bool:
        return self.value is None


@dataclass(frozen=True)
class PayloadColumn:
    """Electrical view of one slack column, without layout geometry.

    Mirrors the parts of :class:`~repro.pilfill.columns.SlackColumn` the
    per-tile solvers read (neighbors, gap, r̂) — site rectangles stay in
    the parent process, which places the returned counts itself.
    """

    gap_um: float | None
    below: ColumnNeighbor | None
    above: ColumnNeighbor | None

    @property
    def has_impact(self) -> bool:
        return self.below is not None and self.above is not None and self.gap_um is not None

    def resistance_weight(self, weighted: bool) -> float:
        total = 0.0
        for neighbor in (self.below, self.above):
            if neighbor is not None:
                w = neighbor.sinks if weighted else 1
                total += w * neighbor.resistance_ohm
        return total


@dataclass(frozen=True)
class PayloadColumnCosts:
    """Picklable stand-in for :class:`~repro.pilfill.costs.ColumnCosts`."""

    column: PayloadColumn
    exact: tuple[float, ...]
    linear: tuple[float, ...]

    @property
    def capacity(self) -> int:
        return len(self.exact) - 1


@dataclass(frozen=True)
class TilePayload:
    """Everything a worker process needs to solve one tile.

    Built from the engine's prepared cost tables by
    :func:`make_tile_payload`; deliberately contains no layout, engine,
    or dissection objects so pickling stays cheap. ``delay_budget_ps``
    switches the worker to the MVDC solve (budget then acts as the
    feature-count cap).
    """

    key: TileKey
    method: str
    budget: int
    weighted: bool
    ilp_backend: str
    seed: int
    columns: tuple[PayloadColumnCosts, ...]
    delay_budget_ps: float | None = None
    tile_deadline_s: float | None = None
    run_deadline: float | None = None  # absolute time.time() epoch
    fault_spec: FaultSpec | None = None
    fallback: bool = True
    telemetry: bool = False


def payload_columns(costs: TileCosts) -> tuple[PayloadColumnCosts, ...]:
    """Picklable column tables for one tile's :class:`ColumnCosts` list.

    The conversion is pure data-copying, so callers that dispatch many
    runs over the same prepared instance cache the result (see
    :meth:`~repro.pilfill.prepare.PreparedInstance.payload_columns_for`)
    and ship it through the shared-memory store instead of rebuilding it
    per payload per run.
    """
    return tuple(
        PayloadColumnCosts(
            column=PayloadColumn(
                gap_um=cc.column.gap_um,
                below=cc.column.below,
                above=cc.column.above,
            ),
            exact=tuple(cc.exact),
            linear=tuple(cc.linear),
        )
        for cc in costs
    )


def make_tile_payload(
    key: TileKey,
    costs: TileCosts,
    budget: int,
    *,
    method: str,
    weighted: bool,
    ilp_backend: str,
    seed: int,
    delay_budget_ps: float | None = None,
    tile_deadline_s: float | None = None,
    run_deadline: float | None = None,
    fault_spec: FaultSpec | None = None,
    fallback: bool = True,
    telemetry: bool = False,
    inline_columns: bool = True,
) -> TilePayload:
    """Compact payload for one tile from its :class:`ColumnCosts` list.

    ``inline_columns=False`` leaves ``columns`` empty — the payload then
    rides a shared-memory store and the worker hydrates the tables by
    tile key (see :mod:`repro.pilfill.executor`).
    """
    return TilePayload(
        key=key,
        method=method,
        budget=budget,
        weighted=weighted,
        ilp_backend=ilp_backend,
        seed=seed,
        columns=payload_columns(costs) if inline_columns else (),
        delay_budget_ps=delay_budget_ps,
        tile_deadline_s=tile_deadline_s,
        run_deadline=run_deadline,
        fault_spec=fault_spec,
        fallback=fallback,
        telemetry=telemetry,
    )


def solve_tile_payload(payload: TilePayload, attempt: int = 0) -> TileOutcome:
    """Solve one shipped tile (runs inside a worker process).

    Produces the same :class:`TileSolution` the in-process path would:
    the cost tables are bit-identical copies and the RNG is re-derived
    from ``(seed, key)``, so the solve is order-, host-, and
    attempt-independent. ``attempt`` is the dispatcher attempt number
    (threaded to the fault hooks so transient faults fire on the first
    attempt only, regardless of which process runs the retry).

    With ``payload.telemetry`` the worker builds a tile-local tracer and
    metrics registry (single-owner, lock-free) and marshals the frozen
    snapshot back on the outcome for the dispatcher to merge.
    """
    from repro.pilfill.robust import effective_time_limit, solve_tile_robust
    from repro.testing import faults as fault_hooks

    tracer: TracerLike = Tracer() if payload.telemetry else NULL_TRACER
    metrics = Metrics() if payload.telemetry else None
    t0 = time.perf_counter()
    costs = list(payload.columns)

    def done_snapshot() -> MetricsSnapshot | None:
        return metrics.snapshot() if metrics is not None else None

    if payload.delay_budget_ps is not None:
        from repro.pilfill.mvdc import solve_tile_mvdc

        # MVDC has no fallback chain (its solver is already the greedy
        # rung); fault hooks still apply so the retry path is testable.
        with tracer.span("tile", tile=payload.key, method="mvdc", attempt=attempt):
            fault_hooks.inject(payload.key, "mvdc", attempt, payload.fault_spec)
            effective_time_limit(payload.tile_deadline_s, payload.run_deadline)
            solution = solve_tile_mvdc(costs, payload.delay_budget_ps)
            if solution.total_features > payload.budget:
                solution = trim_to(costs, solution, payload.budget)
        return TileOutcome(
            key=payload.key, value=solution, seconds=time.perf_counter() - t0,
            retries=attempt, spans=tracer.records(), metrics=done_snapshot(),
            pid=os.getpid(),
        )
    if payload.fallback:
        robust = solve_tile_robust(
            costs,
            payload.method,
            payload.budget,
            payload.weighted,
            payload.ilp_backend,
            tile_rng(payload.seed, payload.key),
            key=payload.key,
            tile_deadline_s=payload.tile_deadline_s,
            run_deadline=payload.run_deadline,
            fault_spec=payload.fault_spec,
            attempt=attempt,
            tracer=tracer,
            metrics=metrics,
        )
        return TileOutcome(
            key=payload.key,
            value=robust.solution,
            seconds=time.perf_counter() - t0,
            report=robust.report,
            retries=attempt,
            spans=tracer.records(),
            metrics=done_snapshot(),
            pid=os.getpid(),
        )
    with tracer.span("tile", tile=payload.key, method=payload.method, attempt=attempt):
        fault_hooks.inject(payload.key, payload.method, attempt, payload.fault_spec)
        solution = solve_tile_method(
            costs,
            payload.method,
            payload.budget,
            payload.weighted,
            payload.ilp_backend,
            tile_rng(payload.seed, payload.key),
            time_limit=effective_time_limit(payload.tile_deadline_s, payload.run_deadline),
            tracer=tracer,
        )
    return TileOutcome(
        key=payload.key, value=solution, seconds=time.perf_counter() - t0,
        retries=attempt, spans=tracer.records(), metrics=done_snapshot(),
        pid=os.getpid(),
    )


def _failed_outcome(key: TileKey, exc: BaseException, seconds: float, retries: int) -> TileOutcome:
    """Classify a terminal failure into a failed outcome.

    Deadline expiries are marked ``TIME_LIMIT:`` so reports (and readers
    of ``--trace-out`` output) can tell a timeout from a solver crash;
    the rung error history riding on :class:`SolveTimeoutError` is
    preserved in ``error_chain``.
    """
    if isinstance(exc, SolveTimeoutError):
        return TileOutcome(
            key=key,
            value=None,
            seconds=seconds,
            error=f"TIME_LIMIT: {exc}",
            retries=retries,
            error_chain=tuple(exc.rung_errors),
            pid=os.getpid(),
        )
    return TileOutcome(
        key=key,
        value=None,
        seconds=seconds,
        error=f"{type(exc).__name__}: {exc}",
        retries=retries,
        pid=os.getpid(),
    )


def _solve_payload_isolated(
    payload: TilePayload,
    escalate: tuple[type[BaseException], ...] = (),
) -> TileOutcome:
    """In-process payload solve with the retry-then-fail policy applied.

    ``escalate`` lists exception types that must propagate instead of
    being retried here — the batch worker passes
    :class:`~repro.errors.WorkerDeathError` so a simulated worker death
    escapes to the *dispatcher*, whose parent-side retry is the
    contract being exercised (nothing inside a dead worker can run
    recovery code).
    """
    t0 = time.perf_counter()
    last: BaseException | None = None
    for attempt in range(MAX_ATTEMPTS):
        try:
            return solve_tile_payload(payload, attempt)
        except SolveTimeoutError as exc:
            return _failed_outcome(payload.key, exc, time.perf_counter() - t0, attempt)
        except escalate:
            raise
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            last = exc
    return _failed_outcome(payload.key, last, time.perf_counter() - t0, MAX_ATTEMPTS - 1)


def dispatch_tile_payloads(
    payloads: Sequence[TilePayload],
    workers: int = 1,
    isolate: bool = True,
    *,
    store: "SharedStoreHandle | None" = None,
    batch_tiles: int | None = None,
    persistent: bool = True,
    tracer: TracerLike = NULL_TRACER,
    metrics: MetricsLike = NULL_METRICS,
    batch_solver: "Callable[[TileBatch], list[TileOutcome]] | None" = None,
) -> dict[TileKey, TileOutcome]:
    """Solve shipped tiles, serially or on a (persistent) process pool.

    An empty payload list returns an empty mapping before any pool is
    touched (a no-fill-needed run must not cost a pool, and
    ``ProcessPoolExecutor(max_workers=0)`` would raise). ``workers=1``
    (or a single payload) solves in-process — same code path as the pool
    workers, so results never depend on the worker count. The returned
    mapping is ordered by ``payloads`` regardless of completion order,
    giving a deterministic merge.

    ``workers > 1`` dispatches chunked :class:`~repro.pilfill.executor.
    TileBatch` submits on the persistent pool for that worker count
    (``persistent=False`` builds a throwaway pool instead — the
    pre-persistence behavior). ``store`` names a shared-memory cost
    store; payloads built with empty ``columns`` are hydrated from it on
    the worker side, so the big tables cross the pickle boundary once
    per worker rather than once per tile. ``batch_tiles`` overrides the
    auto chunk size; ``tracer``/``metrics`` receive per-batch spans and
    dispatch-cost metrics (payload bytes, batches, broken pools).

    With ``isolate=True`` a failing tile is retried once and then
    recorded as a failed :class:`TileOutcome` instead of aborting the
    sweep. A pool worker that *dies* (broken pool) has its batch — and
    any batch stranded by the broken pool — re-solved in the parent
    process, which is attempt 1 of the same deterministic contract.
    With ``isolate=False`` the first exception propagates.

    ``batch_solver`` substitutes the pool-submitted batch entry point
    (the sharded path submits its own X301-anchored wrapper). It must be
    a module-level picklable callable with the same contract as
    :func:`~repro.pilfill.executor.solve_tile_batch`; the in-process
    fast path ignores it, since ``workers=1`` never crosses a pickle
    boundary.
    """
    from repro.pilfill.executor import _hydrate, dispatch_batches, resolve_store

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if not payloads:
        return {}
    if workers == 1 or len(payloads) <= 1:
        if store is not None:
            data = resolve_store(store)
            payloads = [_hydrate(p, data) for p in payloads]
        if isolate:
            return {p.key: _solve_payload_isolated(p) for p in payloads}
        return {p.key: solve_tile_payload(p) for p in payloads}
    return dispatch_batches(
        payloads,
        workers,
        isolate,
        store=store,
        batch_tiles=batch_tiles,
        persistent=persistent,
        tracer=tracer,
        metrics=metrics,
        batch_solver=batch_solver,
    )


def dispatch_tiles(
    keys: Sequence[TileKey],
    solve_one: Callable[[TileKey, int], T],
    workers: int = 1,
    backend: str = "thread",
    isolate: bool = True,
) -> dict[TileKey, TileOutcome]:
    """Solve every tile, serially or on a worker pool.

    Args:
        keys: tile keys to solve (each must be independent of the others).
        solve_one: maps ``(tile key, attempt)`` to its solve result; must
            not mutate shared state. ``attempt`` is 0 on the first try
            and 1 on the retry — implementations re-derive any RNG from
            the key (see :func:`tile_rng`) so both attempts draw the same
            stream. A returned :class:`~repro.pilfill.robust.RobustSolve`
            is unpacked into the outcome's ``value``/``report``.
        workers: 1 → plain loop (no executor overhead); >1 → worker pool.
        backend: ``"thread"`` shares ``solve_one`` across a thread pool;
            ``"process"`` requires a *picklable* ``solve_one`` (a
            module-level function or :func:`functools.partial` over one —
            closures will not pickle). Engine callers use the payload
            path (:func:`dispatch_tile_payloads`) instead, which ships
            compact per-tile data rather than pickling shared state.
        isolate: True → a tile whose solve raises is retried once, then
            recorded as a failed outcome (``value=None``) — the sweep
            always completes. :class:`~repro.errors.SolveTimeoutError`
            skips the retry (a deadline that fired will fire again).
            False → the first exception propagates (strict mode).

    Returns:
        Outcomes keyed by tile. The mapping is insertion-ordered by
        ``keys`` regardless of completion order, so iterating it (or the
        original key sequence) yields a deterministic merge.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if backend not in PARALLEL_BACKENDS:
        raise FillError(
            f"unknown parallel backend {backend!r}; expected one of {PARALLEL_BACKENDS}"
        )
    if not keys:
        # No fill needed anywhere: never build a pool for zero tiles
        # (ProcessPoolExecutor(max_workers=0) raises ValueError).
        return {}

    def outcome_of(key: TileKey, value: object, seconds: float, attempt: int) -> TileOutcome:
        if isinstance(value, RobustSolve):
            return TileOutcome(
                key=key, value=value.solution, seconds=seconds,
                report=value.report, retries=attempt,
                spans=value.spans, metrics=value.metrics,
            )
        return TileOutcome(key=key, value=value, seconds=seconds, retries=attempt)

    def timed(key: TileKey) -> TileOutcome:
        t0 = time.perf_counter()
        if not isolate:
            return outcome_of(key, solve_one(key, 0), time.perf_counter() - t0, 0)
        last: BaseException | None = None
        for attempt in range(MAX_ATTEMPTS):
            try:
                value = solve_one(key, attempt)
            except SolveTimeoutError as exc:
                return _failed_outcome(key, exc, time.perf_counter() - t0, attempt)
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                last = exc
                continue
            return outcome_of(key, value, time.perf_counter() - t0, attempt)
        return _failed_outcome(key, last, time.perf_counter() - t0, MAX_ATTEMPTS - 1)

    if workers == 1 or len(keys) <= 1:
        return {key: timed(key) for key in keys}
    if backend == "process":
        with ProcessPoolExecutor(max_workers=min(workers, len(keys))) as pool:
            futures = [(key, pool.submit(solve_one, key, 0)) for key in keys]
            by_key: dict[TileKey, TileOutcome] = {}
            for key, future in futures:
                t0 = time.perf_counter()
                try:
                    # Parent-side elapsed time: result() returns immediately
                    # for already-finished futures, so this measures the
                    # remaining wait, not 0.0 for every tile.
                    value = future.result()
                    by_key[key] = outcome_of(key, value, time.perf_counter() - t0, 0)
                    continue
                except SolveTimeoutError as exc:
                    if not isolate:
                        raise
                    by_key[key] = _failed_outcome(key, exc, time.perf_counter() - t0, 0)
                    continue
                except Exception as exc:  # noqa: BLE001
                    if not isolate:
                        raise
                # Attempt 1 in the parent (the pool may be broken).
                try:
                    by_key[key] = outcome_of(
                        key, solve_one(key, 1), time.perf_counter() - t0, 1
                    )
                except Exception as exc:  # noqa: BLE001
                    by_key[key] = _failed_outcome(key, exc, time.perf_counter() - t0, 1)
            return {key: by_key[key] for key in keys}
    with ThreadPoolExecutor(max_workers=workers) as pool:
        # map() preserves input order, giving the deterministic merge.
        return {outcome.key: outcome for outcome in pool.map(timed, keys)}
