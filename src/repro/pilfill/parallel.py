"""Parallel per-tile dispatch for the PIL-Fill solve phase.

The per-tile MDFC instances are independent — the paper's tiled
formulation (and follow-ups such as the timing-aware fill flow of
arXiv:1711.01407) exploits exactly this. This module fans the tile
solves out over a thread pool and merges the outcomes deterministically:

* **Determinism.** Tiles carry their own RNG (seeded from the run seed
  and the tile key, see :func:`tile_rng`), so a stochastic method like
  the Normal baseline draws the same samples no matter which worker
  solves the tile or in which order tiles finish. The caller merges
  outcomes in dissection order, so ``workers=N`` is bit-identical to the
  serial path.
* **Threads, not processes.** Tile inputs (cost tables) are shared
  read-only structures; threads avoid pickling them per task. The
  numeric backends (scipy/HiGHS) release the GIL during their solves,
  which is where the wall-clock time goes; the pure-Python methods stay
  correct but gain less.
* **Per-tile timing.** Every outcome records its solve seconds so the
  hot tiles are visible from the CLI and harness.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

TileKey = tuple[int, int]
T = TypeVar("T")


def tile_rng(seed: int, key: TileKey) -> random.Random:
    """An RNG owned by one tile, reproducible regardless of solve order.

    String seeds hash through SHA-512 inside :class:`random.Random`, so
    the stream is stable across processes and interpreter hash
    randomization.
    """
    return random.Random(f"pilfill:{seed}:{key[0]}:{key[1]}")


@dataclass(frozen=True)
class TileOutcome:
    """One tile's solve result plus its wall-clock cost."""

    key: TileKey
    value: object
    seconds: float


def dispatch_tiles(
    keys: Sequence[TileKey],
    solve_one: Callable[[TileKey], T],
    workers: int = 1,
) -> dict[TileKey, TileOutcome]:
    """Solve every tile, serially or on a thread pool.

    Args:
        keys: tile keys to solve (each must be independent of the others).
        solve_one: maps a tile key to its solve result; must not mutate
            shared state. Stochastic solvers should draw from
            :func:`tile_rng` so results are order-independent.
        workers: 1 → plain loop (no executor overhead); >1 → thread pool.

    Returns:
        Outcomes keyed by tile. The mapping is insertion-ordered by
        ``keys`` regardless of completion order, so iterating it (or the
        original key sequence) yields a deterministic merge.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")

    def timed(key: TileKey) -> TileOutcome:
        t0 = time.perf_counter()
        value = solve_one(key)
        return TileOutcome(key=key, value=value, seconds=time.perf_counter() - t0)

    if workers == 1 or len(keys) <= 1:
        return {key: timed(key) for key in keys}
    with ThreadPoolExecutor(max_workers=workers) as pool:
        # map() preserves input order, giving the deterministic merge.
        return {outcome.key: outcome for outcome in pool.map(timed, keys)}
