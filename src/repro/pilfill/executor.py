"""Persistent process-pool executor with shared-memory tile payloads.

``BENCH_2026-08-05.json`` showed the process backend *losing* to serial
(greedy 0.09x, dp 0.49x) for a reason that has nothing to do with the
solves: every ``engine.run()`` cold-started a fresh
:class:`~concurrent.futures.ProcessPoolExecutor`, submitted one future
per tile, and pickled the full cost tables into every
:class:`~repro.pilfill.parallel.TilePayload`. The per-tile MDFC
instances are embarrassingly parallel — the dispatch was the bottleneck.
This module removes all three overheads while keeping the bit-identity
contract intact:

* **Persistent pools.** :func:`get_pool` lazily creates one pool per
  worker count and keeps it alive across ``engine.run()`` calls (the
  executor-reuse shape window-parallel density passes use in FFTPL-style
  placers, arXiv 1312.4587). Pools are parent-side state: worker
  processes re-import this module and see an empty registry, which is
  correct — they never dispatch. :func:`shutdown_pools` tears everything
  down explicitly; an ``atexit`` hook covers one-shot CLI use. A pool
  broken by a worker death is discarded and lazily rebuilt on the next
  dispatch.
* **Chunked dispatch.** Tiles ship in :class:`TileBatch` groups of
  dozens per submit (:func:`chunk_payloads`), so a 2 700-tile grid costs
  ~85 futures instead of 2 700. Results are unpacked in payload order
  regardless of completion order, preserving the deterministic merge.
* **Shared-memory payloads.** The large, run-constant inputs — the
  per-tile cost tables and the capacitance LUT arrays — are pickled
  once into a :mod:`multiprocessing.shared_memory` block
  (:class:`SharedCostStore`) and referenced from batches by a
  :class:`SharedStoreHandle` carrying a sha256 content hash. Workers
  attach, verify the hash, unpickle once, and cache the result; a batch
  whose hash differs from the cached epoch makes the worker drop its
  cache and re-sync, so a persistent pool can serve runs over different
  layouts back to back without ever seeing stale tables.

**Fork-safety.** Pools are created lazily on first dispatch, from the
dispatching (main) thread. Module state mutated in the parent *after*
that first fork is invisible to the workers — by design, nothing the
workers read lives in module state: tile data arrives via batches and
the shared store, and the content-hash handshake detects every store
change. Telemetry stays single-owner: each worker builds per-tile
buffers and ships them back inside the outcome; exactly one outcome per
tile is merged by the parent (a batch that is re-solved after a worker
death discards the dead attempt's buffers wholesale rather than merging
them twice).
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Callable, Mapping, Sequence
from weakref import finalize, ref

from repro.errors import FillError, SolveTimeoutError, WorkerDeathError
from repro.obs.metrics import NULL_METRICS, MetricsLike
from repro.obs.trace import NULL_TRACER, TracerLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.cap.lut import LUTSnapshot
    from repro.pilfill.parallel import TileKey, TileOutcome, TilePayload

#: Upper bound on the auto-chosen tiles-per-batch (see :func:`chunk_payloads`).
MAX_AUTO_BATCH = 64

#: Batches per worker the auto chunking aims for — enough slack that a
#: fast worker is never idle waiting for one straggler batch.
BATCHES_PER_WORKER = 4


# ---------------------------------------------------------------------------
# Shared-memory store (parent side)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SharedStoreHandle:
    """Reference to a :class:`SharedCostStore` block, safe to pickle into
    every batch: the shm segment name, the payload byte length, and the
    sha256 content hash workers use both to verify the bytes and as the
    cache key for the stale-epoch handshake."""

    name: str
    size: int
    content_hash: str


@dataclass(frozen=True)
class SharedStoreData:
    """What the shared block contains once unpickled: the per-tile cost
    columns (keyed by tile) and the LUT tables that produced them."""

    columns: dict[TileKey, tuple]
    lut: LUTSnapshot | None = None


class SharedCostStore:
    """Parent-owned shared-memory block holding one pickled
    :class:`SharedStoreData`.

    Created once per (prepared instance, weighted flag) and reused by
    every run; the block is unlinked when :meth:`close` is called or the
    store is garbage-collected (a :func:`weakref.finalize` guard — shm
    segments outlive processes on POSIX, so leaking them is not an
    option). Live stores are additionally tracked in the process-wide
    :class:`_LiveStoreRegistry` so a broken-pool recovery can unlink
    them *eagerly* (:func:`release_store`) instead of waiting for
    interpreter exit. ``handle`` is the picklable reference batches
    carry.
    """

    def __init__(self, data: SharedStoreData) -> None:
        blob = pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, len(blob)))
        self._shm.buf[: len(blob)] = blob
        self.handle = SharedStoreHandle(
            name=self._shm.name,
            size=len(blob),
            content_hash=hashlib.sha256(blob).hexdigest(),
        )
        self._finalizer = finalize(self, _release_shm, self._shm)
        _LIVE_STORES.register(self)

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (the once-per-worker transfer cost)."""
        return self.handle.size

    @property
    def closed(self) -> bool:
        """Whether the shared block has been unlinked (the handle is then
        dead: workers attaching to it would raise). Owners that cache
        stores check this and rebuild — see
        :meth:`~repro.pilfill.prepare.PreparedInstance.shared_store_for`.
        """
        return not self._finalizer.alive

    def close(self) -> None:
        """Unlink the shared block (idempotent)."""
        _LIVE_STORES.unregister(self.handle.content_hash)
        self._finalizer()


def _release_shm(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink ``shm``, tolerating double release."""
    try:
        shm.close()
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass


class _LiveStoreRegistry:
    """Parent-side index of live :class:`SharedCostStore` blocks.

    Keyed by content hash, holding weak references — the registry never
    extends a store's lifetime, it only lets :func:`release_store` find
    and unlink a block eagerly when the pool that was using it breaks.
    Worker processes re-import this module and see an empty registry,
    which is correct: only the parent creates stores. All mutation
    happens under the lock, per the C2xx concurrency rules.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_hash: dict[str, ref[SharedCostStore]] = {}

    def register(self, store: SharedCostStore) -> None:
        """Track a freshly created store (called by its constructor)."""
        with self._lock:
            self._by_hash[store.handle.content_hash] = ref(store)

    def unregister(self, content_hash: str) -> None:
        """Forget a store that is closing normally."""
        with self._lock:
            self._by_hash.pop(content_hash, None)

    def release(self, content_hash: str) -> bool:
        """Close (unlink) the live store behind ``content_hash``.

        Returns ``True`` when a live store was actually closed. The
        close happens outside the lock: ``close()`` re-enters
        :meth:`unregister`.
        """
        with self._lock:
            store_ref = self._by_hash.pop(content_hash, None)
        store = store_ref() if store_ref is not None else None
        if store is None:
            return False
        store.close()
        return True

    def live_names(self) -> tuple[str, ...]:
        """Segment names of stores still live (test/leak-audit hook)."""
        with self._lock:
            refs = list(self._by_hash.values())
        stores = (r() for r in refs)
        return tuple(sorted(s.handle.name for s in stores if s is not None and not s.closed))


#: The process-wide live-store index (parent-only; see the class docs).
_LIVE_STORES = _LiveStoreRegistry()


def release_store(handle: SharedStoreHandle) -> bool:
    """Eagerly unlink the live store behind ``handle``.

    Called when a broken pool is discarded mid-run: the dead workers'
    attached copies died with them, but the parent-side block (and the
    parent's own resolved copy, from the recovery path) would otherwise
    linger until the owning :class:`~repro.pilfill.prepare.
    PreparedInstance` is closed or the interpreter exits. Also drops
    this process's :class:`_StoreCache` entry for the handle. Returns
    ``True`` when a live block was unlinked. Owners that cached the
    store observe :attr:`SharedCostStore.closed` and rebuild.
    """
    released = _LIVE_STORES.release(handle.content_hash)
    _STORE_CACHE.evict(handle.content_hash)
    return released


def live_store_names() -> tuple[str, ...]:
    """Segment names of currently live shared stores (leak audits)."""
    return _LIVE_STORES.live_names()


def make_shared_store(
    columns: Mapping[TileKey, tuple],
    lut: LUTSnapshot | None = None,
) -> SharedCostStore | None:
    """Build a :class:`SharedCostStore`, or ``None`` where the platform
    has no usable shared memory (callers then fall back to inline
    per-payload columns — slower, never wrong)."""
    data = SharedStoreData(columns=dict(columns), lut=lut)
    try:
        return SharedCostStore(data)
    except OSError:  # pragma: no cover - sandboxed /dev/shm
        return None


# ---------------------------------------------------------------------------
# Shared-memory store (worker side)
# ---------------------------------------------------------------------------


class _StoreCache:
    """Per-process cache of the resolved :class:`SharedStoreData`.

    Single-owner by construction — each worker process (and the parent,
    which uses the same resolver for its retry path) owns exactly one
    instance and touches it from one thread at a time. Keyed by content
    hash: a handle carrying a new hash evicts the previous epoch, which
    is the stale-worker re-sync the persistent pool relies on.
    """

    def __init__(self) -> None:
        self._by_hash: dict[str, SharedStoreData] = {}

    def resolve(self, handle: SharedStoreHandle) -> SharedStoreData:
        cached = self._by_hash.get(handle.content_hash)
        if cached is not None:
            return cached
        shm = shared_memory.SharedMemory(name=handle.name)
        try:
            blob = bytes(shm.buf[: handle.size])
        finally:
            shm.close()
        digest = hashlib.sha256(blob).hexdigest()
        if digest != handle.content_hash:
            raise FillError(
                f"shared store {handle.name} content hash mismatch: "
                f"expected {handle.content_hash[:12]}…, read {digest[:12]}…"
            )
        data = pickle.loads(blob)
        # New epoch: drop older stores so a long-lived worker's memory
        # stays bounded by one resolved table set per weighted flag.
        if len(self._by_hash) >= 4:
            self._by_hash.clear()
        self._by_hash[handle.content_hash] = data
        return data

    def evict(self, content_hash: str) -> bool:
        """Drop one resolved epoch; ``True`` when it was held.

        The parent resolves a copy of the store for its broken-pool
        recovery path — when the store is released early
        (:func:`release_store`) that copy must go too, or a later run
        reusing the content hash would silently serve bytes from a
        segment that no longer exists for new attachers.
        """
        return self._by_hash.pop(content_hash, None) is not None

    def cached_hashes(self) -> tuple[str, ...]:
        """Hashes currently resolved (test/introspection hook)."""
        return tuple(sorted(self._by_hash))


#: The one resolver this process owns (worker or parent alike).
_STORE_CACHE = _StoreCache()


def resolve_store(handle: SharedStoreHandle) -> SharedStoreData:
    """Attach/verify/unpickle ``handle``'s block, cached by content hash."""
    return _STORE_CACHE.resolve(handle)


def _hydrate(payload: TilePayload, data: SharedStoreData | None) -> TilePayload:
    """Fill a store-backed payload's columns from the resolved store.

    Payloads that already carry inline columns pass through untouched, so
    the same solve code serves both the shared-memory and legacy paths.
    """
    if payload.columns or data is None:
        return payload
    columns = data.columns.get(payload.key)
    if columns is None:
        raise FillError(f"shared store has no cost columns for tile {payload.key}")
    return replace(payload, columns=columns)


# ---------------------------------------------------------------------------
# Worker entry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TileBatch:
    """Dozens of tile tasks shipped as one pool submit.

    ``store`` is ``None`` when the payloads carry their columns inline.
    ``isolate`` selects the retry-then-record policy inside the worker
    (mirroring the serial dispatcher) versus fail-fast strict mode.
    """

    payloads: tuple[TilePayload, ...]
    store: SharedStoreHandle | None = None
    isolate: bool = True


def _worker_init(handle: SharedStoreHandle | None) -> None:
    """Pool initializer: pre-resolve the store available at pool creation.

    Best-effort warm-up only — the per-batch content-hash handshake is
    what guarantees freshness, so failures here must not break the pool.
    """
    if handle is None:
        return
    try:
        resolve_store(handle)
    except Exception:  # noqa: BLE001 - warm-up is advisory  # pragma: no cover
        pass


def solve_tile_batch(batch: TileBatch) -> list[TileOutcome]:
    """Solve one batch inside a pool worker (also run in-process by the
    parent for serial dispatch and broken-pool recovery).

    Per-tile policy under ``isolate``: a deadline expiry is recorded as a
    ``TIME_LIMIT`` failed outcome (a deadline that fired will fire
    again, and the batch's remaining tiles still deserve their turn); any
    other solve error is retried once in place with the same derived RNG
    and then recorded as failed. Only
    :class:`~repro.errors.WorkerDeathError` escapes — nothing inside a
    dead worker can run recovery code, so the *parent* re-solves the
    whole batch (see :func:`dispatch_batches`). Exactly one outcome per
    tile ever leaves this function, so the parent can never merge a
    failed attempt's telemetry buffers alongside the retry's.
    """
    from repro.pilfill.parallel import _solve_payload_isolated, solve_tile_payload

    data = resolve_store(batch.store) if batch.store is not None else None
    outcomes: list[TileOutcome] = []
    for payload in batch.payloads:
        hydrated = _hydrate(payload, data)
        if batch.isolate:
            outcomes.append(
                _solve_payload_isolated(hydrated, escalate=(WorkerDeathError,))
            )
        else:
            outcomes.append(solve_tile_payload(hydrated))
    return outcomes


# ---------------------------------------------------------------------------
# Persistent pool registry (parent side)
# ---------------------------------------------------------------------------


class _PoolRegistry:
    """Lazily-created process pools keyed by worker count.

    Parent-side state: dispatchers in the main process borrow pools from
    here; worker processes never touch the registry (a freshly imported
    copy in a worker is empty, which is correct). All mutation happens
    under the lock, per the C2xx concurrency rules.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pools: dict[int, ProcessPoolExecutor] = {}
        self._created = 0

    def get(
        self, workers: int, warm: SharedStoreHandle | None = None
    ) -> ProcessPoolExecutor:
        """The persistent pool for ``workers``, created on first use.

        ``warm`` (optional) is handed to the worker initializer so
        freshly forked workers pre-resolve the current shared store.
        """
        if workers < 2:
            raise FillError(f"persistent pools need workers >= 2, got {workers}")
        with self._lock:
            pool = self._pools.get(workers)
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_worker_init,
                    initargs=(warm,),
                )
                self._pools[workers] = pool
                self._created += 1
            return pool

    def discard(self, workers: int) -> None:
        """Drop (and shut down) the pool for ``workers`` — called after a
        :class:`BrokenProcessPool` so the next dispatch rebuilds it."""
        with self._lock:
            pool = self._pools.pop(workers, None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Shut every pool down and empty the registry (idempotent)."""
        with self._lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.shutdown(wait=True, cancel_futures=True)

    def stats(self) -> dict[str, int]:
        """Live pool count and lifetime creations (test/obs hook)."""
        with self._lock:
            return {"live": len(self._pools), "created": self._created}


#: The process-wide registry (parent-only; see :class:`_PoolRegistry`).
_REGISTRY = _PoolRegistry()


def get_pool(workers: int, warm: SharedStoreHandle | None = None) -> ProcessPoolExecutor:
    """The persistent pool for ``workers`` (created lazily, reused across
    ``engine.run()`` calls until :func:`shutdown_pools`)."""
    return _REGISTRY.get(workers, warm)


def discard_pool(workers: int) -> None:
    """Forget a broken pool so the next dispatch starts a fresh one."""
    _REGISTRY.discard(workers)


def shutdown_pools() -> None:
    """Explicitly shut down every persistent pool.

    Long-lived embedders should call this when parallel filling is done;
    one-shot CLI runs are covered by the ``atexit`` registration below.
    """
    _REGISTRY.shutdown()


def pool_stats() -> dict[str, int]:
    """Registry introspection: live pools and lifetime pool creations."""
    return _REGISTRY.stats()


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# Chunked dispatch (parent side)
# ---------------------------------------------------------------------------


def chunk_payloads(
    payloads: Sequence[TilePayload], workers: int, batch_tiles: int | None = None
) -> list[tuple[TilePayload, ...]]:
    """Split ``payloads`` into submit-sized chunks, preserving order.

    ``batch_tiles=None`` auto-sizes: enough batches that every worker
    gets ~:data:`BATCHES_PER_WORKER` of them (so one slow batch cannot
    idle the rest of the pool), capped at :data:`MAX_AUTO_BATCH` tiles
    per submit. Chunking never affects results — only how many futures
    carry them.
    """
    n = len(payloads)
    if n == 0:
        return []
    if batch_tiles is None:
        per_batch = -(-n // (workers * BATCHES_PER_WORKER))  # ceil div
        batch_tiles = max(1, min(MAX_AUTO_BATCH, per_batch))
    elif batch_tiles < 1:
        raise FillError(f"batch_tiles must be >= 1, got {batch_tiles}")
    return [tuple(payloads[i : i + batch_tiles]) for i in range(0, n, batch_tiles)]


def dispatch_batches(
    payloads: Sequence[TilePayload],
    workers: int,
    isolate: bool = True,
    *,
    store: SharedStoreHandle | None = None,
    batch_tiles: int | None = None,
    persistent: bool = True,
    tracer: TracerLike = NULL_TRACER,
    metrics: MetricsLike = NULL_METRICS,
    batch_solver: "Callable[[TileBatch], list[TileOutcome]] | None" = None,
) -> dict[TileKey, TileOutcome]:
    """Solve ``payloads`` on a (persistent) process pool in chunked batches.

    The parent submits :class:`TileBatch` groups, waits for them in
    submission order, and re-keys outcomes by payload order — the merge
    is deterministic no matter how the pool schedules batches. Failure
    policy per batch future:

    * ``isolate=False``: the first exception propagates (strict mode).
    * :class:`BrokenProcessPool` (a worker actually died): the broken
      pool is discarded from the registry, and this batch — plus any
      batch stranded behind it — is re-solved *in the parent* at attempt
      1 of the same deterministic contract (payload RNGs re-derive from
      ``(seed, key)``, so results match what the worker would have
      produced).
    * any other escaping exception (e.g. an injected
      :class:`~repro.errors.WorkerDeathError`): same parent-side attempt-1
      re-solve, pool kept.

    The re-solve *replaces* the batch wholesale; outcomes (and their
    telemetry buffers) from the failed attempt never reach the caller,
    so span/metric totals count every tile exactly once.

    After a broken pool the run's shared store is released eagerly
    (:func:`release_store`) — the dead workers' attached copies are
    gone, and keeping the parent-side block (plus the parent's resolved
    recovery copy) alive until interpreter exit is the shm leak this
    guards against. The release waits until every batch has been
    recovered: :func:`_resolve_batch_in_parent` needs the segment alive.

    ``batch_solver`` substitutes the submitted entry point (default
    :func:`solve_tile_batch`); it must be a module-level picklable
    callable with the same contract — the sharded path submits its
    X301-anchored wrapper here.
    """
    solver = batch_solver if batch_solver is not None else solve_tile_batch
    batches = [
        TileBatch(payloads=chunk, store=store, isolate=isolate)
        for chunk in chunk_payloads(payloads, workers, batch_tiles)
    ]
    if not batches:
        return {}

    if persistent:
        pool = get_pool(workers, warm=store)
    else:
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(batches)),
            initializer=_worker_init,
            initargs=(store,),
        )
    try:
        futures: list[Future[list[TileOutcome]]] = []
        for batch in batches:
            metrics.count("pool.batches")
            metrics.count("pool.tiles_submitted", len(batch.payloads))
            if metrics is not NULL_METRICS:
                # Payload-bytes metric: what actually crosses the pickle
                # boundary per submit (the shared store is excluded — it
                # crosses once per worker, reported as pool.store_bytes).
                metrics.count("pool.payload_bytes", len(pickle.dumps(batch)))
            futures.append(pool.submit(solver, batch))
        if store is not None:
            metrics.count("pool.store_bytes", store.size)

        broken = False
        by_key: dict[TileKey, TileOutcome] = {}
        for index, (batch, future) in enumerate(zip(batches, futures)):
            with tracer.span("solve.batch", index=index, tiles=len(batch.payloads)):
                try:
                    outcomes = future.result()
                except SolveTimeoutError:
                    if not isolate:
                        raise
                    outcomes = _resolve_batch_in_parent(batch, store)
                except BrokenProcessPool:
                    if not isolate:
                        raise
                    broken = True
                    if persistent:
                        discard_pool(workers)
                    metrics.count("pool.broken")
                    outcomes = _resolve_batch_in_parent(batch, store)
                except Exception:  # noqa: BLE001 - isolation is the point
                    if not isolate:
                        raise
                    outcomes = _resolve_batch_in_parent(batch, store)
            for outcome in outcomes:
                by_key[outcome.key] = outcome
        if broken and store is not None:
            release_store(store)
    finally:
        if not persistent:
            pool.shutdown(wait=True)
    # Re-key in payload order for the deterministic merge.
    return {p.key: by_key[p.key] for p in payloads}


def _resolve_batch_in_parent(
    batch: TileBatch, store: SharedStoreHandle | None
) -> list[TileOutcome]:
    """Re-solve a whole batch in the parent process.

    Used when the batch's worker died (really, or via an injected
    :class:`~repro.errors.WorkerDeathError`). The failed attempt returned
    nothing, so every outcome built here is the *only* one the caller
    sees for these tiles — the single-merge guarantee the telemetry
    totals rely on.

    Each tile replays the standard isolated policy from attempt 0:
    batchmates of the dying tile (whose own solves never failed) come
    back with ``retries=0``, exactly as the pre-batching per-tile
    dispatcher reported them, while the tile whose injected death
    re-fires on attempt 0 spends its one retry — matching the
    deterministic retry contract across process boundaries. A fault that
    persists into attempt 1 is recorded as failed rather than raised.
    """
    from repro.pilfill.parallel import _solve_payload_isolated

    data = resolve_store(store) if store is not None else None
    return [
        _solve_payload_isolated(_hydrate(payload, data))
        for payload in batch.payloads
    ]


def worker_pids(outcomes: Mapping[TileKey, TileOutcome]) -> frozenset[int]:
    """Distinct worker PIDs that produced ``outcomes`` (excluding the
    current process — i.e. excluding serial/parent-retry solves)."""
    me = os.getpid()
    return frozenset(
        o.pid for o in outcomes.values() if o.pid is not None and o.pid != me
    )
