"""Structural type of the per-column cost tables the solvers consume.

Two concrete classes satisfy it: :class:`~repro.pilfill.costs.ColumnCosts`
(the engine's in-process tables, wrapping a full
:class:`~repro.pilfill.columns.SlackColumn`) and
:class:`~repro.pilfill.parallel.PayloadColumnCosts` (the compact picklable
view shipped to pool workers). The solvers only read the members declared
here, so they accept either — this module pins that contract as a
:class:`typing.Protocol` instead of a docstring.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.pilfill.columns import ColumnNeighbor


class ColumnLike(Protocol):
    """Electrical view of one slack column (geometry-free)."""

    @property
    def gap_um(self) -> float | None: ...

    @property
    def below(self) -> ColumnNeighbor | None: ...

    @property
    def above(self) -> ColumnNeighbor | None: ...

    @property
    def has_impact(self) -> bool: ...

    def resistance_weight(self, weighted: bool) -> float: ...


class ColumnCostsLike(Protocol):
    """Cost tables of one column, as read by the tile solvers."""

    @property
    def column(self) -> ColumnLike: ...

    @property
    def exact(self) -> tuple[float, ...]: ...

    @property
    def linear(self) -> tuple[float, ...]: ...

    @property
    def capacity(self) -> int: ...


#: What every per-tile solver takes: one cost table per slack column.
TileCosts = Sequence[ColumnCostsLike]
