"""Local-search refinement of a fill placement (beyond the paper).

The per-tile solvers are optimal *under the per-tile model*, but the paper
itself notes the model's blind spot (Section 6): a physical slack column
crossing a tile boundary is split and each half is priced independently —
the true (convex) capacitance of the recombined stack is higher. This pass
repairs exactly that: it re-prices the finished placement with the
evaluator's *cross-tile* grouping (one group = one gap block × one grid
column, regardless of tiles) and greedily moves features to better sites
**within their own tile**, so the per-tile density prescription — and
therefore density-control quality — is preserved exactly.

Each group's weighted delay is ``k_g · ΔC_exact(m)`` for a precomputed
coefficient ``k_g``, so removal/insertion marginals are O(1) and each
steepest-descent move scans groups, not sites. Because the group cost is
the same function the evaluator applies, every accepted move strictly
decreases the evaluated impact — refinement is monotone by construction.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.cap.fillimpact import exact_column_cap
from repro.dissection.fixed import FixedDissection
from repro.geometry import Rect
from repro.layout.layout import FillFeature
from repro.layout.rctree import OHM_FF_TO_PS
from repro.pilfill.columns import SlackColumn
from repro.pilfill.impact_model import ImpactModel


@dataclass
class RefineResult:
    """Outcome of a refinement pass."""

    features: list[FillFeature] = field(default_factory=list)
    moves: int = 0
    initial_wtau_ps: float = 0.0
    final_wtau_ps: float = 0.0

    @property
    def improvement_ps(self) -> float:
        return self.initial_wtau_ps - self.final_wtau_ps


class _Group:
    """One physical column stack (may span tiles)."""

    __slots__ = ("key", "coeff", "gap_um", "fill_w_um", "free_by_tile", "members")

    def __init__(
        self,
        key: tuple[int, int],
        coeff: float,
        gap_um: float | None,
        fill_w_um: float,
    ) -> None:
        self.key = key
        self.coeff = coeff          # Σ sinks·R(center) · ε_r · t · 1e-3
        self.gap_um = gap_um        # None => impact-free group
        self.fill_w_um = fill_w_um
        self.free_by_tile: dict[tuple[int, int], list[Rect]] = defaultdict(list)
        self.members: list[tuple[int, tuple[int, int]]] = []  # (feature idx, tile)

    def cost(self, m: int) -> float:
        if self.gap_um is None or m == 0:
            return 0.0
        return self.coeff * exact_column_cap(1.0, 1.0, self.gap_um, m, self.fill_w_um)

    def removal_saving(self) -> float:
        m = len(self.members)
        return self.cost(m) - self.cost(m - 1) if m else 0.0

    def insertion_cost(self) -> float:
        m = len(self.members)
        return self.cost(m + 1) - self.cost(m)


def _group_coeff(model: ImpactModel, block_id: int, along: int) -> tuple[float, float | None]:
    """(cost coefficient, gap_um) of a group in block ``block_id`` whose
    column center sits at along-axis coordinate ``along``."""
    block = model._blocks[block_id]
    if block.below is None or block.above is None:
        return 0.0, None
    coeff = 0.0
    for sweep_line in (block.below, block.above):
        if sweep_line.timing is not None:
            coeff += (
                sweep_line.timing.downstream_sinks
                * sweep_line.timing.resistance_at(along)
            )
    coeff *= OHM_FF_TO_PS * model._eps_r * model._thickness
    return coeff, block.gap / model._dbu


def refine_placement(
    model: ImpactModel,
    dissection: FixedDissection,
    columns_by_tile: dict[tuple[int, int], list[SlackColumn]],
    features: list[FillFeature],
    max_moves: int = 10000,
) -> RefineResult:
    """Improve ``features`` by within-tile relocations. See module doc."""
    layer = model.layer
    result = RefineResult(features=list(features))
    result.initial_wtau_ps = model.score(result.features).weighted_total_ps
    if max_moves <= 0 or not result.features:
        result.final_wtau_ps = result.initial_wtau_ps
        return result

    fill_w_um = model._fill_w_um
    groups: dict[tuple, _Group] = {}
    site_group: dict[Rect, _Group] = {}

    def group_for(block_id: int, col: int, along: int) -> _Group:
        key = (block_id, col)
        group = groups.get(key)
        if group is None:
            coeff, gap_um = _group_coeff(model, block_id, along)
            group = _Group(key, coeff, gap_um, fill_w_um)
            groups[key] = group
        return group

    for tile_key, cols in columns_by_tile.items():
        for col in cols:
            if not col.sites:
                continue
            probe = FillFeature(layer=layer, rect=col.sites[0])
            state = model.locate(probe)
            center = col.sites[0].center
            along = center.x if model._horizontal else center.y
            group = group_for(state.block_id, state.col, along)
            for rect in col.sites:
                site_group[rect] = group
                group.free_by_tile[tile_key].append(rect)

    occupied_tiles: dict[int, tuple[int, int]] = {}
    for i, feature in enumerate(result.features):
        group = site_group.get(feature.rect)
        tile = dissection.tile_at_point(*feature.rect.center.as_tuple()).key
        if group is None:
            state = model.locate(feature)
            center = feature.rect.center
            along = center.x if model._horizontal else center.y
            group = group_for(state.block_id, state.col, along)
        else:
            if feature.rect in group.free_by_tile[tile]:
                group.free_by_tile[tile].remove(feature.rect)
        group.members.append((i, tile))
        occupied_tiles[i] = tile

    # Tile-indexed views for the move search.
    sources_by_tile: dict[tuple[int, int], set] = defaultdict(set)
    targets_by_tile: dict[tuple[int, int], set] = defaultdict(set)
    for group in groups.values():
        for _idx, tile in group.members:
            sources_by_tile[tile].add(group.key)
        for tile, free in group.free_by_tile.items():
            if free:
                targets_by_tile[tile].add(group.key)

    moves = 0
    while moves < max_moves:
        best = None  # (gain, tile, src group, dst group)
        for tile, source_keys in sources_by_tile.items():
            target_keys = targets_by_tile.get(tile)
            if not source_keys or not target_keys:
                continue
            src = max((groups[k] for k in source_keys), key=_Group.removal_saving)
            candidates = sorted(
                (groups[k] for k in target_keys), key=_Group.insertion_cost
            )
            dst = candidates[0]
            if dst is src and len(candidates) > 1:
                dst = candidates[1]
            if dst is src:
                continue
            gain = src.removal_saving() - dst.insertion_cost()
            if gain > 1e-15 and (best is None or gain > best[0]):
                best = (gain, tile, src, dst)
        if best is None:
            break
        _gain, tile, src, dst = best
        member_pos = next(
            pos for pos, (_i, t) in enumerate(src.members) if t == tile
        )
        idx, _t = src.members.pop(member_pos)
        old = result.features[idx]
        target_rect = dst.free_by_tile[tile].pop()
        result.features[idx] = FillFeature(layer=layer, rect=target_rect)
        src.free_by_tile[tile].append(old.rect)
        dst.members.append((idx, tile))
        moves += 1

        # Maintain the tile-indexed views.
        if not any(t == tile for _i, t in src.members):
            # src may still have members in other tiles; per-tile view only.
            sources_by_tile[tile].discard(src.key)
        sources_by_tile[tile].add(dst.key)
        targets_by_tile[tile].add(src.key)
        if not dst.free_by_tile[tile]:
            targets_by_tile[tile].discard(dst.key)

    result.moves = moves
    result.final_wtau_ps = model.score(result.features).weighted_total_ps
    return result
