"""Per-net capacitance-budgeted PIL-Fill (paper Section 7, "ongoing
research").

The paper's closing direction: timing flows hand down *budgeted slacks*
per net, translatable into capacitance budgets ``B_net`` (fF). Fill must
then satisfy the per-tile density prescription while keeping the coupling
capacitance added to each net within its budget — and, among feasible
placements, still minimize total weighted delay.

Per tile this is no longer separable per column (a column couples to two
nets, and budgets tie columns of the same net together), so it genuinely
needs the ILP machinery:

    minimize    Σ_k Σ_n cost_k(n) · s_{k,n}                 (ILP-II objective)
    subject to  Σ_k m_k = F                                  (budget, Eq. 17)
                one-hot selectors per column                 (Eqs. 18-19)
                Σ_{k adj net} ΔC_k(n)·s_{k,n} ≤ B_net        (NEW, per net)

A Lagrangian-flavoured greedy fallback (`solve_tile_budgeted_greedy`)
handles tiles too large for exact solving: marginal greedy that skips
columns whose next feature would breach a net budget.

Budgets are naturally derived from timing slack via
:func:`derive_net_cap_budgets`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import heapq

from repro.errors import FillError
from repro.ilp import Model, VarKind, solve
from repro.layout.layout import RoutedLayout
from repro.layout.rctree import OHM_FF_TO_PS
from repro.pilfill.costs import ColumnCosts
from repro.pilfill.solution import TileSolution


@dataclass
class BudgetedOutcome:
    """Solution of one budgeted tile plus the capacitance actually used."""

    solution: TileSolution
    cap_used_ff: dict[str, float]
    feasible: bool


def solve_tile_budgeted_ilp(
    costs: list[ColumnCosts],
    cap_tables: list[tuple[float, ...]],
    budget: int,
    net_budgets_ff: dict[str, float],
    backend: str = "auto",
    time_limit: float | None = None,
) -> BudgetedOutcome:
    """Exact per-tile solve with per-net capacitance budgets.

    Args:
        costs: per-column cost tables (exact delay model).
        cap_tables: per-column ΔC(n) in fF (parallel to ``costs``) — the
            raw capacitance each count adds to *each* adjacent net.
        budget: features to place in this tile.
        net_budgets_ff: remaining capacitance budget per net name; nets
            absent from the mapping are unconstrained.

    Returns:
        A :class:`BudgetedOutcome`; ``feasible=False`` when no placement
        satisfies every budget (the caller may then relax or report).
    """
    if budget == 0:
        return BudgetedOutcome(TileSolution(counts=[0] * len(costs)), {}, True)
    capacity = sum(c.capacity for c in costs)
    if budget > capacity:
        raise FillError(f"budget {budget} exceeds tile capacity {capacity}")

    model = Model("budgeted-tile")
    m_vars = []
    objective_terms = []
    net_terms: dict[str, list] = defaultdict(list)
    for k, (cc, caps) in enumerate(zip(costs, cap_tables)):
        m_k = model.add_var(f"m_{k}", lb=0, ub=cc.capacity, kind=VarKind.INTEGER)
        m_vars.append(m_k)
        if cc.capacity == 0:
            continue
        selectors = [
            model.add_var(f"s_{k}_{n}", kind=VarKind.BINARY)
            for n in range(cc.capacity + 1)
        ]
        model.add_constraint(sum((s * 1.0 for s in selectors), start=0.0) == 1.0)
        model.add_constraint(
            m_k == sum((selectors[n] * float(n) for n in range(cc.capacity + 1)), start=0.0)
        )
        for n in range(1, cc.capacity + 1):
            if cc.exact[n] != 0.0:  # pilfill: allow[D104] -- exact-zero sparsity test: no-impact entries are literal 0.0, not computed
                objective_terms.append(selectors[n] * cc.exact[n])
        if cc.column.has_impact:
            for neighbor in (cc.column.below, cc.column.above):
                if neighbor is None or neighbor.net not in net_budgets_ff:
                    continue
                for n in range(1, cc.capacity + 1):
                    if caps[n] != 0.0:  # pilfill: allow[D104] -- exact-zero sparsity test: uncoupled columns tabulate literal 0.0
                        net_terms[neighbor.net].append(selectors[n] * caps[n])

    model.add_constraint(sum((m * 1.0 for m in m_vars), start=0.0) == float(budget))
    for net, terms in net_terms.items():
        model.add_constraint(
            sum(terms, start=0.0) <= net_budgets_ff[net]
        )
    model.minimize(sum(objective_terms, start=0.0))

    result = solve(model, backend=backend, time_limit=time_limit)
    if not result.status.is_optimal:
        # Includes TIME_LIMIT: the caller already has a budgeted-greedy
        # fallback for infeasible outcomes, which covers timeouts too.
        return BudgetedOutcome(TileSolution(counts=[0] * len(costs)), {}, False)
    counts = [int(result.value(m.name)) for m in m_vars]
    used = _cap_used(costs, cap_tables, counts)
    solution = TileSolution(
        counts=counts,
        model_objective_ps=result.objective,
        nodes=result.nodes,
        iterations=result.iterations,
    )
    return BudgetedOutcome(solution, used, True)


def solve_tile_budgeted_greedy(
    costs: list[ColumnCosts],
    cap_tables: list[tuple[float, ...]],
    budget: int,
    net_budgets_ff: dict[str, float],
) -> BudgetedOutcome:
    """Marginal greedy that respects per-net capacitance budgets.

    Grants the cheapest next feature whose ΔC fits in both adjacent nets'
    remaining budgets; columns that would breach a budget are frozen. May
    return fewer than ``budget`` features when the budgets bind —
    ``feasible`` reflects whether the full count was placed.
    """
    remaining = dict(net_budgets_ff)
    counts = [0] * len(costs)
    spent = 0.0

    heap: list[tuple[float, int]] = []
    for k, cc in enumerate(costs):
        if cc.capacity > 0:
            heapq.heappush(heap, (cc.exact[1] - cc.exact[0], k))

    placed = 0
    frozen: set[int] = set()
    while placed < budget and heap:
        marginal, k = heapq.heappop(heap)
        if k in frozen:
            continue
        cc, caps = costs[k], cap_tables[k]
        nxt = counts[k] + 1
        delta_cap = caps[nxt] - caps[counts[k]]
        nets = []
        if cc.column.has_impact:
            nets = [
                n.net for n in (cc.column.below, cc.column.above)
                if n is not None and n.net in remaining
            ]
        if any(remaining[n] < delta_cap - 1e-15 for n in nets):
            frozen.add(k)
            continue
        counts[k] = nxt
        for n in nets:
            remaining[n] -= delta_cap
        spent += marginal
        placed += 1
        if nxt < len(cc.exact) - 1:
            heapq.heappush(heap, (cc.exact[nxt + 1] - cc.exact[nxt], k))

    used = _cap_used(costs, cap_tables, counts)
    solution = TileSolution(counts=counts, model_objective_ps=spent)
    return BudgetedOutcome(solution, used, placed == budget)


def _cap_used(
    costs: list[ColumnCosts],
    cap_tables: list[tuple[float, ...]],
    counts: list[int],
) -> dict[str, float]:
    used: dict[str, float] = defaultdict(float)
    for cc, caps, n in zip(costs, cap_tables, counts):
        if n == 0 or not cc.column.has_impact:
            continue
        for neighbor in (cc.column.below, cc.column.above):
            if neighbor is not None:
                used[neighbor.net] += caps[n]
    return dict(used)


def derive_net_cap_budgets(
    layout: RoutedLayout,
    slack_fraction_ps: float = 0.05,
) -> dict[str, float]:
    """Capacitance budgets from timing slack (paper Section 7's premise).

    Gives each net a delay slack of ``slack_fraction_ps`` × its worst
    baseline sink delay, then converts to capacitance through the net's
    mean line resistance: B_net = slack_ps / (R̄ · 1e-3).
    """
    if slack_fraction_ps < 0:
        raise FillError("slack fraction must be non-negative")
    budgets: dict[str, float] = {}
    for tree in layout.trees():
        delays = tree.elmore_delays()
        if not delays:
            continue
        slack_ps = max(delays.values()) * slack_fraction_ps
        resistances = [
            line.resistance_at(line.segment.high_coord) for line in tree.lines
        ]
        mean_res = sum(resistances) / len(resistances)
        if mean_res <= 0:
            continue
        budgets[tree.net.name] = slack_ps / (mean_res * OHM_FF_TO_PS)
    return budgets


def build_cap_tables(costs: list[ColumnCosts]) -> list[tuple[float, ...]]:
    """Recover raw ΔC(n) (fF) per column from the weighted cost tables.

    ``exact[n] = r̂ · ΔC(n) · OHM_FF_TO_PS`` with the r̂ the tables were
    built with; dividing it back out yields the capacitance each adjacent
    net receives. Columns without impact get all-zero tables.
    """
    out: list[tuple[float, ...]] = []
    for cc in costs:
        if not cc.column.has_impact:
            out.append(tuple(0.0 for _ in range(cc.capacity + 1)))
            continue
        # The tables may have been built weighted or unweighted; both
        # divisors are available on the column, and exactly one of them
        # reproduces a consistent ΔC — weighted tables were built with
        # resistance_weight(True). Prefer it; fall back when degenerate.
        divisor = cc.column.resistance_weight(True) * OHM_FF_TO_PS
        if divisor <= 0:
            divisor = cc.column.resistance_weight(False) * OHM_FF_TO_PS
        if divisor <= 0:
            out.append(tuple(0.0 for _ in range(cc.capacity + 1)))
            continue
        out.append(tuple(v / divisor for v in cc.exact))
    return out
