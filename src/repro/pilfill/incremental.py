"""Incremental ECO re-fill: content-addressed tile-solution caching.

Per-tile MDFC solves are pure functions of their local inputs: the
column geometry + cost tables inside the tile, the tile's effective
budget, the solve knobs that change output (method, weighting, ILP
backend, seed, fallback policy, fault spec), and the tile key itself
(the deterministic per-tile RNG stream and fault matching both hang off
it). This module hashes exactly those inputs — mirroring the digest
pattern of :mod:`repro.analysis.cache` — and fronts a
:class:`~repro.pilfill.store.SolutionStore` with hit/miss/invalidation
accounting.

Correctness never depends on change tracking: the digest covers every
solve input, so an edited tile hashes to a new key and misses by
construction. The dirty-window pass (:meth:`SolutionCache.
invalidate_window`) is bookkeeping — it evicts known-stale memory
entries and reports how many tiles an ECO touched, which is what the
``eco_refill`` bench and the run-report counters surface.

Cache keys are **pure content hashes**. Deriving a key from the wall
clock (or anything else environment-dependent) would make hits
irreproducible; the D102 lint rule and its ``D102_cachekey`` fixture
pair enforce that contract on these modules.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import FillError
from repro.geometry.rect import Rect
from repro.geometry.spatial import GridBinIndex
from repro.pilfill.columns import ColumnNeighbor
from repro.pilfill.costs import ColumnCosts
from repro.pilfill.robust import SolveReport
from repro.pilfill.solution import TileSolution
from repro.pilfill.store import STORE_VERSION, CachedEntry, SolutionStore, copy_solution

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from pathlib import Path

    from repro.layout.layout import FillFeature
    from repro.pilfill.engine import EngineConfig
    from repro.pilfill.impact_model import ImpactModel
    from repro.testing.faults import FaultSpec

TileKey = tuple[int, int]


def _rect_payload(rect: Rect) -> list[int]:
    return [rect.xlo, rect.ylo, rect.xhi, rect.yhi]


def _neighbor_payload(neighbor: "ColumnNeighbor | None") -> list[object] | None:
    if neighbor is None:
        return None
    return [neighbor.net, neighbor.line_index, neighbor.sinks, neighbor.resistance_ohm]


def _fault_spec_payload(spec: "FaultSpec | None") -> list[dict[str, object]] | None:
    """JSON-stable form of a fault spec (frozensets need explicit ordering)."""
    if spec is None:
        return None
    return [
        {
            "kind": rule.kind,
            "tiles": (
                None if rule.tiles is None else sorted(list(key) for key in rule.tiles)
            ),
            "methods": None if rule.methods is None else list(rule.methods),
            "attempts": None if rule.attempts is None else list(rule.attempts),
        }
        for rule in spec.rules
    ]


def _sha256(payload: object) -> str:
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def run_context_digest(config: "EngineConfig", layer: str) -> str:
    """Digest of the run-wide knobs every tile solve shares.

    Includes every :class:`EngineConfig` field that changes solve
    *output* and excludes the ones that only change *scheduling*
    (workers, parallel backend, batching, telemetry) — the bit-identity
    contract across dispatchers is what makes that exclusion sound.
    ``density_backend`` is likewise excluded: the FFT path's canonical
    rounding makes budgets bit-identical to the direct oracle, and the
    per-tile digest covers the effective budget anyway, so a map-backend
    switch can never serve a stale solution.
    :data:`~repro.pilfill.store.STORE_VERSION` is folded in so a store
    format bump retires every old digest at the key level too.
    """
    rules = config.fill_rules
    density = config.density_rules
    payload: dict[str, object] = {
        "store_version": STORE_VERSION,
        "layer": layer,
        "method": config.method,
        "weighted": config.weighted,
        "ilp_backend": config.backend,
        "seed": config.seed,
        "fallback": config.fallback,
        "fill_rules": [rules.fill_size, rules.fill_gap, rules.buffer_distance],
        "density_rules": [
            density.window_size,
            density.r,
            density.min_density,
            density.max_density,
        ],
        "fault_spec": _fault_spec_payload(config.fault_spec),
    }
    return _sha256(payload)


def tile_digest(
    context_digest: str,
    key: TileKey,
    costs: Sequence[ColumnCosts],
    budget: int,
) -> str:
    """Digest of one tile's full solve input.

    Covers the tile key (RNG stream + fault matching are keyed on it),
    the effective budget, and — per column — the placement geometry
    (site rects feed straight into the placed features), the gap class,
    both timing neighbors, and the exact/linear cost tables. Floats
    serialize via ``repr`` (shortest round-trip), so equal digests mean
    bit-equal cost content, not merely approximately-equal.
    """
    columns: list[dict[str, object]] = []
    for cc in costs:
        column = cc.column
        columns.append(
            {
                "col": column.col,
                "sites": [_rect_payload(site) for site in column.sites],
                "gap_um": column.gap_um,
                "below": _neighbor_payload(column.below),
                "above": _neighbor_payload(column.above),
                "exact": list(cc.exact),
                "linear": list(cc.linear),
            }
        )
    payload: dict[str, object] = {
        "context": context_digest,
        "tile": list(key),
        "budget": budget,
        "columns": columns,
    }
    return _sha256(payload)


def cache_eligible(config: "EngineConfig") -> bool:
    """Whether a config's outcomes are safe to cache at all.

    Deadline-bounded runs are excluded: which method (or failure) a tile
    lands on then depends on wall-clock behaviour, so an entry primed on
    a fast machine could replay a wrong outcome on a slow one. Fault
    injection stays eligible — faults fire deterministically by attempt
    number and the spec is part of the digest.
    """
    return config.tile_deadline_s is None and config.run_deadline_s is None


class SolutionCache:
    """Hit/miss-accounted front for a :class:`SolutionStore`.

    One instance serves many runs (cold prime, then warm re-runs); the
    engine snapshots :meth:`stats` around each run to report per-run
    deltas. Holds the tile→digest map of the last completed run so a
    dirty-window pass can evict exactly the entries an edit staled.

    Not worker-reachable: the cache lives in the coordinating process
    and only ever short-circuits dispatch — payload workers never see it.
    """

    def __init__(self, store: SolutionStore | None = None, cache_dir: "str | Path | None" = None):
        if store is not None and cache_dir is not None:
            raise ValueError("pass either an existing store or a cache_dir, not both")
        self.store = store if store is not None else SolutionStore(cache_dir)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidated = 0
        self._run_digests: dict[TileKey, str] = {}

    def lookup(self, digest: str) -> tuple[TileSolution, SolveReport] | None:
        """A fresh (solution, report) pair for ``digest``, or ``None``.

        Every call counts as a hit or a miss; hits materialize new
        objects so concurrent results never share a mutable solution.
        """
        entry = self.store.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry.materialize()

    def record(self, digest: str, solution: TileSolution, report: SolveReport) -> None:
        """Persist one solved (non-failed) tile outcome under ``digest``.

        Stores a copy: the caller keeps mutating rights over its own
        solution object without being able to corrupt future hits.
        """
        self.store.put(digest, CachedEntry(solution=copy_solution(solution), report=report))
        self.stores += 1

    def remember_run(self, digests: Mapping[TileKey, str]) -> None:
        """Retain the tile→digest map of the run that just completed, so a
        later :meth:`invalidate_window` can name the staled entries."""
        self._run_digests = dict(digests)

    def invalidate_window(
        self, tile_index: GridBinIndex[TileKey], window: Rect
    ) -> tuple[TileKey, ...]:
        """Dirty every remembered tile whose rect overlaps ``window``.

        Evicts the dirty tiles' memory-layer entries and counts them as
        invalidations. Returns the dirty keys (sorted) for reporting.
        The digest already guarantees correctness; this keeps the memory
        layer from accumulating unreachable entries across ECO iterations
        and gives the bench its "tiles touched" number.
        """
        dirty = sorted(key for key in tile_index.query(window) if key in self._run_digests)
        for key in dirty:
            if self.store.evict(self._run_digests.pop(key)):
                self.invalidated += 1
        return tuple(dirty)

    def stats(self) -> dict[str, int]:
        """Lifetime counters (snapshot-and-diff for per-run numbers)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
        }


def stale_fill_features(
    model: "ImpactModel",
    features: Sequence["FillFeature"],
    window: Rect,
) -> tuple[list["FillFeature"], list["FillFeature"]]:
    """Partition prior fill inside ``window`` into (kept, displaced).

    Impact bookkeeping for an ECO: a fill feature from the previous run
    survives the edit iff :meth:`ImpactModel.locate` (rect-memoized, so
    the sweep is cheap on repeat calls) still places it off active
    geometry on the *edited* layout. Features outside the window are
    untouched by definition and are not examined.
    """
    kept: list[FillFeature] = []
    displaced: list[FillFeature] = []
    for feature in features:
        if not feature.rect.overlaps(window):
            continue
        try:
            model.locate(feature)
        except FillError:
            displaced.append(feature)
        else:
            kept.append(feature)
    return kept, displaced
