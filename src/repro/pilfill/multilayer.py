"""Multi-layer fill orchestration.

Foundry density rules apply per layer; a full sign-off run fills every
routing layer. This module runs the single-layer engine over all (or a
selection of) layers that carry routing, aggregates budgets and placements,
and evaluates the combined delay impact — each layer's fill only couples
to that layer's lines, so per-layer impacts add.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.layout.layout import FillFeature, RoutedLayout
from repro.pilfill.engine import EngineConfig, FillResult, PILFillEngine
from repro.pilfill.evaluate import ImpactReport, evaluate_impact


@dataclass
class MultiLayerResult:
    """Aggregated outcome of a multi-layer fill run."""

    per_layer: dict[str, FillResult] = field(default_factory=dict)
    per_layer_impact: dict[str, ImpactReport] = field(default_factory=dict)

    @property
    def features(self) -> list[FillFeature]:
        """All placed features across layers."""
        return [f for result in self.per_layer.values() for f in result.features]

    @property
    def total_features(self) -> int:
        return sum(r.total_features for r in self.per_layer.values())

    @property
    def total_ps(self) -> float:
        """Combined unweighted delay impact (per-layer impacts add)."""
        return sum(i.total_ps for i in self.per_layer_impact.values())

    @property
    def weighted_total_ps(self) -> float:
        """Combined sink-weighted delay impact."""
        return sum(i.weighted_total_ps for i in self.per_layer_impact.values())

    @property
    def per_net_weighted_ps(self) -> dict[str, float]:
        """Per-net weighted impact summed over layers."""
        out: dict[str, float] = {}
        for impact in self.per_layer_impact.values():
            for net, value in impact.per_net_weighted_ps.items():
                out[net] = out.get(net, 0.0) + value
        return out


def run_all_layers(
    layout: RoutedLayout,
    config: EngineConfig,
    layers: list[str] | None = None,
) -> MultiLayerResult:
    """Run the PIL-Fill flow on every routed layer (or ``layers``).

    The same :class:`EngineConfig` is applied per layer; layers with no
    routing are skipped. The input layout is not mutated.
    """
    result = MultiLayerResult()
    targets = layers if layers is not None else layout.used_layers
    for layer in targets:
        if not layout.segments_on_layer(layer):
            continue
        engine = PILFillEngine(layout, layer, config)
        run = engine.run()
        result.per_layer[layer] = run
        result.per_layer_impact[layer] = evaluate_impact(
            layout, layer, run.features, config.fill_rules
        )
    return result
