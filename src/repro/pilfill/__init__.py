"""PIL-Fill: performance-impact limited area fill synthesis — the paper's
core contribution.

Public surface:

* :class:`PILFillEngine` / :class:`EngineConfig` — the end-to-end flow,
* :func:`prepare` / :class:`PreparedInstance` — the shared, reusable
  preprocessing (dissection, legality, scan-line columns, cost tables),
* :func:`dispatch_tiles` — the parallel per-tile solve dispatcher,
* :class:`SolutionCache` / :class:`SolutionStore` — the content-addressed
  tile-solution cache behind incremental ECO re-fill,
* :class:`ShardPlan` / :func:`plan_shards` / :func:`run_sharded` — grid
  sharding along the dissection's cut lines (bounded peak memory,
  bit-identical merge),
* :func:`evaluate_impact` — the common delay-impact scorer,
* the per-tile methods (ILP-I, ILP-II, Greedy, marginal greedy, DP),
* the scan-line slack-column extraction (paper Fig. 7).
"""

from repro.pilfill.columns import ColumnNeighbor, SlackColumn, SlackColumnDef
from repro.pilfill.costs import ColumnCosts, build_costs, build_costs_scalar
from repro.pilfill.dp import (
    allocate_dp,
    allocate_marginal_greedy,
    allocate_marginal_greedy_scalar,
    allocation_cost,
)
from repro.pilfill.engine import METHODS, EngineConfig, FillResult, PILFillEngine
from repro.pilfill.executor import (
    SharedCostStore,
    SharedStoreHandle,
    TileBatch,
    chunk_payloads,
    get_pool,
    make_shared_store,
    pool_stats,
    shutdown_pools,
    worker_pids,
)
from repro.pilfill.methods import solve_tile_method, solve_tile_normal, trim_to
from repro.pilfill.evaluate import ImpactReport, evaluate_impact
from repro.pilfill.budgeted import (
    BudgetedOutcome,
    build_cap_tables,
    derive_net_cap_budgets,
    solve_tile_budgeted_greedy,
    solve_tile_budgeted_ilp,
)
from repro.pilfill.greedy import solve_tile_greedy, solve_tile_greedy_marginal
from repro.pilfill.impact_model import ImpactModel
from repro.pilfill.incremental import (
    SolutionCache,
    cache_eligible,
    run_context_digest,
    stale_fill_features,
    tile_digest,
)
from repro.pilfill.localsearch import RefineResult, refine_placement
from repro.pilfill.multilayer import MultiLayerResult, run_all_layers
from repro.pilfill.mvdc import derive_tile_delay_budgets, solve_tile_mvdc
from repro.pilfill.parallel import (
    PARALLEL_BACKENDS,
    TileOutcome,
    TilePayload,
    dispatch_tile_payloads,
    dispatch_tiles,
    make_tile_payload,
    payload_columns,
    solve_tile_payload,
    tile_rng,
)
from repro.pilfill.prepare import PreparedInstance, prepare, prepare_streaming
from repro.pilfill.robust import (
    RobustSolve,
    SolveReport,
    fallback_chain,
    solve_tile_robust,
)
from repro.pilfill.shard import (
    GridShard,
    ShardPlan,
    iter_shard_windows,
    plan_shards,
    result_digest,
    run_sharded,
    solve_shard_batch,
)
from repro.pilfill.ilp1 import solve_tile_ilp1
from repro.pilfill.ilp2 import solve_tile_ilp2
from repro.pilfill.scanline import (
    ColumnGridder,
    GapBlock,
    IncrementalSweep,
    SweepLine,
    extract_columns,
    extract_columns_from_lines,
    layer_sweep_lines,
    sweep_gap_blocks,
)
from repro.pilfill.solution import TileSolution
from repro.pilfill.store import (
    STORE_VERSION,
    CachedEntry,
    SolutionStore,
    copy_solution,
    decode_entry,
    encode_entry,
)

__all__ = [
    "ColumnNeighbor",
    "SlackColumn",
    "SlackColumnDef",
    "ColumnCosts",
    "build_costs",
    "build_costs_scalar",
    "allocate_dp",
    "allocate_marginal_greedy",
    "allocate_marginal_greedy_scalar",
    "allocation_cost",
    "solve_tile_method",
    "solve_tile_normal",
    "trim_to",
    "METHODS",
    "EngineConfig",
    "FillResult",
    "PILFillEngine",
    "SharedCostStore",
    "SharedStoreHandle",
    "TileBatch",
    "chunk_payloads",
    "get_pool",
    "make_shared_store",
    "pool_stats",
    "shutdown_pools",
    "worker_pids",
    "ImpactReport",
    "evaluate_impact",
    "solve_tile_greedy",
    "solve_tile_greedy_marginal",
    "BudgetedOutcome",
    "build_cap_tables",
    "derive_net_cap_budgets",
    "solve_tile_budgeted_greedy",
    "solve_tile_budgeted_ilp",
    "derive_tile_delay_budgets",
    "solve_tile_mvdc",
    "PARALLEL_BACKENDS",
    "TileOutcome",
    "TilePayload",
    "dispatch_tile_payloads",
    "dispatch_tiles",
    "make_tile_payload",
    "payload_columns",
    "solve_tile_payload",
    "tile_rng",
    "PreparedInstance",
    "prepare",
    "prepare_streaming",
    "RobustSolve",
    "SolveReport",
    "fallback_chain",
    "solve_tile_robust",
    "GridShard",
    "ShardPlan",
    "iter_shard_windows",
    "plan_shards",
    "result_digest",
    "run_sharded",
    "solve_shard_batch",
    "MultiLayerResult",
    "run_all_layers",
    "ImpactModel",
    "RefineResult",
    "refine_placement",
    "solve_tile_ilp1",
    "solve_tile_ilp2",
    "ColumnGridder",
    "GapBlock",
    "IncrementalSweep",
    "SweepLine",
    "extract_columns",
    "extract_columns_from_lines",
    "layer_sweep_lines",
    "sweep_gap_blocks",
    "TileSolution",
    "SolutionCache",
    "cache_eligible",
    "run_context_digest",
    "stale_fill_features",
    "tile_digest",
    "STORE_VERSION",
    "CachedEntry",
    "SolutionStore",
    "copy_solution",
    "decode_entry",
    "encode_entry",
]
