"""Method-agnostic delay-impact evaluator.

Every method — Normal, ILP-I, ILP-II, Greedy — is scored by this one
function, mirroring the paper's Tables 1-2 where all methods are measured
by the same τ. The evaluator:

1. runs the full-layout (definition III) sweep to find every gap block and
   its true neighboring lines,
2. buckets the placed fill features into physical gap columns (same
   site-grid column, same block) — recombining features that per-tile
   solvers placed independently in the same physical stack,
3. applies the *exact* capacitance model (Eq. 5) to each column's total
   feature count, and
4. charges each adjacent line the Elmore increment at the column position,
   both unweighted (per wire segment) and sink-weighted.

Because grouping is global, the evaluator correctly penalizes the
fine-dissection regime where per-tile solvers underestimate stacked
columns — the effect the paper discusses in Section 6.

The bucketing and capacitance math are batched: feature centers, column
membership counts, and the per-column ΔC vector are all computed with
array ops (``np.unique`` + ``bincount`` + one vectorized Eq. 5 pass);
only the spatial point-location and the per-*column* Elmore charging
remain Python loops, and columns are typically an order of magnitude
fewer than features.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FillError
from repro.geometry import GridBinIndex, Rect
from repro.layout.layout import FillFeature, RoutedLayout
from repro.layout.rctree import OHM_FF_TO_PS
from repro.pilfill.scanline import layer_sweep_lines, sweep_gap_blocks
from repro.tech.rules import FillRules
from repro.units import EPS0_FF_PER_UM, ps_to_ns

#: Columns per block are keyed ``block_id * 2**32 + grid_column`` so one
#: int64 sort recovers the (block, column) lexicographic bucket order.
_COLUMN_KEY_STRIDE = 1 << 32


@dataclass
class ImpactReport:
    """Total and per-net delay impact of a fill placement.

    Delays in picoseconds; helpers convert to the paper's ns.
    """

    total_ps: float = 0.0
    weighted_total_ps: float = 0.0
    per_net_ps: dict[str, float] = field(default_factory=dict)
    per_net_weighted_ps: dict[str, float] = field(default_factory=dict)
    features_scored: int = 0
    features_free: int = 0  # features in boundary gaps (no coupling change)
    columns: int = 0

    @property
    def total_ns(self) -> float:
        return ps_to_ns(self.total_ps)

    @property
    def weighted_total_ns(self) -> float:
        return ps_to_ns(self.weighted_total_ps)


def column_delta_caps(
    gaps_um: np.ndarray,
    counts: np.ndarray,
    eps_r: float,
    thickness_um: float,
    fill_width_um: float,
) -> np.ndarray:
    """Vectorized Eq. 5: ΔC (fF) for many columns at once.

    ``gaps_um[i]`` is column ``i``'s line gap and ``counts[i]`` its total
    feature count. Entries are bit-identical to
    :func:`repro.cap.fillimpact.exact_column_cap` called per column.
    """
    counts = np.asarray(counts, dtype=np.float64)
    gaps_um = np.asarray(gaps_um, dtype=np.float64)
    remaining = gaps_um - counts * fill_width_um
    if (remaining <= 0).any():
        i = int(np.argmax(remaining <= 0))
        raise FillError(
            f"{int(counts[i])} features of width {fill_width_um} do not fit "
            f"in gap {gaps_um[i]}"
        )
    base = EPS0_FF_PER_UM * eps_r * thickness_um * fill_width_um
    delta = base * (1.0 / remaining - 1.0 / gaps_um)
    delta[counts == 0] = 0.0
    return delta


def evaluate_impact(
    layout: RoutedLayout,
    layer: str,
    features: list[FillFeature],
    rules: FillRules,
) -> ImpactReport:
    """Score a fill placement on one layer. See module docstring."""
    report = ImpactReport()
    relevant = [f for f in features if f.layer == layer]
    if not relevant:
        return report

    lines, horizontal = layer_sweep_lines(layout, layer)
    blocks = sweep_gap_blocks(lines, layout.die, horizontal)

    # Spatial lookup: feature center -> containing block.
    bin_size = max(1, max(layout.die.width, layout.die.height) // 32)
    index: GridBinIndex[int] = GridBinIndex(bin_size)
    for i, block in enumerate(blocks):
        if horizontal:
            rect = Rect(block.along.lo, block.cross_lo, block.along.hi, block.cross_hi)
        else:
            rect = Rect(block.cross_lo, block.along.lo, block.cross_hi, block.along.hi)
        if not rect.is_empty():
            index.insert(rect, i)

    thickness = layout.stack.layer(layer).thickness_um
    eps_r = layout.stack.layer(layer).eps_r
    dbu = layout.stack.dbu_per_micron
    fill_w_um = rules.fill_size / dbu

    # Point-locate every feature (spatial hash lookup), collecting its
    # block id and along-axis center for the batched bucketing below.
    block_ids = np.empty(len(relevant), dtype=np.int64)
    alongs = np.empty(len(relevant), dtype=np.int64)
    for j, feature in enumerate(relevant):
        center = feature.rect.center
        hits = index.query(Rect(center.x, center.y, center.x + 1, center.y + 1))
        along_c = center.x if horizontal else center.y
        cross_c = center.y if horizontal else center.x
        containing = -1
        for i in hits:
            block = blocks[i]
            if block.along.contains(along_c) and block.cross_lo <= cross_c < block.cross_hi:
                containing = i
                break
        if containing < 0:
            raise FillError(f"fill feature at {feature.rect} lies on active geometry")
        block_ids[j] = containing
        alongs[j] = along_c

    # Bucket features by (block, along-axis grid column) with one sort:
    # np.unique returns keys sorted, i.e. (block_id, col) lexicographic —
    # the same visit order as sorting the bucket dict.
    keys = block_ids * _COLUMN_KEY_STRIDE + alongs // rules.pitch
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    m_per_col = np.bincount(inverse)
    along_sums = np.bincount(inverse, weights=alongs).astype(np.int64)
    col_blocks = (unique_keys // _COLUMN_KEY_STRIDE).astype(np.int64)
    centers = along_sums // m_per_col

    # Vectorized Eq. 5 over the impactful columns.
    coupled = np.array(
        [blocks[b].below is not None and blocks[b].above is not None for b in col_blocks]
    )
    gaps_um = np.zeros(len(unique_keys), dtype=np.float64)
    if coupled.any():
        gaps_um[coupled] = (
            np.array([blocks[b].gap for b in col_blocks[coupled]], dtype=np.int64) / dbu
        )
    delta_c = np.zeros(len(unique_keys), dtype=np.float64)
    if coupled.any():
        delta_c[coupled] = column_delta_caps(
            gaps_um[coupled], m_per_col[coupled], eps_r, thickness, fill_w_um
        )

    # Charge the Elmore increments column by column (columns ≪ features).
    report.columns = len(unique_keys)
    for i in range(len(unique_keys)):
        m = int(m_per_col[i])
        if not coupled[i]:
            report.features_free += m
            continue
        block = blocks[int(col_blocks[i])]
        center_along = int(centers[i])
        dc = float(delta_c[i])
        for sweep_line in (block.below, block.above):
            timing = sweep_line.timing
            if timing is None:
                continue
            resistance = timing.resistance_at(center_along)
            delay = resistance * dc * OHM_FF_TO_PS
            net = timing.segment.net
            report.total_ps += delay
            report.weighted_total_ps += delay * timing.downstream_sinks
            report.per_net_ps[net] = report.per_net_ps.get(net, 0.0) + delay
            report.per_net_weighted_ps[net] = (
                report.per_net_weighted_ps.get(net, 0.0) + delay * timing.downstream_sinks
            )
        report.features_scored += m
    report.features_scored += report.features_free
    return report
