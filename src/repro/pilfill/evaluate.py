"""Method-agnostic delay-impact evaluator.

Every method — Normal, ILP-I, ILP-II, Greedy — is scored by this one
function, mirroring the paper's Tables 1-2 where all methods are measured
by the same τ. The evaluator:

1. runs the full-layout (definition III) sweep to find every gap block and
   its true neighboring lines,
2. buckets the placed fill features into physical gap columns (same
   site-grid column, same block) — recombining features that per-tile
   solvers placed independently in the same physical stack,
3. applies the *exact* capacitance model (Eq. 5) to each column's total
   feature count, and
4. charges each adjacent line the Elmore increment at the column position,
   both unweighted (per wire segment) and sink-weighted.

Because grouping is global, the evaluator correctly penalizes the
fine-dissection regime where per-tile solvers underestimate stacked
columns — the effect the paper discusses in Section 6.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.cap.fillimpact import exact_column_cap
from repro.errors import FillError
from repro.geometry import GridBinIndex, Rect
from repro.layout.layout import FillFeature, RoutedLayout
from repro.layout.rctree import OHM_FF_TO_PS
from repro.pilfill.scanline import layer_sweep_lines, sweep_gap_blocks
from repro.tech.rules import FillRules
from repro.units import ps_to_ns


@dataclass
class ImpactReport:
    """Total and per-net delay impact of a fill placement.

    Delays in picoseconds; helpers convert to the paper's ns.
    """

    total_ps: float = 0.0
    weighted_total_ps: float = 0.0
    per_net_ps: dict[str, float] = field(default_factory=dict)
    per_net_weighted_ps: dict[str, float] = field(default_factory=dict)
    features_scored: int = 0
    features_free: int = 0  # features in boundary gaps (no coupling change)
    columns: int = 0

    @property
    def total_ns(self) -> float:
        return ps_to_ns(self.total_ps)

    @property
    def weighted_total_ns(self) -> float:
        return ps_to_ns(self.weighted_total_ps)


def evaluate_impact(
    layout: RoutedLayout,
    layer: str,
    features: list[FillFeature],
    rules: FillRules,
) -> ImpactReport:
    """Score a fill placement on one layer. See module docstring."""
    report = ImpactReport()
    relevant = [f for f in features if f.layer == layer]
    if not relevant:
        return report

    lines, horizontal = layer_sweep_lines(layout, layer)
    blocks = sweep_gap_blocks(lines, layout.die, horizontal)

    # Spatial lookup: feature center -> containing block.
    bin_size = max(1, max(layout.die.width, layout.die.height) // 32)
    index: GridBinIndex[int] = GridBinIndex(bin_size)
    for i, block in enumerate(blocks):
        if horizontal:
            rect = Rect(block.along.lo, block.cross_lo, block.along.hi, block.cross_hi)
        else:
            rect = Rect(block.cross_lo, block.along.lo, block.cross_hi, block.along.hi)
        if not rect.is_empty():
            index.insert(rect, i)

    thickness = layout.stack.layer(layer).thickness_um
    eps_r = layout.stack.layer(layer).eps_r
    dbu = layout.stack.dbu_per_micron
    fill_w_um = rules.fill_size / dbu

    # Bucket features by (block, along-axis column position). The fill
    # grid pitch quantizes the along coordinate.
    pitch = rules.pitch
    buckets: dict[tuple[int, int], list[FillFeature]] = defaultdict(list)
    for feature in relevant:
        center = feature.rect.center
        hits = index.query(Rect(center.x, center.y, center.x + 1, center.y + 1))
        containing = None
        for i in hits:
            block = blocks[i]
            along_c = center.x if horizontal else center.y
            cross_c = center.y if horizontal else center.x
            if block.along.contains(along_c) and block.cross_lo <= cross_c < block.cross_hi:
                containing = i
                break
        if containing is None:
            raise FillError(f"fill feature at {feature.rect} lies on active geometry")
        along_c = center.x if horizontal else center.y
        buckets[(containing, along_c // pitch)].append(feature)

    for (block_id, _col), feats in sorted(buckets.items()):
        block = blocks[block_id]
        report.columns += 1
        m = len(feats)
        if block.below is None or block.above is None:
            report.features_free += m
            continue
        gap_um = block.gap / dbu
        delta_c = exact_column_cap(eps_r, thickness, gap_um, m, fill_w_um)
        center_along = (
            sum((f.rect.center.x if horizontal else f.rect.center.y) for f in feats) // m
        )
        for sweep_line in (block.below, block.above):
            timing = sweep_line.timing
            if timing is None:
                continue
            resistance = timing.resistance_at(center_along)
            delay = resistance * delta_c * OHM_FF_TO_PS
            net = timing.segment.net
            report.total_ps += delay
            report.weighted_total_ps += delay * timing.downstream_sinks
            report.per_net_ps[net] = report.per_net_ps.get(net, 0.0) + delay
            report.per_net_weighted_ps[net] = (
                report.per_net_weighted_ps.get(net, 0.0) + delay * timing.downstream_sinks
            )
        report.features_scored += m
    report.features_scored += report.features_free
    return report
