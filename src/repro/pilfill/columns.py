"""Slack-column data model (paper Section 5.1).

A *slack column* is a vertical (for horizontal routing) stack of legal
fill sites at one site-grid column position, lying in the *gap* between a
pair of neighboring active lines (or between a line and a boundary). The
three definitions of Section 5.1 differ in which gaps are seen:

* ``SlackColumnDef.WITHIN_TILE`` (SlackColumn-I): only gaps between two
  active lines inside the tile;
* ``SlackColumnDef.TILE_BOUNDED`` (SlackColumn-II): gaps against tile
  boundaries too, but neighbors outside the tile are invisible (their
  capacitance impact is *not* captured);
* ``SlackColumnDef.FULL_LAYOUT`` (SlackColumn-III): the sweep runs over the
  whole layout, so every column knows its true neighboring lines even when
  those lines live in adjacent tiles.

Capacitance bookkeeping: a column with both neighbors present carries the
gap distance ``d`` and contributes ΔC(m) coupling to *both* lines; columns
missing a neighbor (boundary gaps) have no modeled delay impact — which is
precisely the inaccuracy of definitions I/II that the paper discusses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geometry import Rect
from repro.layout.rctree import OHM_FF_TO_PS


class SlackColumnDef(enum.Enum):
    """Which slack-column definition the scan uses (paper §5.1)."""

    WITHIN_TILE = "I"
    TILE_BOUNDED = "II"
    FULL_LAYOUT = "III"


@dataclass(frozen=True)
class ColumnNeighbor:
    """One active line adjacent to a slack column, with the electrical
    quantities the MDFC objective needs at the column's position.

    Attributes:
        net: owning net name.
        line_index: index of the line within its RC tree.
        sinks: downstream sink count (the weight ``W_l``).
        resistance_ohm: total upstream resistance at the column position
            (the paper's ``R_l + Σ r_l``), Ω.
    """

    net: str
    line_index: int
    sinks: int
    resistance_ohm: float

    @property
    def identity(self) -> tuple[str, int]:
        return (self.net, self.line_index)


@dataclass(frozen=True)
class SlackColumn:
    """A stack of legal fill sites in one gap, clipped to one tile.

    Attributes:
        layer: routing layer.
        tile: owning tile key ``(ix, iy)``.
        col: global site-grid column index along the routing direction.
        sites: legal site rectangles, ordered nearest-line-first is NOT
            guaranteed — ordered by increasing cross coordinate.
        gap_um: edge-to-edge distance between the two neighbor lines (µm),
            or None when fewer than two line neighbors exist.
        below: neighbor on the low-coordinate side (None = boundary).
        above: neighbor on the high-coordinate side (None = boundary).
    """

    layer: str
    tile: tuple[int, int]
    col: int
    sites: tuple[Rect, ...]
    gap_um: float | None
    below: ColumnNeighbor | None
    above: ColumnNeighbor | None

    @property
    def capacity(self) -> int:
        """Number of fill features the column can take in this tile."""
        return len(self.sites)

    @property
    def has_impact(self) -> bool:
        """True when filling this column changes modeled coupling (both
        neighbor lines present)."""
        return self.below is not None and self.above is not None and self.gap_um is not None

    @property
    def gap_key(self) -> tuple:
        """Identity of the *physical* gap column. Columns in different
        tiles that share the same site-grid column and the same neighbor
        pair refer to the same physical stack; the evaluator recombines
        them when computing true (nonlinear) capacitance."""
        below = self.below.identity if self.below else None
        above = self.above.identity if self.above else None
        return (self.layer, self.col, below, above)

    def resistance_weight(self, weighted: bool) -> float:
        """The r̂_k multiplier of the MDFC objective (paper Fig. 8 line 11):
        Σ over present neighbors of (W_l or 1) × upstream resistance at the
        column position, Ω."""
        total = 0.0
        for neighbor in (self.below, self.above):
            if neighbor is not None:
                w = neighbor.sinks if weighted else 1
                total += w * neighbor.resistance_ohm
        return total

    def delay_ps(self, cap_ff: float, weighted: bool) -> float:
        """Delay impact (ps) of attaching ``cap_ff`` in this column."""
        return self.resistance_weight(weighted) * cap_ff * OHM_FF_TO_PS
