"""Scan-line extraction of gap blocks and slack columns (paper Fig. 7).

The sweep walks active lines in increasing cross-coordinate order
(bottom-to-top for horizontal routing) maintaining the set of currently
open *gap fragments* — maximal along-axis intervals whose next line below
is known. Each arriving line closes the fragments it covers (emitting
:class:`GapBlock` records with both neighbors resolved) and opens a new
fragment above itself. Fragments surviving to the boundary close against
it (``above = None``).

Definitions I/II/III (paper §5.1) differ only in the sweep region and
line clipping; :func:`extract_columns` then grids every block into legal
fill-site columns per tile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FillError
from repro.fillsynth.slack_sites import SiteLegality
from repro.dissection.fixed import FixedDissection
from repro.geometry import Interval, Rect
from repro.geometry.grid import SiteGrid
from repro.layout.layout import RoutedLayout
from repro.layout.rctree import LineTiming
from repro.pilfill.columns import ColumnNeighbor, SlackColumn, SlackColumnDef
from repro.tech.rules import FillRules


@dataclass(frozen=True)
class SweepLine:
    """One active line participating in the sweep, possibly clipped.

    ``timing`` is None for definition-II lines whose electrical data is
    deliberately invisible (clipped foreign geometry) — they still block
    space but contribute no delay model.
    """

    rect: Rect
    timing: LineTiming | None

    def neighbor_at(self, along_coord: int) -> ColumnNeighbor | None:
        """Electrical view of this line at an along-axis coordinate."""
        if self.timing is None:
            return None
        line = self.timing
        return ColumnNeighbor(
            net=line.segment.net,
            line_index=line.segment.index,
            sinks=line.downstream_sinks,
            resistance_ohm=line.resistance_at(along_coord),
        )


@dataclass(frozen=True)
class GapBlock:
    """A maximal empty region between two lines (or a line and a boundary).

    Coordinates are *canonical*: ``along`` is the routing axis, ``cross``
    is perpendicular. ``cross_lo``/``cross_hi`` are the facing line edges,
    so ``cross_hi - cross_lo`` is the capacitance model's distance ``d``.
    """

    along: Interval
    cross_lo: int
    cross_hi: int
    below: SweepLine | None
    above: SweepLine | None

    @property
    def gap(self) -> int:
        return self.cross_hi - self.cross_lo


@dataclass
class _Fragment:
    along: Interval
    start_cross: int
    below: SweepLine | None


class _Axes:
    """Maps real coordinates to canonical (along, cross) and back."""

    def __init__(self, horizontal: bool):
        self.horizontal = horizontal

    def along_iv(self, rect: Rect) -> Interval:
        return Interval(rect.xlo, rect.xhi) if self.horizontal else Interval(rect.ylo, rect.yhi)

    def cross_iv(self, rect: Rect) -> Interval:
        return Interval(rect.ylo, rect.yhi) if self.horizontal else Interval(rect.xlo, rect.xhi)

    def rect(self, along: Interval, cross: Interval) -> Rect:
        if self.horizontal:
            return Rect(along.lo, cross.lo, along.hi, cross.hi)
        return Rect(cross.lo, along.lo, cross.hi, along.hi)


class IncrementalSweep:
    """The Fig. 7 sweep as a feed/finish state machine.

    :func:`sweep_gap_blocks` is one ``feed`` of every line followed by
    ``finish`` — the streaming preprocessor instead feeds lines in
    watermark batches as a chip-scale DEF arrives. Because both paths
    run this one state machine over the same globally ordered event
    sequence, streamed output is bit-identical to materialized output
    *by construction*, not by testing alone.

    Batches must be monotone: every event key ``(cross_lo, along_lo)``
    fed must be >= every key of earlier batches (violations raise
    :class:`FillError` rather than silently reordering the sweep).
    Within a batch, ties keep arrival order — matching the stable sort
    of the one-shot path.
    """

    def __init__(self, region: Rect, horizontal: bool):
        self.axes = _Axes(horizontal)
        self.region_along = self.axes.along_iv(region)
        self.region_cross = self.axes.cross_iv(region)
        self._fragments: list[_Fragment] = [
            _Fragment(self.region_along, self.region_cross.lo, None)
        ]
        self._max_key: tuple[int, int] | None = None
        self._finished = False

    def _key(self, line: SweepLine) -> tuple[int, int]:
        return (self.axes.cross_iv(line.rect).lo, self.axes.along_iv(line.rect).lo)

    def feed(self, lines: list[SweepLine]) -> list[GapBlock]:
        """Process one batch of lines; returns the blocks they closed."""
        if self._finished:
            raise FillError("IncrementalSweep.feed after finish")
        events = sorted(lines, key=self._key)
        if events and self._max_key is not None and self._key(events[0]) < self._max_key:
            raise FillError(
                f"non-monotone sweep feed: key {self._key(events[0])} after "
                f"{self._max_key}"
            )
        if events:
            self._max_key = self._key(events[-1])
        blocks: list[GapBlock] = []
        fragments = self._fragments
        for line in events:
            span = self.axes.along_iv(line.rect)
            band = self.axes.cross_iv(line.rect)
            new_fragments: list[_Fragment] = []
            for frag in fragments:
                overlap = frag.along.intersection(span)
                if overlap is None:
                    new_fragments.append(frag)
                    continue
                # Left remainder keeps the old gap open.
                if frag.along.lo < overlap.lo:
                    new_fragments.append(
                        _Fragment(Interval(frag.along.lo, overlap.lo), frag.start_cross, frag.below)
                    )
                # Right remainder likewise.
                if overlap.hi < frag.along.hi:
                    new_fragments.append(
                        _Fragment(Interval(overlap.hi, frag.along.hi), frag.start_cross, frag.below)
                    )
                # The covered part closes (emit block) and reopens above the line.
                if frag.start_cross < band.lo:
                    blocks.append(
                        GapBlock(
                            along=overlap,
                            cross_lo=frag.start_cross,
                            cross_hi=band.lo,
                            below=frag.below,
                            above=line,
                        )
                    )
                if band.hi >= frag.start_cross:
                    new_fragments.append(_Fragment(overlap, band.hi, line))
                else:
                    # The arriving line is entirely below the open gap (overlap
                    # with an earlier, taller line): the old gap stays open.
                    new_fragments.append(_Fragment(overlap, frag.start_cross, frag.below))
            fragments = sorted(new_fragments, key=lambda f: f.along.lo)
        self._fragments = fragments
        return blocks

    def finish(self) -> list[GapBlock]:
        """Close surviving fragments against the region boundary."""
        if self._finished:
            raise FillError("IncrementalSweep.finish called twice")
        self._finished = True
        blocks: list[GapBlock] = []
        for frag in self._fragments:
            if frag.start_cross < self.region_cross.hi:
                blocks.append(
                    GapBlock(
                        along=frag.along,
                        cross_lo=frag.start_cross,
                        cross_hi=self.region_cross.hi,
                        below=frag.below,
                        above=None,
                    )
                )
        return blocks


def sweep_gap_blocks(
    lines: list[SweepLine],
    region: Rect,
    horizontal: bool,
) -> list[GapBlock]:
    """Run the Fig. 7 sweep over ``region`` and return all gap blocks.

    ``lines`` must lie inside ``region`` (clip before calling). Lines may
    overlap each other (same-net junction overlaps are tolerated); gaps of
    non-positive extent are skipped.
    """
    sweep = IncrementalSweep(region, horizontal)
    blocks = sweep.feed(lines)
    blocks.extend(sweep.finish())
    return blocks


def layer_sweep_lines(layout: RoutedLayout, layer: str) -> tuple[list[SweepLine], bool]:
    """Active lines of ``layer`` in their preferred routing direction, plus
    whether that direction is horizontal. Wrong-direction lines are
    excluded from the sweep (paper §5.2) — they still block fill sites via
    the exact legality check."""
    horizontal = layout.stack.layer(layer).direction == "h"
    lines = [
        SweepLine(rect=line.segment.rect, timing=line)
        for _tree, line in layout.active_lines(layer)
        if line.segment.is_horizontal == horizontal
    ]
    return lines, horizontal


class ColumnGridder:
    """Grids gap blocks into per-tile slack columns, batch by batch.

    Wraps the ``_grid_block`` pass so the streaming preprocessor can
    grid each :class:`IncrementalSweep` feed's blocks the moment they
    close (their legality queries only look below the stream watermark,
    so late-arriving geometry can never invalidate them). Feeding all
    blocks at once reproduces :func:`extract_columns_from_lines`
    exactly — same code, same order.
    """

    def __init__(
        self,
        layer: str,
        dissection: FixedDissection,
        legality: SiteLegality,
        rules: FillRules,
        horizontal: bool,
        dbu: int,
    ):
        self.layer = layer
        self.dissection = dissection
        self.legality = legality
        self.rules = rules
        self.axes = _Axes(horizontal)
        self.dbu = dbu
        self.out: dict[tuple[int, int], list[SlackColumn]] = {
            t.key: [] for t in dissection.tiles()
        }

    def grid(self, blocks: list[GapBlock], only_tile: tuple[int, int] | None = None) -> None:
        """Append the columns of ``blocks`` in emission order."""
        for block in blocks:
            _grid_block(
                block, only_tile, self.layer, self.dissection, self.legality,
                self.rules, self.axes, self.dbu, self.out,
            )


def extract_columns_from_lines(
    lines: list[SweepLine],
    horizontal: bool,
    die: Rect,
    dbu: int,
    layer: str,
    dissection: FixedDissection,
    legality: SiteLegality,
    rules: FillRules,
    definition: SlackColumnDef = SlackColumnDef.FULL_LAYOUT,
) -> dict[tuple[int, int], list[SlackColumn]]:
    """Slack columns per tile from pre-collected sweep lines.

    The layout-free core of :func:`extract_columns` — the streaming
    preprocessor calls it (or drives :class:`ColumnGridder` directly)
    without ever materializing a :class:`RoutedLayout`.
    """
    axes = _Axes(horizontal)
    out: dict[tuple[int, int], list[SlackColumn]] = {t.key: [] for t in dissection.tiles()}

    if definition is SlackColumnDef.FULL_LAYOUT:
        gridder = ColumnGridder(layer, dissection, legality, rules, horizontal, dbu)
        gridder.grid(sweep_gap_blocks(lines, die, horizontal))
        return gridder.out

    # Definitions I and II sweep each tile independently with clipped lines.
    for tile in dissection.tiles():
        clipped: list[SweepLine] = []
        for line in lines:
            inter = line.rect.intersection(tile.rect)
            if inter is not None:
                clipped.append(SweepLine(rect=inter, timing=line.timing))
        blocks = sweep_gap_blocks(clipped, tile.rect, horizontal)
        if definition is SlackColumnDef.WITHIN_TILE:
            blocks = [b for b in blocks if b.below is not None and b.above is not None]
        for block in blocks:
            _grid_block(block, tile.key, layer, dissection, legality, rules, axes, dbu, out)
    return out


def extract_columns(
    layout: RoutedLayout,
    layer: str,
    dissection: FixedDissection,
    legality: SiteLegality,
    rules: FillRules,
    definition: SlackColumnDef = SlackColumnDef.FULL_LAYOUT,
) -> dict[tuple[int, int], list[SlackColumn]]:
    """Slack columns per tile under the chosen definition (paper §5.1).

    Returns a mapping tile key → columns (possibly empty). Every site in
    every returned column passed the exact legality test, so any placement
    into these sites is design-rule clean.
    """
    lines, horizontal = layer_sweep_lines(layout, layer)
    return extract_columns_from_lines(
        lines, horizontal, layout.die, layout.stack.dbu_per_micron,
        layer, dissection, legality, rules, definition,
    )


def _grid_block(
    block: GapBlock,
    only_tile: tuple[int, int] | None,
    layer: str,
    dissection: FixedDissection,
    legality: SiteLegality,
    rules: FillRules,
    axes: _Axes,
    dbu: int,
    out: dict[tuple[int, int], list[SlackColumn]],
) -> None:
    """Grid one gap block into per-tile slack columns, appending to ``out``."""
    # Shrink the gap band by the buffer distance on line-adjacent sides.
    cross_lo = block.cross_lo + (rules.buffer_distance if block.below is not None else 0)
    cross_hi = block.cross_hi - (rules.buffer_distance if block.above is not None else 0)
    if cross_hi - cross_lo < rules.fill_size:
        return
    usable = axes.rect(block.along, Interval(cross_lo, cross_hi))

    grid = legality.grid
    gap_um = block.gap / dbu if (block.below is not None and block.above is not None) else None

    for tile in dissection.tiles_overlapping(usable):
        if only_tile is not None and tile.key != only_tile:
            continue
        clip = usable.intersection(tile.rect)
        if clip is None:
            continue
        along_clip = axes.along_iv(clip)
        # Candidate along-axis columns: site center inside the block's
        # along extent and owned by this tile. Centers (not full squares)
        # decide membership so sites straddling block boundaries are not
        # lost; the exact legality check still guarantees DRC cleanliness.
        if axes.horizontal:
            col_range = range(
                grid.col_at(block.along.lo), grid.col_at(block.along.hi) + 2
            )
        else:
            col_range = range(
                grid.row_at(block.along.lo), grid.row_at(block.along.hi) + 2
            )
        for col in col_range:
            if axes.horizontal:
                site_along_lo = grid.origin_x + col * grid.pitch
            else:
                site_along_lo = grid.origin_y + col * grid.pitch
            center_along = site_along_lo + grid.site_size // 2
            if not along_clip.contains(center_along):
                continue
            sites = _column_sites(
                grid, col, axes, cross_lo, cross_hi, tile.rect, legality
            )
            if not sites:
                continue
            below = block.below.neighbor_at(center_along) if block.below else None
            above = block.above.neighbor_at(center_along) if block.above else None
            out[tile.key].append(
                SlackColumn(
                    layer=layer,
                    tile=tile.key,
                    col=col,
                    sites=tuple(sites),
                    gap_um=gap_um,
                    below=below,
                    above=above,
                )
            )


def _column_sites(
    grid: SiteGrid,
    col: int,
    axes: _Axes,
    cross_lo: int,
    cross_hi: int,
    tile_rect: Rect,
    legality: SiteLegality,
) -> list[Rect]:
    """Legal site rects of one column inside a tile, ordered by cross
    coordinate."""
    if axes.horizontal:
        rows = grid.rows_fully_inside(cross_lo, cross_hi)
        candidates = [grid.site_rect(col, row) for row in rows]
    else:
        cols = grid.cols_fully_inside(cross_lo, cross_hi)
        candidates = [grid.site_rect(c, col) for c in cols]
    return [
        rect
        for rect in candidates
        if tile_rect.contains_point(rect.center) and legality.is_legal(rect)
    ]
