"""Exact solvers for the per-tile separable MDFC problem.

The per-tile problem — minimize Σ_k cost_k(m_k) subject to Σ m_k = F,
0 ≤ m_k ≤ C_k integer — is a *separable resource allocation* problem.
When every cost table is convex in m (true for both the exact and linear
capacitance models), the marginal-greedy allocation is provably optimal;
a classic dynamic program solves the general (non-convex) case.

These serve three roles: a fast exact method in their own right (an
extension beyond the paper), the verification oracle for ILP-II in the
test suite, and the engine's fallback for very large tiles.
"""

from __future__ import annotations

import heapq

from repro.errors import FillError


def allocate_marginal_greedy(cost_tables: list[tuple[float, ...]], budget: int) -> list[int]:
    """Optimal allocation for convex cost tables via marginal greedy.

    Repeatedly grants one more feature to the column with the cheapest
    next-feature marginal cost. Optimal when every table's marginals are
    nondecreasing (convexity), which holds for Eq. 5/Eq. 6 costs.

    Args:
        cost_tables: per column, cost of 0..C_k features (entry 0 must be 0).
        budget: exact total features to allocate.

    Returns:
        Features per column, summing to ``budget``.

    Raises:
        FillError: when the budget exceeds total capacity.
    """
    capacity = sum(len(t) - 1 for t in cost_tables)
    if budget < 0:
        raise FillError(f"budget must be non-negative, got {budget}")
    if budget > capacity:
        raise FillError(f"budget {budget} exceeds total column capacity {capacity}")

    counts = [0] * len(cost_tables)
    heap: list[tuple[float, int]] = []
    for k, table in enumerate(cost_tables):
        if len(table) > 1:
            heapq.heappush(heap, (table[1] - table[0], k))
    for _ in range(budget):
        marginal, k = heapq.heappop(heap)
        counts[k] += 1
        table = cost_tables[k]
        nxt = counts[k] + 1
        if nxt < len(table):
            heapq.heappush(heap, (table[nxt] - table[counts[k]], k))
    return counts


def allocate_dp(cost_tables: list[tuple[float, ...]], budget: int) -> list[int]:
    """Exact allocation by dynamic programming (no convexity assumption).

    O(K · F · C_max) time — intended for verification and modest tiles.
    """
    capacity = sum(len(t) - 1 for t in cost_tables)
    if budget < 0:
        raise FillError(f"budget must be non-negative, got {budget}")
    if budget > capacity:
        raise FillError(f"budget {budget} exceeds total column capacity {capacity}")

    inf = float("inf")
    # best[f] = minimal cost to allocate f features among processed columns.
    best = [0.0] + [inf] * budget
    choice: list[list[int]] = []
    for table in cost_tables:
        cmax = len(table) - 1
        new = [inf] * (budget + 1)
        pick = [0] * (budget + 1)
        for f in range(budget + 1):
            for n in range(0, min(cmax, f) + 1):
                cand = best[f - n] + table[n]
                if cand < new[f] - 1e-15:
                    new[f] = cand
                    pick[f] = n
        best = new
        choice.append(pick)

    counts = [0] * len(cost_tables)
    f = budget
    for k in range(len(cost_tables) - 1, -1, -1):
        n = choice[k][f]
        counts[k] = n
        f -= n
    assert f == 0
    return counts


def allocation_cost(cost_tables: list[tuple[float, ...]], counts: list[int]) -> float:
    """Objective value of an allocation."""
    if len(counts) != len(cost_tables):
        raise FillError("counts/cost_tables length mismatch")
    total = 0.0
    for table, n in zip(cost_tables, counts):
        if not 0 <= n < len(table):
            raise FillError(f"count {n} outside table range 0..{len(table) - 1}")
        total += table[n]
    return total
