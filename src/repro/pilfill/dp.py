"""Exact solvers for the per-tile separable MDFC problem.

The per-tile problem — minimize Σ_k cost_k(m_k) subject to Σ m_k = F,
0 ≤ m_k ≤ C_k integer — is a *separable resource allocation* problem.
When every cost table is convex in m (true for both the exact and linear
capacitance models), the marginal-greedy allocation is provably optimal;
a classic dynamic program solves the general (non-convex) case.

These serve three roles: a fast exact method in their own right (an
extension beyond the paper), the verification oracle for ILP-II in the
test suite, and the engine's fallback for very large tiles.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import FillError

#: Below this many total feature slots the scalar heap wins on constant
#: factors; above it the vectorized selection dominates. Results are
#: identical either way.
_VECTOR_MIN_SLOTS = 64


def allocate_marginal_greedy(cost_tables: list[tuple[float, ...]], budget: int) -> list[int]:
    """Optimal allocation for convex cost tables via marginal greedy.

    Grants features to the globally cheapest next-feature marginals.
    Optimal when every table's marginals are nondecreasing (convexity),
    which holds for Eq. 5/Eq. 6 costs.

    Large instances take a vectorized path — an
    ``np.argpartition``-based selection of the ``budget`` cheapest
    marginals with the heap's exact tie-breaking (marginal, then column
    index, then position) — that returns the same counts as the scalar
    heap (:func:`allocate_marginal_greedy_scalar`). Non-convex tables
    (where the heap's incremental behavior differs from global selection)
    fall back to the scalar path, preserving its legacy behavior exactly.

    Args:
        cost_tables: per column, cost of 0..C_k features (entry 0 must be 0).
        budget: exact total features to allocate.

    Returns:
        Features per column, summing to ``budget``.

    Raises:
        FillError: when the budget exceeds total capacity.
    """
    capacity = sum(len(t) - 1 for t in cost_tables)
    if budget < 0:
        raise FillError(f"budget must be non-negative, got {budget}")
    if budget > capacity:
        raise FillError(f"budget {budget} exceeds total column capacity {capacity}")
    if budget == 0:
        return [0] * len(cost_tables)
    if budget == capacity:
        return [len(t) - 1 for t in cost_tables]
    if capacity < _VECTOR_MIN_SLOTS:
        return allocate_marginal_greedy_scalar(cost_tables, budget)

    # Flatten every column's marginal vector; flat order is (column,
    # position) lexicographic, which is exactly the heap's tie order.
    # One flat concatenation + one diff, rather than a numpy call per
    # table — with thousands of short tables the per-array overhead
    # would otherwise dominate.
    lengths = np.fromiter((len(t) for t in cost_tables), dtype=np.int64, count=len(cost_tables))
    flat = np.fromiter(
        (v for t in cost_tables for v in t), dtype=np.float64, count=int(lengths.sum())
    )
    diffs = np.diff(flat)
    # Drop the diffs that straddle a table boundary (last entry of one
    # table to first entry of the next); what remains are the per-column
    # marginals in (column, position) order.
    boundary = np.cumsum(lengths)[:-1] - 1
    keep = np.ones(diffs.size, dtype=bool)
    keep[boundary] = False
    marginals = diffs[keep]
    cols = np.repeat(np.arange(len(cost_tables)), lengths - 1)

    # Convexity check: within-column marginals must be nondecreasing.
    same_col = cols[1:] == cols[:-1]
    if same_col.any() and (np.diff(marginals)[same_col] < 0.0).any():
        return allocate_marginal_greedy_scalar(cost_tables, budget)

    # The budget cheapest marginals; ties at the cut resolve in flat
    # (column, position) order, matching the heap's (marginal, k) order.
    part = np.argpartition(marginals, budget - 1)[:budget]
    threshold = marginals[part].max()
    below = np.flatnonzero(marginals < threshold)
    ties = np.flatnonzero(marginals == threshold)[: budget - below.size]
    chosen = np.concatenate([below, ties])
    counts = np.bincount(cols[chosen], minlength=len(cost_tables))
    return [int(c) for c in counts]


def allocate_marginal_greedy_scalar(
    cost_tables: list[tuple[float, ...]], budget: int
) -> list[int]:
    """Scalar heap reference for :func:`allocate_marginal_greedy`.

    Repeatedly grants one more feature to the column with the cheapest
    next-feature marginal cost (ties to the lowest column index). Kept as
    the verification oracle the property tests pin the vectorized path
    against, and as the fallback for tiny or non-convex instances.
    """
    capacity = sum(len(t) - 1 for t in cost_tables)
    if budget < 0:
        raise FillError(f"budget must be non-negative, got {budget}")
    if budget > capacity:
        raise FillError(f"budget {budget} exceeds total column capacity {capacity}")

    counts = [0] * len(cost_tables)
    heap: list[tuple[float, int]] = []
    for k, table in enumerate(cost_tables):
        if len(table) > 1:
            heapq.heappush(heap, (table[1] - table[0], k))
    for _ in range(budget):
        marginal, k = heapq.heappop(heap)
        counts[k] += 1
        table = cost_tables[k]
        nxt = counts[k] + 1
        if nxt < len(table):
            heapq.heappush(heap, (table[nxt] - table[counts[k]], k))
    return counts


def allocate_dp(cost_tables: list[tuple[float, ...]], budget: int) -> list[int]:
    """Exact allocation by dynamic programming (no convexity assumption).

    O(K · F · C_max) time — intended for verification and modest tiles.
    """
    capacity = sum(len(t) - 1 for t in cost_tables)
    if budget < 0:
        raise FillError(f"budget must be non-negative, got {budget}")
    if budget > capacity:
        raise FillError(f"budget {budget} exceeds total column capacity {capacity}")

    inf = float("inf")
    # best[f] = minimal cost to allocate f features among processed columns.
    best = [0.0] + [inf] * budget
    choice: list[list[int]] = []
    for table in cost_tables:
        cmax = len(table) - 1
        new = [inf] * (budget + 1)
        pick = [0] * (budget + 1)
        for f in range(budget + 1):
            for n in range(0, min(cmax, f) + 1):
                cand = best[f - n] + table[n]
                if cand < new[f] - 1e-15:
                    new[f] = cand
                    pick[f] = n
        best = new
        choice.append(pick)

    counts = [0] * len(cost_tables)
    f = budget
    for k in range(len(cost_tables) - 1, -1, -1):
        n = choice[k][f]
        counts[k] = n
        f -= n
    assert f == 0
    return counts


def allocation_cost(cost_tables: list[tuple[float, ...]], counts: list[int]) -> float:
    """Objective value of an allocation."""
    if len(counts) != len(cost_tables):
        raise FillError("counts/cost_tables length mismatch")
    total = 0.0
    for table, n in zip(cost_tables, counts):
        if not 0 <= n < len(table):
            raise FillError(f"count {n} outside table range 0..{len(table) - 1}")
        total += table[n]
    return total
