"""Robust per-tile solving: deadlines, fallback chain, solve reports.

The paper's flow assumes CPLEX always returns an optimal solution; real
backends hang, hit limits, or die. This layer wraps the method dispatch
(:func:`~repro.pilfill.methods.solve_tile_method`) so one tile's failure
degrades that tile instead of aborting the sweep:

* **Deadlines.** An effective per-solve time limit is derived from the
  per-tile deadline and the remaining per-run deadline (an absolute
  ``time.time()`` epoch, comparable across processes). The ILP backends
  enforce it and surface :class:`~repro.errors.SolveTimeoutError`.
* **Fallback chain.** ILP-II → ILP-I → Greedy (paper Fig. 8 ordering by
  cost/quality); every other method falls back to Greedy directly, which
  is deterministic, fast, and cannot time out on per-tile instances. A
  timeout never retries the *same* method — under the same deadline it
  would just time out again.
* **Reports.** Every tile gets a :class:`SolveReport` recording which
  method was requested, which actually produced the solution, how many
  dispatcher retries happened, and the error chain — so tables can
  annotate degraded cells instead of silently mixing methods.

:class:`~repro.errors.WorkerDeathError` deliberately escapes the chain:
nothing inside a dead worker can run recovery code, so the *dispatcher*
(:mod:`repro.pilfill.parallel`) catches it, retries the tile once with
the same derived RNG (preserving the bit-identity contract), and only
then records the tile as failed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from types import MappingProxyType

from repro.errors import SolveTimeoutError, WorkerDeathError
from repro.obs.metrics import NULL_METRICS, MetricsLike, MetricsSnapshot
from repro.obs.trace import NULL_TRACER, SpanRecord, TracerLike
from repro.pilfill.costlike import TileCosts
from repro.pilfill.solution import TileSolution
from repro.testing import faults as fault_hooks
from repro.testing.faults import FaultSpec

TileKey = tuple[int, int]

#: Degradation order per requested method. Greedy is the terminal rung:
#: deterministic, near-instant, and never invokes an ILP backend.
#: Immutable: this module runs inside pool workers, so module state must
#: not be writable (C201).
_CHAINS: MappingProxyType[str, tuple[str, ...]] = MappingProxyType(
    {
        "ilp2": ("ilp2", "ilp1", "greedy"),
        "ilp1": ("ilp1", "greedy"),
        "greedy": ("greedy",),
    }
)


def fallback_chain(method: str) -> tuple[str, ...]:
    """The ordered methods tried for a tile requesting ``method``."""
    chain = _CHAINS.get(method)
    if chain is None:
        chain = (method, "greedy") if method != "greedy" else ("greedy",)
    return chain


@dataclass(frozen=True)
class SolveReport:
    """How one tile's solution was actually obtained.

    Attributes:
        key: the tile.
        requested_method: what the configuration asked for.
        used_method: what produced the returned solution; ``None`` means
            every rung of the chain failed on every dispatcher attempt
            and the tile was left empty (zero features).
        retries: dispatcher-level retries that preceded the outcome (0 =
            first attempt; 1 = the tile was retried after a worker death
            or chain exhaustion).
        errors: the error messages collected along the way, in order
            (``"method: message"`` per failed rung).
    """

    key: TileKey
    requested_method: str
    used_method: str | None
    retries: int = 0
    errors: tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """The solution came from a cheaper method than requested."""
        return self.used_method is not None and self.used_method != self.requested_method

    @property
    def failed(self) -> bool:
        """No method produced a solution; the tile holds zero features."""
        return self.used_method is None

    @property
    def ok(self) -> bool:
        return self.used_method == self.requested_method


@dataclass(frozen=True)
class RobustSolve:
    """A tile solution bundled with its provenance report.

    ``spans`` / ``metrics`` carry the tile-local telemetry buffer back
    across the worker boundary when telemetry is enabled; both stay
    empty on the disabled fast path.
    """

    solution: TileSolution
    report: SolveReport
    spans: tuple[SpanRecord, ...] = ()
    metrics: MetricsSnapshot | None = None


def effective_time_limit(
    tile_deadline_s: float | None,
    run_deadline: float | None,
) -> float | None:
    """Per-solve wall-clock budget: min(tile deadline, remaining run time).

    ``run_deadline`` is an absolute ``time.time()`` epoch. Raises
    :class:`SolveTimeoutError` when the run deadline has already passed —
    no method (not even the greedy rung) should start then.
    """
    limits = []
    if tile_deadline_s is not None:
        limits.append(tile_deadline_s)
    if run_deadline is not None:
        remaining = run_deadline - time.time()
        if remaining <= 0:
            raise SolveTimeoutError("run deadline exceeded before tile solve started")
        limits.append(remaining)
    return min(limits) if limits else None


def solve_tile_robust(
    costs: TileCosts,
    method: str,
    budget: int,
    weighted: bool,
    ilp_backend: str,
    rng: random.Random,
    *,
    key: TileKey,
    tile_deadline_s: float | None = None,
    run_deadline: float | None = None,
    fault_spec: FaultSpec | None = None,
    attempt: int = 0,
    tracer: TracerLike | None = None,
    metrics: MetricsLike | None = None,
) -> RobustSolve:
    """Solve one tile, degrading down the fallback chain on failure.

    Raises :class:`WorkerDeathError` (never handled here — the dispatcher
    owns the retry) and :class:`SolveTimeoutError` only when the *run*
    deadline is exhausted — that timeout carries the rung error history
    accumulated so far (``rung_errors``), so the dispatcher can record a
    complete failed report without retrying. Any other failure of the
    last chain rung re-raises that rung's exception, which the dispatcher
    turns into a retry and then a failed-tile outcome.
    """
    # Import here: methods → ilp is the heavy part of the import graph and
    # robust is imported by parallel, which workers import at startup.
    from repro.pilfill.methods import solve_tile_method

    trc = tracer if tracer is not None else NULL_TRACER
    mtr = metrics if metrics is not None else NULL_METRICS
    chain = fallback_chain(method)
    errors: list[str] = []
    with trc.span("tile", tile=key, method=method, attempt=attempt):
        for rung_index, rung in enumerate(chain):
            try:
                time_limit = effective_time_limit(tile_deadline_s, run_deadline)
            except SolveTimeoutError as exc:
                # Run deadline expired between rungs: never retried, and
                # the errors collected so far ride along on the exception.
                mtr.count("solve.deadline_hits")
                raise SolveTimeoutError(str(exc), rung_errors=tuple(errors)) from exc
            mtr.count("solve.rungs_attempted")
            with trc.span("rung", method=rung) as rung_span:
                try:
                    fault_hooks.inject(key, rung, attempt, fault_spec)
                    solution = solve_tile_method(
                        costs,
                        rung,
                        budget,
                        weighted,
                        ilp_backend,
                        rng,
                        time_limit=time_limit,
                        tracer=trc,
                    )
                except WorkerDeathError:
                    raise  # the dispatcher retries; recovery cannot run in a dead worker
                except Exception as exc:  # noqa: BLE001 — isolation is the point
                    mtr.count("solve.rung_failures")
                    if isinstance(exc, SolveTimeoutError):
                        mtr.count("solve.deadline_hits")
                    rung_span.set("error", f"{type(exc).__name__}: {exc}")
                    errors.append(f"{rung}: {exc}")
                    if rung_index == len(chain) - 1:
                        if isinstance(exc, SolveTimeoutError):
                            # Keep the earlier rungs' errors on the timeout
                            # so the failed report shows the whole chain.
                            raise SolveTimeoutError(
                                str(exc), rung_errors=tuple(errors[:-1])
                            ) from exc
                        raise
                    continue
            if rung_index > 0:
                mtr.count("solve.fallbacks")
            return RobustSolve(
                solution=solution,
                report=SolveReport(
                    key=key,
                    requested_method=method,
                    used_method=rung,
                    retries=attempt,
                    errors=tuple(errors),
                ),
            )
    raise AssertionError("unreachable: chain is never empty")


def failed_report(
    key: TileKey,
    method: str,
    retries: int,
    error: str | None,
    prior_errors: tuple[str, ...] = (),
) -> SolveReport:
    """The report recorded when every attempt on a tile failed.

    ``prior_errors`` prepends the rung history that preceded the final
    error (e.g. the chain rungs tried before a run-deadline expiry).
    """
    return SolveReport(
        key=key,
        requested_method=method,
        used_method=None,
        retries=retries,
        errors=prior_errors + ((error,) if error else ()),
    )
