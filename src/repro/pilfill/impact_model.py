"""Incremental delay-impact model.

:func:`repro.pilfill.evaluate.evaluate_impact` re-runs the whole-layout
sweep on every call — fine for scoring a finished placement, wasteful for
what-if loops ("how much would one more feature here cost?") and for
optimizers that score many candidate placements. :class:`ImpactModel`
builds the gap-block structure once and then scores placements, single
features, and deltas in O(features) time with identical semantics to the
batch evaluator (a property the test suite pins).

Point-location results are memoized by feature rectangle, so what-if
loops that re-score overlapping candidate sets (and
:meth:`ImpactModel.marginal_cost_ps`, which used to re-locate every
existing feature on every query) pay the spatial lookup once per site.
:meth:`ImpactModel.score` batches the column bucketing and the Eq. 5
capacitance through the same array kernels as the batch evaluator.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.cap.fillimpact import exact_column_cap
from repro.errors import FillError
from repro.geometry import GridBinIndex, Rect
from repro.layout.layout import FillFeature, RoutedLayout
from repro.layout.rctree import OHM_FF_TO_PS
from repro.pilfill.evaluate import _COLUMN_KEY_STRIDE, ImpactReport, column_delta_caps
from repro.pilfill.scanline import GapBlock, layer_sweep_lines, sweep_gap_blocks
from repro.tech.rules import FillRules


@dataclass(frozen=True)
class _ColumnState:
    block_id: int
    col: int


class ImpactModel:
    """Reusable impact scorer for one layer of one layout."""

    def __init__(self, layout: RoutedLayout, layer: str, rules: FillRules):
        self.layout = layout
        self.layer = layer
        self.rules = rules
        lines, horizontal = layer_sweep_lines(layout, layer)
        self._horizontal = horizontal
        self._blocks = sweep_gap_blocks(lines, layout.die, horizontal)
        bin_size = max(1, max(layout.die.width, layout.die.height) // 32)
        self._index: GridBinIndex[int] = GridBinIndex(bin_size)
        for i, block in enumerate(self._blocks):
            rect = self._block_rect(block)
            if not rect.is_empty():
                self._index.insert(rect, i)
        proc = layout.stack.layer(layer)
        self._eps_r = proc.eps_r
        self._thickness = proc.thickness_um
        self._dbu = layout.stack.dbu_per_micron
        self._fill_w_um = rules.fill_size / self._dbu
        # locate() depends only on the feature rectangle, and Rect is
        # frozen/hashable — memoizing by rect makes repeated what-if
        # scoring (and marginal_cost_ps over a growing placement) pay
        # the spatial query once per site instead of once per call.
        # The thread backend shares one model across tiles, so writes
        # go through the lock (reads stay lock-free: entries are
        # immutable and never invalidated).
        self._lock = threading.Lock()
        self._locate_cache: dict[Rect, _ColumnState] = {}

    def _block_rect(self, block: GapBlock) -> Rect:
        if self._horizontal:
            return Rect(block.along.lo, block.cross_lo, block.along.hi, block.cross_hi)
        return Rect(block.cross_lo, block.along.lo, block.cross_hi, block.along.hi)

    def locate(self, feature: FillFeature) -> _ColumnState:
        """Column identity (block + along-axis column) of a feature.

        Memoized by ``feature.rect``; the cache never invalidates because
        the gap-block structure is fixed at construction.
        """
        cached = self._locate_cache.get(feature.rect)
        if cached is not None:
            return cached
        center = feature.rect.center
        for i in self._index.query(Rect(center.x, center.y, center.x + 1, center.y + 1)):
            block = self._blocks[i]
            along_c = center.x if self._horizontal else center.y
            cross_c = center.y if self._horizontal else center.x
            if block.along.contains(along_c) and block.cross_lo <= cross_c < block.cross_hi:
                state = _ColumnState(block_id=i, col=along_c // self.rules.pitch)
                with self._lock:
                    self._locate_cache[feature.rect] = state
                return state
        raise FillError(f"fill feature at {feature.rect} lies on active geometry")

    def _column_delay(
        self, block_id: int, feats: list[FillFeature]
    ) -> tuple[float, float, dict[str, float], dict[str, float]]:
        """(unweighted, weighted, per-net unweighted, per-net weighted)
        for one column group."""
        block = self._blocks[block_id]
        m = len(feats)
        if m == 0 or block.below is None or block.above is None:
            return 0.0, 0.0, {}, {}
        gap_um = block.gap / self._dbu
        delta_c = exact_column_cap(self._eps_r, self._thickness, gap_um, m, self._fill_w_um)
        center_along = (
            sum((f.rect.center.x if self._horizontal else f.rect.center.y) for f in feats) // m
        )
        total = weighted = 0.0
        per_net: dict[str, float] = {}
        per_net_weighted: dict[str, float] = {}
        for sweep_line in (block.below, block.above):
            timing = sweep_line.timing
            if timing is None:
                continue
            delay = timing.resistance_at(center_along) * delta_c * OHM_FF_TO_PS
            total += delay
            weighted += delay * timing.downstream_sinks
            net = timing.segment.net
            per_net[net] = per_net.get(net, 0.0) + delay
            per_net_weighted[net] = (
                per_net_weighted.get(net, 0.0) + delay * timing.downstream_sinks
            )
        return total, weighted, per_net, per_net_weighted

    # -- public API -----------------------------------------------------------

    def score(self, features: list[FillFeature]) -> ImpactReport:
        """Score a placement; semantics identical to
        :func:`repro.pilfill.evaluate.evaluate_impact`.

        Bucketing and the Eq. 5 capacitance run as array kernels (one
        ``np.unique`` sort + one vectorized ΔC pass); only the per-column
        Elmore charging remains a Python loop, with the same per-column
        accumulation order the scalar implementation used.
        """
        report = ImpactReport()
        relevant = [f for f in features if f.layer == self.layer]
        if not relevant:
            return report
        states = [self.locate(f) for f in relevant]
        block_ids = np.array([s.block_id for s in states], dtype=np.int64)
        cols = np.array([s.col for s in states], dtype=np.int64)
        alongs = np.array(
            [f.rect.center.x if self._horizontal else f.rect.center.y for f in relevant],
            dtype=np.int64,
        )
        keys = block_ids * _COLUMN_KEY_STRIDE + cols
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        m_per_col = np.bincount(inverse)
        along_sums = np.bincount(inverse, weights=alongs).astype(np.int64)
        col_blocks = (unique_keys // _COLUMN_KEY_STRIDE).astype(np.int64)
        centers = along_sums // m_per_col

        coupled = np.array(
            [
                self._blocks[b].below is not None and self._blocks[b].above is not None
                for b in col_blocks
            ]
        )
        delta_c = np.zeros(len(unique_keys), dtype=np.float64)
        if coupled.any():
            gaps_um = (
                np.array([self._blocks[b].gap for b in col_blocks[coupled]], dtype=np.int64)
                / self._dbu
            )
            delta_c[coupled] = column_delta_caps(
                gaps_um, m_per_col[coupled], self._eps_r, self._thickness, self._fill_w_um
            )

        report.columns = len(unique_keys)
        for i in range(len(unique_keys)):
            m = int(m_per_col[i])
            if not coupled[i]:
                report.features_free += m
                continue
            block = self._blocks[int(col_blocks[i])]
            center_along = int(centers[i])
            dc = float(delta_c[i])
            total = weighted = 0.0
            per_net: dict[str, float] = {}
            per_net_weighted: dict[str, float] = {}
            for sweep_line in (block.below, block.above):
                timing = sweep_line.timing
                if timing is None:
                    continue
                delay = timing.resistance_at(center_along) * dc * OHM_FF_TO_PS
                total += delay
                weighted += delay * timing.downstream_sinks
                net = timing.segment.net
                per_net[net] = per_net.get(net, 0.0) + delay
                per_net_weighted[net] = (
                    per_net_weighted.get(net, 0.0) + delay * timing.downstream_sinks
                )
            report.total_ps += total
            report.weighted_total_ps += weighted
            for net, value in per_net.items():
                report.per_net_ps[net] = report.per_net_ps.get(net, 0.0) + value
            for net, value in per_net_weighted.items():
                report.per_net_weighted_ps[net] = (
                    report.per_net_weighted_ps.get(net, 0.0) + value
                )
            report.features_scored += m
        report.features_scored += report.features_free
        return report

    def marginal_cost_ps(
        self, feature: FillFeature, existing: list[FillFeature] | None = None
    ) -> float:
        """Weighted delay increase of adding one feature on top of
        ``existing`` (which may share its column — the nonlinearity is
        respected)."""
        state = self.locate(feature)
        same_column = [
            f for f in (existing or [])
            if f.layer == self.layer
            and self.locate(f) == state
        ]
        _t0, before, _pn0, _pw0 = self._column_delay(state.block_id, same_column)
        _t1, after, _pn1, _pw1 = self._column_delay(
            state.block_id, same_column + [feature]
        )
        return after - before

    @property
    def block_count(self) -> int:
        """Number of gap blocks in the model."""
        return len(self._blocks)
