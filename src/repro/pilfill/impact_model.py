"""Incremental delay-impact model.

:func:`repro.pilfill.evaluate.evaluate_impact` re-runs the whole-layout
sweep on every call — fine for scoring a finished placement, wasteful for
what-if loops ("how much would one more feature here cost?") and for
optimizers that score many candidate placements. :class:`ImpactModel`
builds the gap-block structure once and then scores placements, single
features, and deltas in O(features) time with identical semantics to the
batch evaluator (a property the test suite pins).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.cap.fillimpact import exact_column_cap
from repro.errors import FillError
from repro.geometry import GridBinIndex, Rect
from repro.layout.layout import FillFeature, RoutedLayout
from repro.layout.rctree import OHM_FF_TO_PS
from repro.pilfill.evaluate import ImpactReport
from repro.pilfill.scanline import layer_sweep_lines, sweep_gap_blocks
from repro.tech.rules import FillRules


@dataclass(frozen=True)
class _ColumnState:
    block_id: int
    col: int


class ImpactModel:
    """Reusable impact scorer for one layer of one layout."""

    def __init__(self, layout: RoutedLayout, layer: str, rules: FillRules):
        self.layout = layout
        self.layer = layer
        self.rules = rules
        lines, horizontal = layer_sweep_lines(layout, layer)
        self._horizontal = horizontal
        self._blocks = sweep_gap_blocks(lines, layout.die, horizontal)
        bin_size = max(1, max(layout.die.width, layout.die.height) // 32)
        self._index: GridBinIndex[int] = GridBinIndex(bin_size)
        for i, block in enumerate(self._blocks):
            rect = self._block_rect(block)
            if not rect.is_empty():
                self._index.insert(rect, i)
        proc = layout.stack.layer(layer)
        self._eps_r = proc.eps_r
        self._thickness = proc.thickness_um
        self._dbu = layout.stack.dbu_per_micron
        self._fill_w_um = rules.fill_size / self._dbu

    def _block_rect(self, block) -> Rect:
        if self._horizontal:
            return Rect(block.along.lo, block.cross_lo, block.along.hi, block.cross_hi)
        return Rect(block.cross_lo, block.along.lo, block.cross_hi, block.along.hi)

    def locate(self, feature: FillFeature) -> _ColumnState:
        """Column identity (block + along-axis column) of a feature."""
        center = feature.rect.center
        for i in self._index.query(Rect(center.x, center.y, center.x + 1, center.y + 1)):
            block = self._blocks[i]
            along_c = center.x if self._horizontal else center.y
            cross_c = center.y if self._horizontal else center.x
            if block.along.contains(along_c) and block.cross_lo <= cross_c < block.cross_hi:
                return _ColumnState(block_id=i, col=along_c // self.rules.pitch)
        raise FillError(f"fill feature at {feature.rect} lies on active geometry")

    def _column_delay(
        self, block_id: int, feats: list[FillFeature]
    ) -> tuple[float, float, dict, dict]:
        """(unweighted, weighted, per-net unweighted, per-net weighted)
        for one column group."""
        block = self._blocks[block_id]
        m = len(feats)
        if m == 0 or block.below is None or block.above is None:
            return 0.0, 0.0, {}, {}
        gap_um = block.gap / self._dbu
        delta_c = exact_column_cap(self._eps_r, self._thickness, gap_um, m, self._fill_w_um)
        center_along = (
            sum((f.rect.center.x if self._horizontal else f.rect.center.y) for f in feats) // m
        )
        total = weighted = 0.0
        per_net: dict[str, float] = {}
        per_net_weighted: dict[str, float] = {}
        for sweep_line in (block.below, block.above):
            timing = sweep_line.timing
            if timing is None:
                continue
            delay = timing.resistance_at(center_along) * delta_c * OHM_FF_TO_PS
            total += delay
            weighted += delay * timing.downstream_sinks
            net = timing.segment.net
            per_net[net] = per_net.get(net, 0.0) + delay
            per_net_weighted[net] = (
                per_net_weighted.get(net, 0.0) + delay * timing.downstream_sinks
            )
        return total, weighted, per_net, per_net_weighted

    # -- public API -----------------------------------------------------------

    def score(self, features: list[FillFeature]) -> ImpactReport:
        """Score a placement; semantics identical to
        :func:`repro.pilfill.evaluate.evaluate_impact`."""
        report = ImpactReport()
        buckets: dict[tuple[int, int], list[FillFeature]] = defaultdict(list)
        for feature in features:
            if feature.layer != self.layer:
                continue
            state = self.locate(feature)
            buckets[(state.block_id, state.col)].append(feature)
        for (block_id, _col), feats in sorted(buckets.items()):
            report.columns += 1
            block = self._blocks[block_id]
            if block.below is None or block.above is None:
                report.features_free += len(feats)
                continue
            total, weighted, per_net, per_net_weighted = self._column_delay(
                block_id, feats
            )
            report.total_ps += total
            report.weighted_total_ps += weighted
            for net, value in per_net.items():
                report.per_net_ps[net] = report.per_net_ps.get(net, 0.0) + value
            for net, value in per_net_weighted.items():
                report.per_net_weighted_ps[net] = (
                    report.per_net_weighted_ps.get(net, 0.0) + value
                )
            report.features_scored += len(feats)
        report.features_scored += report.features_free
        return report

    def marginal_cost_ps(
        self, feature: FillFeature, existing: list[FillFeature] | None = None
    ) -> float:
        """Weighted delay increase of adding one feature on top of
        ``existing`` (which may share its column — the nonlinearity is
        respected)."""
        state = self.locate(feature)
        same_column = [
            f for f in (existing or [])
            if f.layer == self.layer
            and self.locate(f) == state
        ]
        _t0, before, _pn0, _pw0 = self._column_delay(state.block_id, same_column)
        _t1, after, _pn1, _pw1 = self._column_delay(
            state.block_id, same_column + [feature]
        )
        return after - before

    @property
    def block_count(self) -> int:
        """Number of gap blocks in the model."""
        return len(self._blocks)
