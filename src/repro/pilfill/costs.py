"""Per-tile cost tables shared by the MDFC solution methods.

For every slack column ``k`` in a tile we tabulate the delay impact (ps)
of placing ``n = 0 .. C_k`` features:

* exact costs — the LUT capacitance model (ILP-II, Greedy, DP, evaluator),
* linear costs — ILP-I's Eq. 6 approximation (per-feature constant).

Both are weighted by the column's r̂ multiplier (Σ neighbor weight ×
upstream resistance), so a cost table entry *is* the objective
contribution of that column.

:func:`build_costs` is the vectorized builder: columns are grouped by
their (quantized gap, capacity) LUT key, each group's capacitance tables
are evaluated once over the whole ``n = 0 .. C`` vector, and the per-column
r̂ scaling is a single numpy multiply. It is bit-identical to the scalar
reference (:func:`build_costs_scalar`), which is kept as the oracle the
property tests pin the vectorized path against.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.cap.fillimpact import linear_column_cap, linear_column_cap_array
from repro.cap.lut import LUTCache
from repro.layout.rctree import OHM_FF_TO_PS
from repro.pilfill.columns import SlackColumn
from repro.tech.process import ProcessLayer
from repro.tech.rules import FillRules


@dataclass(frozen=True)
class ColumnCosts:
    """Cost tables of one column.

    ``exact[n]`` and ``linear[n]`` are delay impacts in ps for ``n``
    features; both have length ``capacity + 1`` with entry 0 equal to 0.
    """

    column: SlackColumn
    exact: tuple[float, ...]
    linear: tuple[float, ...]

    @property
    def capacity(self) -> int:
        return self.column.capacity

    @cached_property
    def exact_array(self) -> np.ndarray:
        """``exact`` as a read-only float64 array (cached)."""
        arr = np.asarray(self.exact, dtype=np.float64)
        arr.setflags(write=False)
        return arr

    @cached_property
    def linear_array(self) -> np.ndarray:
        """``linear`` as a read-only float64 array (cached)."""
        arr = np.asarray(self.linear, dtype=np.float64)
        arr.setflags(write=False)
        return arr


def build_costs(
    columns: list[SlackColumn],
    layer: ProcessLayer,
    rules: FillRules,
    dbu_per_micron: int,
    lut_cache: LUTCache,
    weighted: bool,
) -> list[ColumnCosts]:
    """Cost tables for every column of a tile (vectorized).

    Impactful columns are batched through :meth:`LUTCache.get_batch` (one
    vectorized capacitance evaluation per distinct geometry) and the linear
    tables are grouped by exact ``(gap, capacity)`` so each distinct
    geometry is evaluated once; the r̂ weighting is applied as one array
    multiply per column. Results are bit-identical to
    :func:`build_costs_scalar`.
    """
    fill_w_um = rules.fill_size / dbu_per_micron
    out: list[ColumnCosts | None] = [None] * len(columns)

    impact: list[int] = []
    for i, col in enumerate(columns):
        if col.has_impact:
            impact.append(i)
        else:
            zero = (0.0,) * (col.capacity + 1)
            out[i] = ColumnCosts(col, zero, zero)
    if not impact:
        return out  # type: ignore[return-value]

    luts = lut_cache.get_batch(
        [(columns[i].gap_um, columns[i].capacity) for i in impact]
    )
    # Linear tables depend only on (gap, capacity); share one vectorized
    # evaluation per distinct geometry (no quantization — the scalar
    # reference uses each column's own gap value).
    linear_groups: dict[tuple[float, int], np.ndarray] = {}
    for i in impact:
        col = columns[i]
        key = (col.gap_um, col.capacity)
        if key not in linear_groups:
            linear_groups[key] = linear_column_cap_array(
                layer.eps_r, layer.thickness_um, col.gap_um, col.capacity, fill_w_um
            )

    for i, lut in zip(impact, luts):
        col = columns[i]
        r_hat = col.resistance_weight(weighted)
        exact = r_hat * lut.table_array * OHM_FF_TO_PS
        linear = r_hat * linear_groups[(col.gap_um, col.capacity)] * OHM_FF_TO_PS
        out[i] = ColumnCosts(col, tuple(exact.tolist()), tuple(linear.tolist()))
    return out  # type: ignore[return-value]


def build_costs_scalar(
    columns: list[SlackColumn],
    layer: ProcessLayer,
    rules: FillRules,
    dbu_per_micron: int,
    lut_cache: LUTCache,
    weighted: bool,
) -> list[ColumnCosts]:
    """Scalar reference implementation of :func:`build_costs`.

    One pure-Python loop per column entry — kept as the verification
    oracle for the vectorized builder (the property tests assert exact
    equality) and as the baseline for the kernel benchmarks.
    """
    fill_w_um = rules.fill_size / dbu_per_micron
    out: list[ColumnCosts] = []
    for col in columns:
        cap = col.capacity
        if not col.has_impact:
            zero = tuple(0.0 for _ in range(cap + 1))
            out.append(ColumnCosts(col, zero, zero))
            continue
        r_hat = col.resistance_weight(weighted)
        lut = lut_cache.get(col.gap_um, cap)
        exact = tuple(r_hat * lut.cap(n) * OHM_FF_TO_PS for n in range(cap + 1))
        linear = tuple(
            r_hat
            * linear_column_cap(layer.eps_r, layer.thickness_um, col.gap_um, n, fill_w_um)
            * OHM_FF_TO_PS
            for n in range(cap + 1)
        )
        out.append(ColumnCosts(col, exact, linear))
    return out
