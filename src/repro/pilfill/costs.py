"""Per-tile cost tables shared by the MDFC solution methods.

For every slack column ``k`` in a tile we tabulate the delay impact (ps)
of placing ``n = 0 .. C_k`` features:

* exact costs — the LUT capacitance model (ILP-II, Greedy, DP, evaluator),
* linear costs — ILP-I's Eq. 6 approximation (per-feature constant).

Both are weighted by the column's r̂ multiplier (Σ neighbor weight ×
upstream resistance), so a cost table entry *is* the objective
contribution of that column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cap.fillimpact import linear_column_cap
from repro.cap.lut import LUTCache
from repro.layout.rctree import OHM_FF_TO_PS
from repro.pilfill.columns import SlackColumn
from repro.tech.process import ProcessLayer
from repro.tech.rules import FillRules


@dataclass(frozen=True)
class ColumnCosts:
    """Cost tables of one column.

    ``exact[n]`` and ``linear[n]`` are delay impacts in ps for ``n``
    features; both have length ``capacity + 1`` with entry 0 equal to 0.
    """

    column: SlackColumn
    exact: tuple[float, ...]
    linear: tuple[float, ...]

    @property
    def capacity(self) -> int:
        return self.column.capacity


def build_costs(
    columns: list[SlackColumn],
    layer: ProcessLayer,
    rules: FillRules,
    dbu_per_micron: int,
    lut_cache: LUTCache,
    weighted: bool,
) -> list[ColumnCosts]:
    """Cost tables for every column of a tile."""
    fill_w_um = rules.fill_size / dbu_per_micron
    out: list[ColumnCosts] = []
    for col in columns:
        cap = col.capacity
        if not col.has_impact:
            zero = tuple(0.0 for _ in range(cap + 1))
            out.append(ColumnCosts(col, zero, zero))
            continue
        r_hat = col.resistance_weight(weighted)
        lut = lut_cache.get(col.gap_um, cap)
        exact = tuple(r_hat * lut.cap(n) * OHM_FF_TO_PS for n in range(cap + 1))
        linear = tuple(
            r_hat
            * linear_column_cap(layer.eps_r, layer.thickness_um, col.gap_um, n, fill_w_um)
            * OHM_FF_TO_PS
            for n in range(cap + 1)
        )
        out.append(ColumnCosts(col, exact, linear))
    return out
