"""ILP-I: the linear-capacitance integer program (paper Section 5.2).

Faithful to the published formulation: per tile, integer variables ``m_k``
(features per slack column), continuous ``Cap_k`` (Eq. 12, the *linear*
Eq. 6 capacitance), continuous ``Δτ_l`` per active line (Eq. 13), budget
equality (Eq. 11), capacities (Eq. 14), objective Σ W_l Δτ_l (Eq. 10).

The linear model underestimates the true (convex) capacitance — worst when
the fill width is not ≪ the line spacing — which is why ILP-I can lose to
Greedy and even to Normal fill on some configurations (paper Table 1).
"""

from __future__ import annotations

from repro.errors import FillError, SolverError, SolveTimeoutError
from repro.ilp import INF, Model, VarKind, solve
from repro.ilp.result import SolveStatus
from repro.obs.trace import TracerLike
from repro.pilfill.costs import ColumnCosts
from repro.pilfill.solution import TileSolution


def solve_tile_ilp1(
    costs: list[ColumnCosts],
    budget: int,
    weighted: bool,
    backend: str = "auto",
    time_limit: float | None = None,
    tracer: TracerLike | None = None,
) -> TileSolution:
    """Solve one tile with the ILP-I formulation.

    Args:
        costs: per-column cost tables (the ``linear`` tables are used).
        budget: features to place in this tile (Eq. 11's ``F``).
        weighted: True for the sink-weighted objective (weights are already
            folded into the cost tables; the flag is kept for symmetry and
            sanity checks).
        backend: ILP backend (``bundled``/``scipy``/``auto``).
        time_limit: wall-clock deadline in seconds for this tile's solve;
            exceeding it raises :class:`SolveTimeoutError`.
    """
    if budget == 0:
        return TileSolution(counts=[0] * len(costs))
    capacity = sum(c.capacity for c in costs)
    if budget > capacity:
        raise FillError(f"budget {budget} exceeds tile capacity {capacity}")

    model = Model("ilp1-tile")
    m_vars = []
    # Group columns by adjacent line so Δτ_l variables match the paper's
    # per-line constraints (Eq. 13).
    line_terms: dict[tuple[str, int], list] = {}
    line_weight: dict[tuple[str, int], int] = {}

    for k, cc in enumerate(costs):
        m_k = model.add_var(f"m_{k}", lb=0, ub=cc.capacity, kind=VarKind.INTEGER)
        m_vars.append(m_k)
        if not cc.column.has_impact:
            continue
        # Cap_k = (per-feature linear ΔC folded with nothing) · m_k. The
        # cost tables store delay (ps) per count with r̂ folded in; recover
        # the per-feature, per-line pieces so the model mirrors Eqs. 12-13.
        per_feature_delay = cc.linear[1]  # ps per feature, both lines, weighted
        cap_k = model.add_var(f"cap_{k}", lb=0.0, ub=INF)
        model.add_constraint(cap_k == m_k * per_feature_delay)
        for neighbor in (cc.column.below, cc.column.above):
            if neighbor is None:
                continue
            ident = neighbor.identity
            w = neighbor.sinks if weighted else 1
            share = (
                (w * neighbor.resistance_ohm)
                / cc.column.resistance_weight(weighted)
                if cc.column.resistance_weight(weighted) > 0
                else 0.0
            )
            line_terms.setdefault(ident, []).append(cap_k * share)
            line_weight[ident] = 1  # weight already folded into the share

    tau_vars = []
    for ident, terms in line_terms.items():
        tau = model.add_var(f"tau_{ident[0]}_{ident[1]}", lb=0.0, ub=INF)
        model.add_constraint(tau == sum(terms, start=0.0))
        tau_vars.append(tau)

    model.add_constraint(sum((m * 1.0 for m in m_vars), start=0.0) == budget)
    if tau_vars:
        model.minimize(sum((t * 1.0 for t in tau_vars), start=0.0))
    else:
        model.minimize(sum((m * 0.0 for m in m_vars), start=0.0))

    result = solve(model, backend=backend, time_limit=time_limit, tracer=tracer)
    if result.status is SolveStatus.TIME_LIMIT:
        raise SolveTimeoutError(f"ILP-I tile solve hit the {time_limit}s deadline")
    if not result.status.is_optimal:
        raise SolverError(f"ILP-I tile solve failed: {result.status}")
    counts = [int(result.value(m.name)) for m in m_vars]
    return TileSolution(
        counts=counts,
        model_objective_ps=result.objective,
        nodes=result.nodes,
        iterations=result.iterations,
    )
