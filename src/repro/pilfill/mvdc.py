"""MVDC: Minimum Variation with Delay Constraint (paper footnote ‡ and
Section 7).

The dual of MDFC: instead of "place exactly F features with minimum delay
impact", MVDC asks "place as *much* fill as possible (to minimize density
variation) subject to an upper bound on delay impact". The paper mentions
studying this formulation but found it "less tractable to optimization
heuristics" and does not develop it; this module provides the natural
per-tile solution as an extension.

Per tile the problem is: maximize Σ m_k subject to Σ cost_k(m_k) ≤ D and
0 ≤ m_k ≤ C_k. With convex cost tables, granting features in ascending
marginal-cost order is optimal (exchange argument: any feasible allocation
can be transformed into the greedy one without reducing the count or
raising the cost), so the solver is an exact marginal greedy.
"""

from __future__ import annotations

import heapq

from repro.errors import FillError
from repro.pilfill.costs import ColumnCosts
from repro.pilfill.solution import TileSolution


def solve_tile_mvdc(costs: list[ColumnCosts], delay_budget_ps: float) -> TileSolution:
    """Maximize feature count in one tile under a delay-impact cap.

    Args:
        costs: per-column cost tables (exact model).
        delay_budget_ps: upper bound on the summed column delay impact, ps.

    Returns:
        The allocation with the most features whose modeled impact does not
        exceed the budget; among equal counts, the cheapest.
    """
    if delay_budget_ps < 0:
        raise FillError(f"delay budget must be non-negative, got {delay_budget_ps}")

    counts = [0] * len(costs)
    spent = 0.0
    heap: list[tuple[float, int]] = []
    for k, cc in enumerate(costs):
        if cc.capacity > 0:
            heapq.heappush(heap, (cc.exact[1] - cc.exact[0], k))
    while heap:
        marginal, k = heapq.heappop(heap)
        if spent + marginal > delay_budget_ps + 1e-15:
            # Convex marginals: every remaining step in this column is at
            # least as expensive, but a *different* column may still have a
            # cheaper next step — the heap ordering guarantees it doesn't.
            break
        counts[k] += 1
        spent += marginal
        table = costs[k].exact
        nxt = counts[k] + 1
        if nxt < len(table):
            heapq.heappush(heap, (table[nxt] - table[counts[k]], k))
    return TileSolution(counts=counts, model_objective_ps=spent)


def derive_tile_delay_budgets(
    requested: dict[tuple[int, int], int],
    costs_by_tile: dict[tuple[int, int], list[ColumnCosts]],
    slack_fraction: float,
) -> dict[tuple[int, int], float]:
    """Heuristic per-tile delay budgets for an MVDC run.

    Budgets each tile at ``slack_fraction`` of the delay impact the *worst*
    placement of its requested feature count would cause — so the knob is
    interpretable: 1.0 means "no better than the worst case", 0.0 means
    "free columns only".
    """
    if not 0.0 <= slack_fraction <= 1.0:
        raise FillError(f"slack_fraction must be in [0, 1], got {slack_fraction}")
    budgets: dict[tuple[int, int], float] = {}
    for key, costs in costs_by_tile.items():
        want = requested.get(key, 0)
        if want <= 0 or not costs:
            budgets[key] = 0.0
            continue
        # Worst case: most expensive marginals first.
        marginals: list[float] = []
        for cc in costs:
            marginals.extend(
                cc.exact[n] - cc.exact[n - 1] for n in range(1, cc.capacity + 1)
            )
        marginals.sort(reverse=True)
        worst = sum(marginals[:want])
        budgets[key] = worst * slack_fraction
    return budgets
