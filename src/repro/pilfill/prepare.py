"""Shared preprocessing for the PIL-Fill flow.

The engine's per-run pipeline starts with work that depends only on the
``(layout, layer, fill_rules, density_rules, column_def)`` tuple — the
fixed r-dissection, the site-legality oracle, the pre-fill density map,
the scan-line slack-column extraction, and the per-column cost tables.
None of it depends on the *method*, so rebuilding it per method (as the
experiment harness would otherwise do, once per table cell) is pure
redundancy: 4 methods × 12 configurations = 48 rebuilds of identical
state.

:class:`PreparedInstance` captures that state once. It is:

* **reusable** — pass it to any number of :class:`~repro.pilfill.engine.
  PILFillEngine` runs (``run`` / ``run_mvdc`` / ``run_budgeted``) whose
  config matches its key; mismatches raise :class:`~repro.errors.FillError`
  rather than silently mixing geometries,
* **lazy** — the density map is only built when a budget actually has to
  be derived (an explicit budget override skips it entirely), and cost
  tables are built per ``weighted`` flag on first use,
* **memoizing** — budgets are cached by the budget-relevant config knobs
  so e.g. four methods sharing one configuration derive the budget once.

``PreparedInstance.build_count`` counts full preprocessing builds
(process-wide) so tests and benchmarks can assert the sharing actually
happens.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cap.lut import LUTCache
from repro.dissection.density import DensityMap
from repro.dissection.fixed import FixedDissection
from repro.errors import FillError
from repro.fillsynth.budget import hybrid_budget, lp_minvar_budget, montecarlo_budget
from repro.fillsynth.slack_sites import SiteLegality
from repro.geometry.spatial import GridBinIndex
from repro.layout.layout import RoutedLayout
from repro.obs.trace import NULL_TRACER, TracerLike
from repro.pilfill.columns import SlackColumn, SlackColumnDef
from repro.pilfill.costs import ColumnCosts, build_costs
from repro.pilfill.scanline import extract_columns
from repro.tech.rules import DensityRules, FillRules

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.pilfill.engine import EngineConfig
    from repro.pilfill.executor import SharedCostStore
    from repro.pilfill.parallel import PayloadColumnCosts

TileKey = tuple[int, int]


@dataclass
class PreparedInstance:
    """Method-independent preprocessing of one ``(layout, layer)`` pair.

    Build via :func:`prepare` (or :meth:`PILFillEngine.prepare`); the
    constructor itself performs no work. ``phase_seconds`` records the
    time spent in each preprocessing phase (``setup``, ``scanline``, and
    lazily ``density`` / ``costs`` / ``budget``) — each is paid once per
    instance no matter how many engine runs reuse it.
    """

    layout: RoutedLayout
    layer: str
    fill_rules: FillRules
    density_rules: DensityRules
    column_def: SlackColumnDef
    dissection: FixedDissection
    legality: SiteLegality
    columns_by_tile: dict[TileKey, list[SlackColumn]]
    phase_seconds: dict[str, float] = field(default_factory=dict)
    lut_stats: dict[str, int] = field(default_factory=dict)
    _density: DensityMap | None = field(default=None, repr=False)
    _costs: dict[bool, dict[TileKey, list[ColumnCosts]]] = field(
        default_factory=dict, repr=False
    )
    _budgets: dict[tuple, dict[TileKey, int]] = field(default_factory=dict, repr=False)
    _lut_caches: dict[bool, LUTCache] = field(default_factory=dict, repr=False)
    _payload_columns: dict[bool, dict[TileKey, tuple["PayloadColumnCosts", ...]]] = field(
        default_factory=dict, repr=False
    )
    _shared_stores: dict[bool, "SharedCostStore | None"] = field(
        default_factory=dict, repr=False
    )
    _tile_index: "GridBinIndex[TileKey] | None" = field(default=None, repr=False)

    #: Process-wide count of full preprocessing builds (see :func:`prepare`).
    build_count = 0

    @property
    def density(self) -> DensityMap:
        """The pre-fill density map, built on first access only.

        Runs that receive an explicit budget override never touch this,
        so they skip the density scan entirely.
        """
        if self._density is None:
            t0 = time.perf_counter()
            self._density = DensityMap.from_layout(self.dissection, self.layout, self.layer)
            self.phase_seconds["density"] = time.perf_counter() - t0
        return self._density

    def tile_index(self) -> GridBinIndex[TileKey]:
        """Spatial index of every tile rect, built on first access.

        The incremental-fill dirty-window pass queries it to find the
        tiles an ECO window touches
        (:meth:`repro.pilfill.incremental.SolutionCache.invalidate_window`)
        without scanning the whole dissection. Binned at the tile side,
        so a query touches a handful of bins.
        """
        if self._tile_index is None:
            index: GridBinIndex[TileKey] = GridBinIndex(self.dissection.tile_size)
            index.insert_many((tile.rect, tile.key) for tile in self.dissection.tiles())
            self._tile_index = index
        return self._tile_index

    def capacity(self, margin: float = 1.0) -> dict[TileKey, int]:
        """Placeable capacity per tile (column sites × headroom margin)."""
        return {
            key: int(sum(c.capacity for c in cols) * margin)
            for key, cols in self.columns_by_tile.items()
        }

    def costs_for(
        self, weighted: bool, tracer: TracerLike | None = None
    ) -> dict[TileKey, list[ColumnCosts]]:
        """Per-tile cost tables under the given objective weighting.

        Built once per ``weighted`` flag and shared by every run; the
        tables are immutable so concurrent tile solvers may read them
        freely. LUT-cache hit/miss counts accumulate into ``lut_stats``.
        """
        cached = self._costs.get(weighted)
        if cached is not None:
            return cached
        trc = tracer if tracer is not None else NULL_TRACER
        t0 = time.perf_counter()
        with trc.span("prepare.costs", weighted=weighted):
            layer_proc = self.layout.stack.layer(self.layer)
            dbu = self.layout.stack.dbu_per_micron
            lut_cache = LUTCache(
                layer_proc.eps_r, layer_proc.thickness_um, self.fill_rules.fill_size / dbu
            )
            costs = {
                key: build_costs(cols, layer_proc, self.fill_rules, dbu, lut_cache, weighted)
                for key, cols in self.columns_by_tile.items()
            }
            for name, count in lut_cache.stats().items():
                self.lut_stats[name] = self.lut_stats.get(name, 0) + count
        self._costs[weighted] = costs
        # Kept so the shared-memory store can ship the LUT tables to pool
        # workers once instead of re-deriving them there.
        self._lut_caches[weighted] = lut_cache
        self.phase_seconds["costs"] = (
            self.phase_seconds.get("costs", 0.0) + time.perf_counter() - t0
        )
        return costs

    def payload_columns_for(
        self, weighted: bool, tracer: TracerLike | None = None
    ) -> dict[TileKey, tuple["PayloadColumnCosts", ...]]:
        """Picklable per-tile column tables, converted once per
        ``weighted`` flag and shared by every process-backend run."""
        cached = self._payload_columns.get(weighted)
        if cached is not None:
            return cached
        from repro.pilfill.parallel import payload_columns

        costs = self.costs_for(weighted, tracer=tracer)
        converted = {key: payload_columns(cc) for key, cc in costs.items()}
        self._payload_columns[weighted] = converted
        return converted

    def shared_store_for(
        self, weighted: bool, tracer: TracerLike | None = None
    ) -> "SharedCostStore | None":
        """The shared-memory cost/LUT store for ``weighted`` runs.

        Built once per flag and reused by every ``engine.run()`` on this
        instance — the persistent pool's workers resolve it by content
        hash, so consecutive runs (even interleaved with runs of another
        prepared instance) always see the right tables. Returns ``None``
        where shared memory is unavailable; callers then fall back to
        inline per-payload columns.
        """
        if weighted in self._shared_stores:
            return self._shared_stores[weighted]
        from repro.pilfill.executor import make_shared_store

        columns = self.payload_columns_for(weighted, tracer=tracer)
        lut_cache = self._lut_caches.get(weighted)
        store = make_shared_store(
            columns, lut_cache.snapshot() if lut_cache is not None else None
        )
        self._shared_stores[weighted] = store
        return store

    def close(self) -> None:
        """Release the shared-memory stores (idempotent; also guaranteed
        by per-store finalizers when the instance is garbage-collected)."""
        for store in self._shared_stores.values():
            if store is not None:
                store.close()
        self._shared_stores.clear()

    def budget_for(
        self, config: "EngineConfig", tracer: TracerLike | None = None
    ) -> dict[TileKey, int]:
        """Per-tile feature budgets from the density-control baseline.

        Cached by the budget-relevant knobs (mode, target, seed, margin),
        so methods sharing a configuration derive the budget once.
        """
        self.check_config(config)
        key = (
            config.budget_mode,
            config.target_density,
            config.seed,
            config.capacity_margin,
        )
        cached = self._budgets.get(key)
        if cached is not None:
            return dict(cached)
        trc = tracer if tracer is not None else NULL_TRACER
        t0 = time.perf_counter()
        with trc.span("prepare.budget", mode=config.budget_mode):
            capacity = self.capacity(config.capacity_margin)
            target = config.target_density
            if target == "mean":
                target = float(self.density.window_density().mean())
            if config.budget_mode == "lp":
                budget = lp_minvar_budget(
                    self.density, capacity, self.fill_rules, target_density=target
                )
            elif config.budget_mode == "hybrid":
                budget = hybrid_budget(
                    self.density,
                    capacity,
                    self.fill_rules,
                    target_density=target,
                    seed=config.seed,
                )
            else:
                budget = montecarlo_budget(
                    self.density,
                    capacity,
                    self.fill_rules,
                    target_density=target,
                    seed=config.seed,
                )
        self._budgets[key] = budget
        self.phase_seconds["budget"] = (
            self.phase_seconds.get("budget", 0.0) + time.perf_counter() - t0
        )
        return dict(budget)

    def check_config(self, config: "EngineConfig") -> None:
        """Raise :class:`FillError` if ``config`` disagrees with the
        geometry this instance was prepared under."""
        if config.fill_rules != self.fill_rules:
            raise FillError("prepared instance was built with different fill rules")
        if config.density_rules != self.density_rules:
            raise FillError("prepared instance was built with different density rules")
        if config.column_def is not self.column_def:
            raise FillError(
                f"prepared instance uses column definition {self.column_def}, "
                f"config asks for {config.column_def}"
            )


def prepare(
    layout: RoutedLayout,
    layer: str,
    fill_rules: FillRules,
    density_rules: DensityRules,
    column_def: SlackColumnDef = SlackColumnDef.FULL_LAYOUT,
    tracer: TracerLike | None = None,
) -> PreparedInstance:
    """Run the shared preprocessing once and capture it.

    Performs the dissection, legality indexing, and scan-line column
    extraction eagerly (timed under ``setup`` / ``scanline``); the density
    map, cost tables, and budgets are derived lazily on first use.
    ``tracer``, when given, records ``prepare.setup`` / ``prepare.scanline``
    spans around the eager phases.
    """
    if not layout.stack.has_layer(layer):
        raise FillError(f"layout stack has no layer {layer!r}")
    trc = tracer if tracer is not None else NULL_TRACER
    clock = time.perf_counter
    phase_seconds: dict[str, float] = {}

    t0 = clock()
    with trc.span("prepare.setup"):
        dissection = FixedDissection(layout.die, density_rules)
        legality = SiteLegality(layout, layer, fill_rules)
    phase_seconds["setup"] = clock() - t0

    t0 = clock()
    with trc.span("prepare.scanline") as span:
        columns_by_tile = extract_columns(
            layout, layer, dissection, legality, fill_rules, column_def
        )
        span.set("tiles", len(columns_by_tile))
    phase_seconds["scanline"] = clock() - t0

    PreparedInstance.build_count += 1
    return PreparedInstance(
        layout=layout,
        layer=layer,
        fill_rules=fill_rules,
        density_rules=density_rules,
        column_def=column_def,
        dissection=dissection,
        legality=legality,
        columns_by_tile=columns_by_tile,
        phase_seconds=phase_seconds,
    )
