"""Shared preprocessing for the PIL-Fill flow.

The engine's per-run pipeline starts with work that depends only on the
``(layout, layer, fill_rules, density_rules, column_def)`` tuple — the
fixed r-dissection, the site-legality oracle, the pre-fill density map,
the scan-line slack-column extraction, and the per-column cost tables.
None of it depends on the *method*, so rebuilding it per method (as the
experiment harness would otherwise do, once per table cell) is pure
redundancy: 4 methods × 12 configurations = 48 rebuilds of identical
state.

:class:`PreparedInstance` captures that state once. It is:

* **reusable** — pass it to any number of :class:`~repro.pilfill.engine.
  PILFillEngine` runs (``run`` / ``run_mvdc`` / ``run_budgeted``) whose
  config matches its key; mismatches raise :class:`~repro.errors.FillError`
  rather than silently mixing geometries,
* **lazy** — the density map is only built when a budget actually has to
  be derived (an explicit budget override skips it entirely), and cost
  tables are built per ``weighted`` flag on first use,
* **memoizing** — budgets are cached by the budget-relevant config knobs
  so e.g. four methods sharing one configuration derive the budget once.

``PreparedInstance.build_count`` counts full preprocessing builds
(process-wide) so tests and benchmarks can assert the sharing actually
happens.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.cap.lut import LUTCache
from repro.dissection.density import DensityMap
from repro.dissection.fixed import FixedDissection
from repro.errors import FillError, ParseError
from repro.fillsynth.budget import hybrid_budget, lp_minvar_budget, montecarlo_budget
from repro.fillsynth.slack_sites import SiteLegality
from repro.geometry import Rect, total_area
from repro.geometry.spatial import GridBinIndex
from repro.io.deflite import net_ylo, parse_def_streaming
from repro.layout.layout import RoutedLayout
from repro.layout.net import Net
from repro.layout.rctree import RCTree
from repro.obs.trace import NULL_TRACER, TracerLike
from repro.pilfill.columns import SlackColumn, SlackColumnDef
from repro.pilfill.costs import ColumnCosts, build_costs
from repro.pilfill.scanline import (
    ColumnGridder,
    IncrementalSweep,
    SweepLine,
    extract_columns,
    extract_columns_from_lines,
)
from repro.tech.process import ProcessStack
from repro.tech.rules import DensityRules, FillRules

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.pilfill.engine import EngineConfig
    from repro.pilfill.executor import SharedCostStore
    from repro.pilfill.parallel import PayloadColumnCosts

TileKey = tuple[int, int]


@dataclass
class PreparedInstance:
    """Method-independent preprocessing of one ``(layout, layer)`` pair.

    Build via :func:`prepare` (or :meth:`PILFillEngine.prepare`); the
    constructor itself performs no work. ``phase_seconds`` records the
    time spent in each preprocessing phase (``setup``, ``scanline``, and
    lazily ``density`` / ``costs`` / ``budget``) — each is paid once per
    instance no matter how many engine runs reuse it.
    """

    layout: RoutedLayout
    layer: str
    fill_rules: FillRules
    density_rules: DensityRules
    column_def: SlackColumnDef
    dissection: FixedDissection
    legality: SiteLegality
    columns_by_tile: dict[TileKey, list[SlackColumn]]
    density_backend: str = "direct"
    phase_seconds: dict[str, float] = field(default_factory=dict)
    lut_stats: dict[str, int] = field(default_factory=dict)
    _density: DensityMap | None = field(default=None, repr=False)
    _costs: dict[bool, dict[TileKey, list[ColumnCosts]]] = field(
        default_factory=dict, repr=False
    )
    _budgets: dict[tuple, dict[TileKey, int]] = field(default_factory=dict, repr=False)
    _lut_caches: dict[bool, LUTCache] = field(default_factory=dict, repr=False)
    _payload_columns: dict[bool, dict[TileKey, tuple["PayloadColumnCosts", ...]]] = field(
        default_factory=dict, repr=False
    )
    _shared_stores: dict[bool, "SharedCostStore | None"] = field(
        default_factory=dict, repr=False
    )
    _tile_index: "GridBinIndex[TileKey] | None" = field(default=None, repr=False)

    #: Process-wide count of full preprocessing builds (see :func:`prepare`).
    build_count = 0

    @property
    def density(self) -> DensityMap:
        """The pre-fill density map, built on first access only.

        Runs that receive an explicit budget override never touch this,
        so they skip the density scan entirely.
        """
        if self._density is None:
            t0 = time.perf_counter()
            self._density = DensityMap.from_layout(
                self.dissection, self.layout, self.layer,
                backend=self.density_backend,
            )
            self.phase_seconds["density"] = time.perf_counter() - t0
        return self._density

    def tile_index(self) -> GridBinIndex[TileKey]:
        """Spatial index of every tile rect, built on first access.

        The incremental-fill dirty-window pass queries it to find the
        tiles an ECO window touches
        (:meth:`repro.pilfill.incremental.SolutionCache.invalidate_window`)
        without scanning the whole dissection. Binned at the tile side,
        so a query touches a handful of bins.
        """
        if self._tile_index is None:
            index: GridBinIndex[TileKey] = GridBinIndex(self.dissection.tile_size)
            index.insert_many((tile.rect, tile.key) for tile in self.dissection.tiles())
            self._tile_index = index
        return self._tile_index

    def capacity(self, margin: float = 1.0) -> dict[TileKey, int]:
        """Placeable capacity per tile (column sites × headroom margin)."""
        return {
            key: int(sum(c.capacity for c in cols) * margin)
            for key, cols in self.columns_by_tile.items()
        }

    def costs_for(
        self, weighted: bool, tracer: TracerLike | None = None
    ) -> dict[TileKey, list[ColumnCosts]]:
        """Per-tile cost tables under the given objective weighting.

        Built once per ``weighted`` flag and shared by every run; the
        tables are immutable so concurrent tile solvers may read them
        freely. LUT-cache hit/miss counts accumulate into ``lut_stats``.
        """
        cached = self._costs.get(weighted)
        if cached is not None:
            return cached
        trc = tracer if tracer is not None else NULL_TRACER
        t0 = time.perf_counter()
        with trc.span("prepare.costs", weighted=weighted):
            layer_proc = self.layout.stack.layer(self.layer)
            dbu = self.layout.stack.dbu_per_micron
            lut_cache = LUTCache(
                layer_proc.eps_r, layer_proc.thickness_um, self.fill_rules.fill_size / dbu
            )
            costs = {
                key: build_costs(cols, layer_proc, self.fill_rules, dbu, lut_cache, weighted)
                for key, cols in self.columns_by_tile.items()
            }
            for name, count in lut_cache.stats().items():
                self.lut_stats[name] = self.lut_stats.get(name, 0) + count
        self._costs[weighted] = costs
        # Kept so the shared-memory store can ship the LUT tables to pool
        # workers once instead of re-deriving them there.
        self._lut_caches[weighted] = lut_cache
        self.phase_seconds["costs"] = (
            self.phase_seconds.get("costs", 0.0) + time.perf_counter() - t0
        )
        return costs

    def costs_for_tiles(
        self,
        weighted: bool,
        keys: Sequence[TileKey],
        tracer: TracerLike | None = None,
    ) -> dict[TileKey, list[ColumnCosts]]:
        """Cost tables for just ``keys`` — the shard-scoped sibling of
        :meth:`costs_for`.

        When the full table set is already cached this returns a cheap
        subset view (no rebuild). Otherwise it builds only the requested
        tiles and — unlike :meth:`costs_for` — does *not* cache them on
        the instance: the sharded solve path owns the lifetime, holding
        one shard's tables at a time and releasing them before the next
        shard builds. One LUT cache per ``weighted`` flag is shared
        across calls, so shard-by-shard building reuses interpolations
        exactly like the global build (caching is value-transparent, so
        the tables are bit-identical either way). Tiles without slack
        columns are omitted, matching :meth:`costs_for`.
        """
        cached = self._costs.get(weighted)
        if cached is not None:
            return {key: cached[key] for key in keys if key in cached}
        trc = tracer if tracer is not None else NULL_TRACER
        t0 = time.perf_counter()
        with trc.span("prepare.costs", weighted=weighted, tiles=len(keys)):
            layer_proc = self.layout.stack.layer(self.layer)
            dbu = self.layout.stack.dbu_per_micron
            lut_cache = self._lut_caches.get(weighted)
            if lut_cache is None:
                lut_cache = LUTCache(
                    layer_proc.eps_r,
                    layer_proc.thickness_um,
                    self.fill_rules.fill_size / dbu,
                )
                self._lut_caches[weighted] = lut_cache
            stats_before = dict(lut_cache.stats())
            costs = {
                key: build_costs(
                    self.columns_by_tile[key], layer_proc, self.fill_rules,
                    dbu, lut_cache, weighted,
                )
                for key in keys
                if key in self.columns_by_tile
            }
            for name, count in lut_cache.stats().items():
                delta = count - stats_before.get(name, 0)
                self.lut_stats[name] = self.lut_stats.get(name, 0) + delta
        self.phase_seconds["costs"] = (
            self.phase_seconds.get("costs", 0.0) + time.perf_counter() - t0
        )
        return costs

    def store_for_costs(
        self,
        weighted: bool,
        costs_by_tile: Mapping[TileKey, list[ColumnCosts]],
    ) -> "SharedCostStore | None":
        """A caller-owned shared-memory store for a subset of tiles.

        The sharded dispatch path builds one per shard and must
        ``close()`` it when the shard completes — unlike
        :meth:`shared_store_for`, nothing is cached on the instance, so
        an unclosed store would linger until garbage collection.
        Returns ``None`` where shared memory is unavailable (callers
        fall back to inline payload columns).
        """
        from repro.pilfill.executor import make_shared_store
        from repro.pilfill.parallel import payload_columns

        columns = {key: payload_columns(cc) for key, cc in costs_by_tile.items()}
        lut_cache = self._lut_caches.get(weighted)
        return make_shared_store(
            columns, lut_cache.snapshot() if lut_cache is not None else None
        )

    def payload_columns_for(
        self, weighted: bool, tracer: TracerLike | None = None
    ) -> dict[TileKey, tuple["PayloadColumnCosts", ...]]:
        """Picklable per-tile column tables, converted once per
        ``weighted`` flag and shared by every process-backend run."""
        cached = self._payload_columns.get(weighted)
        if cached is not None:
            return cached
        from repro.pilfill.parallel import payload_columns

        costs = self.costs_for(weighted, tracer=tracer)
        converted = {key: payload_columns(cc) for key, cc in costs.items()}
        self._payload_columns[weighted] = converted
        return converted

    def shared_store_for(
        self, weighted: bool, tracer: TracerLike | None = None
    ) -> "SharedCostStore | None":
        """The shared-memory cost/LUT store for ``weighted`` runs.

        Built once per flag and reused by every ``engine.run()`` on this
        instance — the persistent pool's workers resolve it by content
        hash, so consecutive runs (even interleaved with runs of another
        prepared instance) always see the right tables. A cached store
        whose block was released early (a broken-pool recovery unlinks
        eagerly — see :func:`~repro.pilfill.executor.release_store`) is
        rebuilt rather than handed out dead. Returns ``None`` where
        shared memory is unavailable; callers then fall back to inline
        per-payload columns.
        """
        if weighted in self._shared_stores:
            cached = self._shared_stores[weighted]
            if cached is None or not cached.closed:
                return cached
            del self._shared_stores[weighted]
        from repro.pilfill.executor import make_shared_store

        columns = self.payload_columns_for(weighted, tracer=tracer)
        lut_cache = self._lut_caches.get(weighted)
        store = make_shared_store(
            columns, lut_cache.snapshot() if lut_cache is not None else None
        )
        self._shared_stores[weighted] = store
        return store

    def close(self) -> None:
        """Release the shared-memory stores (idempotent; also guaranteed
        by per-store finalizers when the instance is garbage-collected)."""
        for store in self._shared_stores.values():
            if store is not None:
                store.close()
        self._shared_stores.clear()

    def budget_for(
        self, config: "EngineConfig", tracer: TracerLike | None = None
    ) -> dict[TileKey, int]:
        """Per-tile feature budgets from the density-control baseline.

        Cached by the budget-relevant knobs (mode, target, seed, margin),
        so methods sharing a configuration derive the budget once.
        """
        self.check_config(config)
        key = (
            config.budget_mode,
            config.target_density,
            config.seed,
            config.capacity_margin,
        )
        cached = self._budgets.get(key)
        if cached is not None:
            return dict(cached)
        trc = tracer if tracer is not None else NULL_TRACER
        t0 = time.perf_counter()
        with trc.span("prepare.budget", mode=config.budget_mode):
            capacity = self.capacity(config.capacity_margin)
            target = config.target_density
            if target == "mean":
                target = float(self.density.window_density().mean())
            if config.budget_mode == "lp":
                budget = lp_minvar_budget(
                    self.density, capacity, self.fill_rules, target_density=target
                )
            elif config.budget_mode == "hybrid":
                budget = hybrid_budget(
                    self.density,
                    capacity,
                    self.fill_rules,
                    target_density=target,
                    seed=config.seed,
                )
            else:
                budget = montecarlo_budget(
                    self.density,
                    capacity,
                    self.fill_rules,
                    target_density=target,
                    seed=config.seed,
                )
        self._budgets[key] = budget
        self.phase_seconds["budget"] = (
            self.phase_seconds.get("budget", 0.0) + time.perf_counter() - t0
        )
        return dict(budget)

    def check_config(self, config: "EngineConfig") -> None:
        """Raise :class:`FillError` if ``config`` disagrees with the
        geometry this instance was prepared under."""
        if config.fill_rules != self.fill_rules:
            raise FillError("prepared instance was built with different fill rules")
        if config.density_rules != self.density_rules:
            raise FillError("prepared instance was built with different density rules")
        if config.column_def is not self.column_def:
            raise FillError(
                f"prepared instance uses column definition {self.column_def}, "
                f"config asks for {config.column_def}"
            )
        if config.density_backend != self.density_backend:
            raise FillError(
                f"prepared instance uses density backend {self.density_backend!r}, "
                f"config asks for {config.density_backend!r}"
            )

    def digest(self) -> str:
        """Content digest of the prepared state the solve phase consumes.

        Covers the geometry key (layer, rules, column definition), the
        dissection grid, the exact per-tile density bytes, and every
        slack column's full content — site rects, gap class, and both
        timing neighbors, serialized exactly like the incremental
        cache's :func:`~repro.pilfill.incremental.tile_digest`. Two
        instances digest equal iff every downstream budget and tile
        solve is bit-identical, which makes this the equivalence oracle
        for the streaming preprocessor: ``prepare_streaming`` over a DEF
        must digest equal to :func:`prepare` over the materialized
        layout. Forces the (lazy) density build on first call. The
        ``density_backend`` is deliberately excluded — it is a compute
        hint, and the FFT path's canonical rounding keeps the density
        bytes themselves identical.
        """
        from repro.pilfill.incremental import _neighbor_payload, _rect_payload, _sha256

        d = self.dissection
        rules = self.fill_rules
        density_rules = self.density_rules
        tile_area = self.density.tile_area
        columns: dict[str, list[dict[str, object]]] = {}
        for (ix, iy), cols in sorted(self.columns_by_tile.items()):
            columns[f"{ix},{iy}"] = [
                {
                    "col": column.col,
                    "sites": [_rect_payload(site) for site in column.sites],
                    "gap_um": column.gap_um,
                    "below": _neighbor_payload(column.below),
                    "above": _neighbor_payload(column.above),
                }
                for column in cols
            ]
        payload: dict[str, object] = {
            "layer": self.layer,
            "column_def": self.column_def.name,
            "fill_rules": [rules.fill_size, rules.fill_gap, rules.buffer_distance],
            "density_rules": [
                density_rules.window_size,
                density_rules.r,
                density_rules.min_density,
                density_rules.max_density,
            ],
            "die": _rect_payload(d.die),
            "grid": [d.nx, d.ny, d.tile_size],
            "tile_area": hashlib.sha256(
                np.ascontiguousarray(tile_area).tobytes()
            ).hexdigest(),
            "columns": columns,
        }
        return _sha256(payload)


def prepare(
    layout: RoutedLayout,
    layer: str,
    fill_rules: FillRules,
    density_rules: DensityRules,
    column_def: SlackColumnDef = SlackColumnDef.FULL_LAYOUT,
    tracer: TracerLike | None = None,
    density_backend: str = "direct",
) -> PreparedInstance:
    """Run the shared preprocessing once and capture it.

    Performs the dissection, legality indexing, and scan-line column
    extraction eagerly (timed under ``setup`` / ``scanline``); the density
    map, cost tables, and budgets are derived lazily on first use.
    ``tracer``, when given, records ``prepare.setup`` / ``prepare.scanline``
    spans around the eager phases.
    """
    if not layout.stack.has_layer(layer):
        raise FillError(f"layout stack has no layer {layer!r}")
    trc = tracer if tracer is not None else NULL_TRACER
    clock = time.perf_counter
    phase_seconds: dict[str, float] = {}

    t0 = clock()
    with trc.span("prepare.setup"):
        dissection = FixedDissection(layout.die, density_rules)
        legality = SiteLegality(layout, layer, fill_rules)
    phase_seconds["setup"] = clock() - t0

    t0 = clock()
    with trc.span("prepare.scanline") as span:
        columns_by_tile = extract_columns(
            layout, layer, dissection, legality, fill_rules, column_def
        )
        span.set("tiles", len(columns_by_tile))
    phase_seconds["scanline"] = clock() - t0

    PreparedInstance.build_count += 1
    return PreparedInstance(
        layout=layout,
        layer=layer,
        fill_rules=fill_rules,
        density_rules=density_rules,
        column_def=column_def,
        dissection=dissection,
        legality=legality,
        columns_by_tile=columns_by_tile,
        density_backend=density_backend,
        phase_seconds=phase_seconds,
    )


def prepare_streaming(
    source: "str | IO[str] | Iterable[str]",
    stack: ProcessStack,
    layer: str,
    fill_rules: FillRules,
    density_rules: DensityRules,
    column_def: SlackColumnDef = SlackColumnDef.FULL_LAYOUT,
    tracer: TracerLike | None = None,
    density_backend: str = "direct",
    banded: bool = False,
) -> PreparedInstance:
    """Build a :class:`PreparedInstance` straight from a DEF-lite source.

    The chip-scale entry point: nets are parsed, timed
    (:meth:`RCTree.build`), folded into the legality oracle, the density
    accumulator, and the scan-line sweep one at a time, then discarded —
    the full net list is never resident. The result :meth:`digests
    <PreparedInstance.digest>` equal to ``prepare(parse_def(text), ...)``
    *by construction*: both paths drive the same
    :class:`~repro.pilfill.scanline.IncrementalSweep` state machine over
    the same globally ordered event sequence, insert the same blockage
    rects, and accumulate the same per-tile clip lists in the same
    (file) order.

    ``banded=True`` declares the input *band-sorted* (nets emitted in
    ascending bounding-box y-low, as the chip-scale T3 emitter writes
    them) and unlocks incremental sweep feeding on horizontal
    FULL_LAYOUT runs: whenever a net arrives whose bounding-box y-low
    ``b`` exceeds the previous watermark, every pending line below ``b``
    is complete (later geometry lies at or above ``b``), so its gap
    blocks are closed and gridded immediately and their memory released.
    A net arriving *below* an already-fed watermark voids the
    declaration and raises :class:`FillError` — fail loud, never emit
    columns a late rect could have invalidated. The default
    ``banded=False`` accepts arbitrarily ordered input (typical
    ``write_def`` output is net-insertion order, not band order) by
    collecting sweep lines and sweeping once at EOF — same state
    machine, one feed. Vertical layers and Definitions I/II always take
    the collect-then-sweep path (their sweeps cross the banding axis);
    parsing, legality, and density still stream net-by-net either way.

    The returned instance carries a *shell* layout (die, stack, fills —
    no nets): everything :meth:`PILFillEngine.run` consumes lives in the
    prepared state, but post-hoc evaluation against the routed nets
    (``evaluate_impact``) needs the materialized layout. Per-net work
    (tree build, blockage insertion, clip accumulation, sweep feeds) is
    accounted to the ``scanline`` phase; the final per-tile union-area
    aggregation to ``density``, which is pre-built eagerly here.
    """
    if not stack.has_layer(layer):
        raise FillError(f"process stack has no layer {layer!r}")
    trc = tracer if tracer is not None else NULL_TRACER
    clock = time.perf_counter
    phase_seconds: dict[str, float] = {"setup": 0.0, "scanline": 0.0}

    horizontal = stack.layer(layer).direction == "h"
    dbu = stack.dbu_per_micron
    incremental = banded and horizontal and column_def is SlackColumnDef.FULL_LAYOUT

    dissection: FixedDissection | None = None
    legality: SiteLegality | None = None
    sweep: IncrementalSweep | None = None
    gridder: ColumnGridder | None = None
    pending: list[SweepLine] = []
    clips_by_tile: dict[TileKey, list[Rect]] = {}
    net_count = 0
    # Highest bbox-ylo at which lines were actually fed (and blocks
    # gridded): the commitment level the band-sorted contract protects.
    fed_watermark: int | None = None

    def _on_die(die: Rect) -> None:
        nonlocal dissection, legality, sweep, gridder
        t0 = clock()
        dissection = FixedDissection(die, density_rules)
        legality = SiteLegality.from_rects(die, layer, fill_rules, [])
        if incremental:
            sweep = IncrementalSweep(die, horizontal)
            gridder = ColumnGridder(layer, dissection, legality, fill_rules, horizontal, dbu)
        phase_seconds["setup"] += clock() - t0

    def _consume(net: Net, start_line: int) -> None:
        nonlocal net_count, fed_watermark
        if dissection is None or legality is None:
            raise ParseError(
                "DIEAREA must precede NETS for streaming preparation", start_line
            )
        t0 = clock()
        net_count += 1
        tree = RCTree.build(net, stack)
        for seg in net.segments:
            if seg.layer != layer:
                continue
            rect = seg.rect
            legality.add_blockage(rect)
            for tile in dissection.tiles_overlapping(rect):
                clipped = rect.intersection(tile.rect)
                if clipped is not None:
                    clips_by_tile.setdefault(tile.key, []).append(clipped)
        pending.extend(
            SweepLine(rect=line.segment.rect, timing=line)
            for line in tree.lines
            if line.segment.layer == layer and line.segment.is_horizontal == horizontal
        )
        if sweep is not None and gridder is not None:
            ylo = net_ylo(net)
            if fed_watermark is not None and ylo < fed_watermark:
                raise FillError(
                    f"net {net.name!r} (bbox y-low {ylo}) arrived below the fed "
                    f"sweep watermark {fed_watermark}; streamed input must be "
                    f"band-sorted — re-run with banded=False"
                )
            # This net's own lines sit at or above its bbox y-low, so
            # splitting pending at `ylo` after extending is still exact.
            ready = [line for line in pending if line.rect.ylo < ylo]
            if ready:
                pending[:] = [line for line in pending if line.rect.ylo >= ylo]
                gridder.grid(sweep.feed(ready))
                fed_watermark = ylo
        phase_seconds["scanline"] += clock() - t0

    with trc.span("prepare.stream") as span:
        shell = parse_def_streaming(
            source, stack, on_die=_on_die, on_net=_consume, keep_nets=False
        )
        assert dissection is not None and legality is not None

        t0 = clock()
        if sweep is not None and gridder is not None:
            if pending:
                gridder.grid(sweep.feed(pending))
            gridder.grid(sweep.finish())
            columns_by_tile = gridder.out
        else:
            columns_by_tile = extract_columns_from_lines(
                pending, horizontal, shell.die, dbu, layer, dissection, legality,
                fill_rules, column_def,
            )
        phase_seconds["scanline"] += clock() - t0

        t0 = clock()
        area = np.zeros((dissection.nx, dissection.ny), dtype=np.float64)
        for key, clips in clips_by_tile.items():
            area[key] = total_area(clips)
        density = DensityMap(dissection, area, backend=density_backend)
        phase_seconds["density"] = clock() - t0
        span.set("nets", net_count)
        span.set("tiles", len(columns_by_tile))

    PreparedInstance.build_count += 1
    return PreparedInstance(
        layout=shell,
        layer=layer,
        fill_rules=fill_rules,
        density_rules=density_rules,
        column_def=column_def,
        dissection=dissection,
        legality=legality,
        columns_by_tile=columns_by_tile,
        density_backend=density_backend,
        phase_seconds=phase_seconds,
        _density=density,
    )
