"""Per-tile method dispatch, shared by the engine and the process workers.

One tile's MDFC instance is fully described by its cost tables, the
feature budget, and (for the stochastic baseline) a tile-owned RNG —
nothing here touches the layout. Keeping the dispatch free of engine
state is what lets the process-pool backend ship a compact picklable
payload to a worker and get back the exact solution the in-process path
would have produced.

Solvers accept anything with the :class:`~repro.pilfill.costs.ColumnCosts`
duck type (``exact`` / ``linear`` tables, ``capacity``, and a ``column``
exposing neighbors and ``resistance_weight``); the engine passes real
``ColumnCosts``, the workers pass the reconstructed payload view.
"""

from __future__ import annotations

import random

from repro.errors import FillError
from repro.obs.trace import TracerLike
from repro.pilfill.costlike import TileCosts
from repro.pilfill.dp import allocate_dp, allocation_cost
from repro.pilfill.greedy import solve_tile_greedy, solve_tile_greedy_marginal
from repro.pilfill.ilp1 import solve_tile_ilp1
from repro.pilfill.ilp2 import solve_tile_ilp2
from repro.pilfill.solution import TileSolution


def solve_tile_normal(costs: TileCosts, budget: int, rng: random.Random) -> TileSolution:
    """The Normal baseline: timing-oblivious random spread over the tile's
    column sites (same site universe as the other methods so density
    control quality is identical — paper Section 6). The sampled site
    indices are recorded so the placement uses the exact sites that were
    drawn, not a column-prefix approximation of them."""
    slots = [(k, s) for k, cc in enumerate(costs) for s in range(cc.capacity)]
    chosen = rng.sample(slots, budget)
    counts = [0] * len(costs)
    picked: list[list[int]] = [[] for _ in costs]
    for k, s in chosen:
        counts[k] += 1
        picked[k].append(s)
    tables = [c.exact for c in costs]
    return TileSolution(
        counts=counts,
        model_objective_ps=allocation_cost(tables, counts),
        site_indices=tuple(tuple(sorted(p)) for p in picked),
    )


def solve_tile_method(
    costs: TileCosts,
    method: str,
    budget: int,
    weighted: bool,
    ilp_backend: str,
    rng: random.Random,
    time_limit: float | None = None,
    tracer: TracerLike | None = None,
) -> TileSolution:
    """Solve one tile with the named method (see ``engine.METHODS``).

    ``time_limit`` is a wall-clock deadline in seconds for this tile; only
    the ILP methods can spend unbounded time, so only they enforce it (the
    combinatorial methods finish in microseconds on per-tile instances).
    ``tracer``, when given, is handed to the ILP backends so their solver
    spans nest under the caller's rung span.
    """
    if method == "ilp1":
        return solve_tile_ilp1(
            costs, budget, weighted, backend=ilp_backend, time_limit=time_limit, tracer=tracer
        )
    if method == "ilp2":
        return solve_tile_ilp2(
            costs, budget, backend=ilp_backend, time_limit=time_limit, tracer=tracer
        )
    if method == "greedy":
        return solve_tile_greedy(costs, budget)
    if method == "greedy_marginal":
        return solve_tile_greedy_marginal(costs, budget)
    if method == "dp":
        tables = [c.exact for c in costs]
        counts = allocate_dp(tables, budget)
        return TileSolution(counts=counts, model_objective_ps=allocation_cost(tables, counts))
    if method == "normal":
        return solve_tile_normal(costs, budget, rng)
    raise FillError(f"unknown method {method!r}")


def trim_to(costs: TileCosts, solution: TileSolution, want: int) -> TileSolution:
    """Drop the most expensive granted features until only ``want``
    remain (marginals are convex, so trimming from the top is optimal)."""
    counts = list(solution.counts)
    spent = solution.model_objective_ps
    while sum(counts) > want:
        worst_k, worst_marginal = -1, -1.0
        for k, cc in enumerate(costs):
            if counts[k] > 0:
                marginal = cc.exact[counts[k]] - cc.exact[counts[k] - 1]
                if marginal > worst_marginal:
                    worst_k, worst_marginal = k, marginal
        if worst_k < 0:
            # No column has a positive count yet sum(counts) > want:
            # the solution and cost tables disagree (e.g. counts longer
            # than costs). Refuse rather than corrupt counts[-1].
            raise FillError(
                "cannot trim solution: no column with a positive count "
                f"(counts={counts}, want={want})"
            )
        counts[worst_k] -= 1
        spent -= worst_marginal
    return TileSolution(counts=counts, model_objective_ps=spent)
