"""End-to-end PIL-Fill engine (paper Sections 5-6 flow).

Pipeline per layer:

1. build the fixed r-dissection and (lazily) the pre-fill density map,
2. compute per-tile fill budgets with the density-control baseline
   (Min-Var LP or Monte-Carlo, ref [3]),
3. run the scan-line to extract slack columns (definition I/II/III),
4. clamp budgets to column capacity (the definition-I/II shortfall the
   paper describes surfaces here),
5. solve each tile's MDFC instance with the chosen method and place the
   features into column sites,
6. return the placement plus bookkeeping (budgets, per-tile solutions,
   phase and per-tile runtimes).

Steps 1 and 3 (plus cost-table construction) depend only on the layout
geometry and rules, not on the method: they live in a
:class:`~repro.pilfill.prepare.PreparedInstance` that is built once and
shared across runs — pass one to the constructor to reuse it (the
experiment harness does this so every method of a configuration shares a
single preprocessing pass). Step 5 is embarrassingly parallel across
tiles; ``EngineConfig.workers`` fans it out over a worker pool with a
deterministic merge, so ``workers=N`` output is bit-identical to serial.
``EngineConfig.parallel_backend`` picks the pool flavor: ``"thread"``
(shared read-only cost tables; right for GIL-releasing numeric solvers)
or ``"process"`` (compact picklable tile payloads shipped to worker
processes; right for the pure-Python methods, which hold the GIL).

The engine never mutates the input layout; callers evaluate placements
with :func:`repro.pilfill.evaluate.evaluate_impact` and may attach the
features via ``layout.add_fill`` afterwards.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.dissection.density import DENSITY_BACKENDS
from repro.errors import FillError, SolveTimeoutError
from repro.layout.layout import FillFeature, RoutedLayout
from repro.obs.metrics import NULL_METRICS, Metrics, MetricsLike
from repro.obs.telemetry import Telemetry
from repro.obs.trace import NULL_TRACER, Tracer, TracerLike
from repro.pilfill.columns import SlackColumnDef
from repro.pilfill.costs import ColumnCosts
from repro.pilfill.incremental import (
    SolutionCache,
    cache_eligible,
    run_context_digest,
    tile_digest,
)
from repro.pilfill.budgeted import (
    build_cap_tables,
    solve_tile_budgeted_greedy,
    solve_tile_budgeted_ilp,
)
from repro.pilfill.methods import solve_tile_method, trim_to
from repro.pilfill.mvdc import derive_tile_delay_budgets, solve_tile_mvdc
from repro.pilfill.parallel import (
    PARALLEL_BACKENDS,
    TileOutcome,
    dispatch_tile_payloads,
    dispatch_tiles,
    make_tile_payload,
    tile_rng,
)
from repro.pilfill.prepare import PreparedInstance, prepare
from repro.pilfill.robust import (
    RobustSolve,
    SolveReport,
    effective_time_limit,
    failed_report,
    solve_tile_robust,
)
from repro.pilfill.solution import TileSolution
from repro.tech.rules import DensityRules, FillRules
from repro.testing import faults as fault_hooks
from repro.testing.faults import FaultSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.pilfill.executor import SharedCostStore, TileBatch

#: The method names the engine accepts.
METHODS = ("normal", "ilp1", "ilp2", "greedy", "greedy_marginal", "dp")

#: Phase keys every run reports (per-tile solve times live in
#: ``FillResult.tile_seconds``).
PHASES = ("setup", "scanline", "density", "costs", "budget", "solve")


@dataclass
class EngineConfig:
    """Configuration of one PIL-Fill run.

    Attributes:
        fill_rules: fill feature size / gap / buffer distance.
        density_rules: window size, dissection value r, density bounds.
        method: one of :data:`METHODS`.
        weighted: sink-weighted (True, Table 2) or per-segment (False,
            Table 1) objective.
        column_def: slack-column definition (paper §5.1); III by default.
        density_backend: how window densities are aggregated —
            ``"direct"`` (summed-area table, the scalar oracle) or
            ``"fft"`` (one FFT convolution pass; bit-identical on the
            integer-valued tile-area maps real layouts produce, and the
            only comfortable choice at chip scale). Excluded from the
            incremental-cache :func:`run_context_digest` because it
            never changes budgets or placements.
        budget_mode: ``"lp"`` (Min-Var LP), ``"montecarlo"`` (randomized
            greedy), or ``"hybrid"`` (LP first, Monte-Carlo top-up of the
            rounding shortfall — the iterated back-end of ref [3]).
        target_density: density floor the budget step aims for. A float is
            used directly; ``"mean"`` resolves to the pre-fill mean window
            density; None maximizes uniformity with no cap (can consume all
            slack, leaving the methods little freedom).
        capacity_margin: fraction of each tile's slack capacity the budget
            step may prescribe (≤ 1). Real flows keep headroom below 100%
            utilization; for the reproduction it also guarantees every
            budgeted tile retains site choice, so methods stay
            distinguishable at fine dissections.
        backend: ILP backend for the ILP methods.
        seed: seed for the Normal placement / Monte-Carlo budget. Each
            tile derives its own RNG from ``(seed, tile key)``, so
            stochastic methods are reproducible regardless of tile
            iteration order or worker count.
        workers: per-tile solver parallelism. 1 (default) solves tiles
            serially; N > 1 fans tiles out over N workers with a
            deterministic merge that is bit-identical to the serial path.
        parallel_backend: ``"thread"`` (default) or ``"process"``. The
            process backend ships tiles as compact picklable payloads
            (budget + seed + deadlines, no layout objects) in chunked
            batches on a *persistent* pool, with the cost tables and LUT
            arrays riding a shared-memory store that crosses the pickle
            boundary once per worker instead of once per tile; results
            are bit-identical to serial for every method.
        batch_tiles: tiles per process-pool submit. ``None`` (default)
            auto-sizes to a few batches per worker, capped at 64 —
            dozens of tiles per future instead of one, so dispatch
            overhead stops swamping the tiny per-tile solves. Chunking
            never affects results.
        persistent_pool: True (default) → process pools persist across
            ``engine.run()`` calls (created lazily per worker count;
            release explicitly via
            :func:`repro.pilfill.executor.shutdown_pools`). False →
            a throwaway pool per dispatch, the pre-persistence behavior.
        tile_deadline_s: wall-clock deadline per tile solve (seconds).
            An ILP attempt exceeding it surfaces ``TIME_LIMIT`` and the
            tile degrades down the fallback chain (ILP-II → ILP-I →
            Greedy). ``None`` (default) → unlimited.
        run_deadline_s: wall-clock deadline for the whole solve phase.
            Each tile's effective limit is the smaller of the tile
            deadline and the remaining run time; tiles starting after
            the deadline are recorded as failed (zero features), never
            solved. ``None`` (default) → unlimited.
        fallback: True (default) → robust solving: per-tile failures
            degrade to cheaper methods, crashed workers are retried once
            with the same derived RNG, and the sweep always completes,
            with every substitution recorded in
            ``FillResult.solve_reports``. False → strict mode: the first
            failure propagates (previous behavior). Successful solves
            are identical either way.
        fault_spec: deterministic fault injection for tests (see
            :mod:`repro.testing.faults`); ``None`` in production.
        telemetry: True → record tracing spans and metrics for the run
            (see :mod:`repro.obs`) and attach them to the result for
            ``FillResult.to_report()``. False (default) → the no-op fast
            path; solver results are bit-identical either way.
        solution_cache: content-addressed tile-solution cache for
            incremental ECO re-fill (see
            :mod:`repro.pilfill.incremental`). Tiles whose solve inputs
            hash to a cached entry are merged from the cache and never
            dispatched (chunked process batches shrink accordingly);
            misses are solved normally and recorded. Cached results are
            bit-identical to cold solves by construction. ``None``
            (default) → no caching. Ignored (with zeroed counters) when
            a tile/run deadline makes outcomes wall-clock-dependent.
        shards: partition the solve phase into this many row-band shards
            along the dissection's window cut lines (see
            :mod:`repro.pilfill.shard`). Each shard builds only its own
            cost tables and shared-memory store, so peak memory holds
            one band instead of the grid; all shards share one warm
            persistent pool, and the merge is bit-identical to the
            unsharded run — sharding is a scheduling knob, excluded from
            :func:`~repro.pilfill.incremental.run_context_digest` like
            ``workers``. 1 (default) → the single-pass path. Applies to
            :meth:`PILFillEngine.run` only (the MVDC and budgeted
            variants ignore it).
    """

    fill_rules: FillRules
    density_rules: DensityRules
    method: str = "ilp2"
    weighted: bool = True
    column_def: SlackColumnDef = SlackColumnDef.FULL_LAYOUT
    density_backend: str = "direct"
    budget_mode: str = "lp"
    target_density: float | str | None = "mean"
    capacity_margin: float = 0.7
    backend: str = "auto"
    seed: int = 0
    workers: int = 1
    parallel_backend: str = "thread"
    batch_tiles: int | None = None
    persistent_pool: bool = True
    tile_deadline_s: float | None = None
    run_deadline_s: float | None = None
    fallback: bool = True
    fault_spec: FaultSpec | None = None
    telemetry: bool = False
    solution_cache: SolutionCache | None = None
    shards: int = 1

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise FillError(f"unknown method {self.method!r}; expected one of {METHODS}")
        if self.density_backend not in DENSITY_BACKENDS:
            raise FillError(
                f"unknown density backend {self.density_backend!r}; "
                f"expected one of {DENSITY_BACKENDS}"
            )
        if self.budget_mode not in ("lp", "montecarlo", "hybrid"):
            raise FillError(f"unknown budget mode {self.budget_mode!r}")
        if isinstance(self.target_density, str) and self.target_density != "mean":
            raise FillError(
                f"target_density must be a float, None, or 'mean'; got {self.target_density!r}"
            )
        if not 0.0 < self.capacity_margin <= 1.0:
            raise FillError(
                f"capacity_margin must be in (0, 1], got {self.capacity_margin}"
            )
        if self.workers < 1:
            raise FillError(f"workers must be >= 1, got {self.workers}")
        if self.shards < 1:
            raise FillError(f"shards must be >= 1, got {self.shards}")
        if self.batch_tiles is not None and self.batch_tiles < 1:
            raise FillError(f"batch_tiles must be >= 1, got {self.batch_tiles}")
        if self.parallel_backend not in PARALLEL_BACKENDS:
            raise FillError(
                f"unknown parallel backend {self.parallel_backend!r}; "
                f"expected one of {PARALLEL_BACKENDS}"
            )
        for name in ("tile_deadline_s", "run_deadline_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise FillError(f"{name} must be positive, got {value}")


@dataclass
class FillResult:
    """Outcome of one engine run.

    ``phase_seconds`` covers every phase in :data:`PHASES`; preprocessing
    phases report the (once-paid) cost recorded on the shared
    :class:`PreparedInstance`, so a run that reuses preparation still
    shows what that preparation cost. ``tile_seconds`` breaks the solve
    phase down per tile. ``telemetry`` holds the run's tracer + metrics
    when ``EngineConfig.telemetry`` was set (``None`` otherwise).
    ``cache_stats`` holds this run's solution-cache counter deltas
    (hits/misses/stores/invalidated) when a cache was active, ``None``
    otherwise.
    """

    features: list[FillFeature] = field(default_factory=list)
    requested_budget: dict[tuple[int, int], int] = field(default_factory=dict)
    effective_budget: dict[tuple[int, int], int] = field(default_factory=dict)
    tile_solutions: dict[tuple[int, int], TileSolution] = field(default_factory=dict)
    model_objective_ps: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    tile_seconds: dict[tuple[int, int], float] = field(default_factory=dict)
    solve_reports: dict[tuple[int, int], SolveReport] = field(default_factory=dict)
    telemetry: Telemetry | None = None
    cache_stats: dict[str, int] | None = None

    def to_report(self, config: EngineConfig | None = None) -> dict[str, object]:
        """Export the run as a ``pilfill-run-report/v1`` JSON-ready dict
        (see :mod:`repro.obs.report`); ``config`` adds the configuration
        section when given."""
        from repro.obs.report import run_report

        return run_report(self, config)

    @property
    def total_features(self) -> int:
        return len(self.features)

    @property
    def degraded_tiles(self) -> list[tuple[int, int]]:
        """Tiles solved by a cheaper method than requested (sorted)."""
        return sorted(k for k, r in self.solve_reports.items() if r.degraded)

    @property
    def failed_tiles(self) -> list[tuple[int, int]]:
        """Tiles where every method/attempt failed — zero features placed
        there, the rest of the sweep unaffected (sorted)."""
        return sorted(k for k, r in self.solve_reports.items() if r.failed)

    @property
    def retried_tiles(self) -> list[tuple[int, int]]:
        """Tiles whose outcome needed at least one dispatcher retry."""
        return sorted(k for k, r in self.solve_reports.items() if r.retries > 0)

    @property
    def clean(self) -> bool:
        """True when no tile degraded, failed, or needed a retry."""
        return not any(
            r.degraded or r.failed or r.retries > 0 for r in self.solve_reports.values()
        )

    @property
    def shortfall(self) -> int:
        """Features the density step asked for that no slack column could
        hold (the paper's definition-I/II weakness)."""
        return sum(self.requested_budget.values()) - sum(self.effective_budget.values())

    @property
    def solve_seconds(self) -> float:
        """Time in the per-tile optimization phase (the paper's CPU
        column measures the method, not the shared preprocessing)."""
        return self.phase_seconds.get("solve", 0.0)


class PILFillEngine:
    """Runs the full PIL-Fill flow on one layer of a layout.

    Args:
        layout: the routed design (never mutated).
        layer: routing layer to fill.
        config: run configuration.
        prepared: shared preprocessing to reuse. When omitted, it is
            built on first use (and exposed as :attr:`prepared` so a
            caller can hand it to further engines). A prepared instance
            whose geometry keys disagree with ``config`` is rejected.
    """

    def __init__(
        self,
        layout: RoutedLayout,
        layer: str,
        config: EngineConfig,
        prepared: PreparedInstance | None = None,
    ):
        if not layout.stack.has_layer(layer):
            raise FillError(f"layout stack has no layer {layer!r}")
        if prepared is not None:
            if prepared.layout is not layout or prepared.layer != layer:
                raise FillError("prepared instance belongs to a different layout/layer")
            prepared.check_config(config)
        self.layout = layout
        self.layer = layer
        self.config = config
        self._prepared = prepared

    @property
    def prepared(self) -> PreparedInstance:
        """The shared preprocessing, building it on first access."""
        if self._prepared is None:
            self._prepared = self.prepare()
        return self._prepared

    def prepare(self, tracer: TracerLike | None = None) -> PreparedInstance:
        """Build a fresh :class:`PreparedInstance` for this engine's key."""
        cfg = self.config
        return prepare(
            self.layout, self.layer, cfg.fill_rules, cfg.density_rules, cfg.column_def,
            tracer=tracer, density_backend=cfg.density_backend,
        )

    def _prepared_traced(self, tracer: TracerLike) -> PreparedInstance:
        """Like :attr:`prepared`, but a first-time build records spans."""
        if self._prepared is None:
            self._prepared = self.prepare(tracer=tracer)
        return self._prepared

    def _finish_phases(self, result: FillResult, solve_seconds: float) -> None:
        """Fill ``phase_seconds`` from the shared preparation + this solve."""
        for phase in PHASES:
            result.phase_seconds[phase] = self.prepared.phase_seconds.get(phase, 0.0)
        result.phase_seconds["solve"] = solve_seconds

    def _place(self, costs: list[ColumnCosts], solution: TileSolution,
               features: list[FillFeature]) -> None:
        """Append the solution's placements (explicit sampled sites when
        the method recorded them, column-prefix sites otherwise)."""
        for k, cc in enumerate(costs):
            for s in solution.sites_for(k):
                features.append(FillFeature(layer=self.layer, rect=cc.column.sites[s]))

    def run(self, budget: dict[tuple[int, int], int] | None = None) -> FillResult:
        """Execute the flow. ``budget`` overrides the density step when
        given (used to hold density control identical across methods);
        the override also skips building the density map entirely.

        With ``config.shards > 1`` the solve phase runs shard by shard
        (:func:`~repro.pilfill.shard.run_sharded`) — bounded peak memory,
        bit-identical results."""
        cfg = self.config
        if cfg.shards > 1:
            from repro.pilfill.shard import run_sharded

            return run_sharded(self, budget=budget)
        telemetry = Telemetry() if cfg.telemetry else None
        tracer: TracerLike = telemetry.tracer if telemetry is not None else NULL_TRACER
        metrics: MetricsLike = telemetry.metrics if telemetry is not None else NULL_METRICS
        prep = self._prepared_traced(tracer)
        result = FillResult(telemetry=telemetry)

        with tracer.span(
            "engine.run", method=cfg.method, backend=cfg.backend,
            workers=cfg.workers, parallel_backend=cfg.parallel_backend,
        ):
            if budget is None:
                budget = prep.budget_for(cfg, tracer=tracer)
            result.requested_budget = dict(budget)

            t0 = time.perf_counter()
            costs_by_tile = prep.costs_for(cfg.weighted, tracer=tracer)

            solve_keys = []
            for tile in prep.dissection.tiles():
                want = budget.get(tile.key, 0)
                capacity = sum(c.capacity for c in costs_by_tile.get(tile.key, []))
                effective = min(want, capacity)
                result.effective_budget[tile.key] = effective
                if effective > 0:
                    solve_keys.append(tile.key)

            effective_budget = result.effective_budget
            run_deadline = self._run_deadline()

            # Incremental re-fill: look every tile up by its content
            # digest first. Hits become ready-made outcomes; only misses
            # reach a dispatcher, so chunked batches shrink accordingly
            # and an all-hit run never touches a pool.
            cache = (
                cfg.solution_cache
                if cfg.solution_cache is not None and cache_eligible(cfg)
                else None
            )
            cached_outcomes: dict[tuple[int, int], TileOutcome] = {}
            digests: dict[tuple[int, int], str] = {}
            if cache is None:
                dispatch_keys = list(solve_keys)
                stats_before: dict[str, int] = {}
            else:
                stats_before = cache.stats()
                context = run_context_digest(cfg, self.layer)
                dispatch_keys = []
                for key in solve_keys:
                    digest = tile_digest(
                        context, key, costs_by_tile[key], effective_budget[key]
                    )
                    digests[key] = digest
                    hit = cache.lookup(digest)
                    if hit is None:
                        dispatch_keys.append(key)
                    else:
                        solution, report = hit
                        cached_outcomes[key] = TileOutcome(
                            key=key, value=solution, seconds=0.0, report=report
                        )

            with tracer.span(
                "solve", tiles=len(solve_keys), cached=len(cached_outcomes)
            ):
                store = (
                    self._shared_store(tracer)
                    if cfg.parallel_backend == "process"
                    else None
                )
                outcomes = self._dispatch_solves(
                    dispatch_keys, costs_by_tile, effective_budget,
                    run_deadline, store, tracer, metrics,
                )
                for key in solve_keys:
                    outcome = cached_outcomes[key] if key in cached_outcomes else outcomes[key]
                    self._merge_outcome(
                        result, key, outcome, costs_by_tile[key],
                        tracer=tracer, metrics=metrics,
                    )
            if cache is not None:
                # Record only non-failed fresh solves: failures must
                # re-run (deterministically) rather than replay, and the
                # stored report keeps the priming run's retry history so
                # a warm merge reproduces the cold report bit-for-bit.
                for key in dispatch_keys:
                    if not outcomes[key].failed:
                        cache.record(
                            digests[key],
                            result.tile_solutions[key],
                            result.solve_reports[key],
                        )
                cache.remember_run(digests)
                stats_after = cache.stats()
                result.cache_stats = {
                    name: stats_after[name] - stats_before.get(name, 0)
                    for name in stats_after
                }
                for name, delta in result.cache_stats.items():
                    metrics.count(f"cache.{name}", delta)
            self._finish_phases(result, time.perf_counter() - t0)
            metrics.count("features.placed", result.total_features)
            for name, hits in prep.lut_stats.items():
                metrics.count(f"lut.{name}", hits)
            for phase, seconds in result.phase_seconds.items():
                metrics.observe(f"phase.{phase}.seconds", seconds)
        return result

    def _dispatch_solves(
        self,
        dispatch_keys: list[tuple[int, int]],
        costs_by_tile: dict[tuple[int, int], list[ColumnCosts]],
        effective_budget: Mapping[tuple[int, int], int],
        run_deadline: float | None,
        store: "SharedCostStore | None",
        tracer: TracerLike = NULL_TRACER,
        metrics: MetricsLike = NULL_METRICS,
        batch_solver: "Callable[[TileBatch], list[TileOutcome]] | None" = None,
    ) -> dict[tuple[int, int], TileOutcome]:
        """Solve ``dispatch_keys`` on the configured backend.

        The shared dispatch core of :meth:`run` and the sharded path
        (:func:`~repro.pilfill.shard.run_sharded`): builds payloads for
        the process backend (columns inline only when ``store`` is
        ``None``) or the in-process solve closures for thread/serial,
        and returns one :class:`TileOutcome` per key. ``store`` must be
        scoped by the caller — the whole-grid store for unsharded runs,
        a shard-scoped one (closed by the caller afterwards) for sharded
        runs. ``batch_solver`` overrides the pool's batch entry (the
        sharded path submits
        :func:`~repro.pilfill.shard.solve_shard_batch`).
        """
        cfg = self.config
        if cfg.parallel_backend == "process":
            payloads = [
                make_tile_payload(
                    key,
                    costs_by_tile[key],
                    effective_budget[key],
                    method=cfg.method,
                    weighted=cfg.weighted,
                    ilp_backend=cfg.backend,
                    seed=cfg.seed,
                    tile_deadline_s=cfg.tile_deadline_s,
                    run_deadline=run_deadline,
                    fault_spec=cfg.fault_spec,
                    fallback=cfg.fallback,
                    telemetry=cfg.telemetry,
                    inline_columns=store is None,
                )
                for key in dispatch_keys
            ]
            return dispatch_tile_payloads(
                payloads,
                workers=cfg.workers,
                isolate=cfg.fallback,
                store=store.handle if store is not None else None,
                batch_tiles=cfg.batch_tiles,
                persistent=cfg.persistent_pool,
                tracer=tracer,
                metrics=metrics,
                batch_solver=batch_solver,
            )
        if cfg.fallback:
            def solve_one(key: tuple[int, int], attempt: int) -> RobustSolve:
                # Per-tile tracer/metrics: single-owner, so the
                # thread pool needs no locks; the merge loop
                # absorbs them into the run-level telemetry.
                tile_tracer = Tracer() if cfg.telemetry else None
                tile_metrics = Metrics() if cfg.telemetry else None
                robust = solve_tile_robust(
                    costs_by_tile[key],
                    cfg.method,
                    effective_budget[key],
                    cfg.weighted,
                    cfg.backend,
                    tile_rng(cfg.seed, key),
                    key=key,
                    tile_deadline_s=cfg.tile_deadline_s,
                    run_deadline=run_deadline,
                    fault_spec=cfg.fault_spec,
                    attempt=attempt,
                    tracer=tile_tracer,
                    metrics=tile_metrics,
                )
                if tile_tracer is None:
                    return robust
                return dataclasses.replace(
                    robust,
                    spans=tile_tracer.records(),
                    metrics=tile_metrics.snapshot() if tile_metrics else None,
                )

            return dispatch_tiles(
                dispatch_keys, solve_one, workers=cfg.workers, isolate=cfg.fallback
            )

        def solve_strict(key: tuple[int, int], attempt: int) -> TileSolution:
            fault_hooks.inject(key, cfg.method, attempt, cfg.fault_spec)
            return self._solve_tile(
                costs_by_tile[key],
                effective_budget[key],
                tile_rng(cfg.seed, key),
                time_limit=effective_time_limit(
                    cfg.tile_deadline_s, run_deadline
                ),
            )

        return dispatch_tiles(
            dispatch_keys, solve_strict, workers=cfg.workers, isolate=cfg.fallback
        )

    def _shared_store(self, tracer: TracerLike = NULL_TRACER) -> "SharedCostStore | None":
        """The shared-memory cost store backing process-pool payloads.

        ``None`` when the run is effectively serial (``workers=1``
        hydrates in-process, so a store buys nothing) or when the
        platform offers no shared memory (payloads then carry their
        columns inline — slower dispatch, identical results).
        """
        if self.config.workers <= 1:
            return None
        return self.prepared.shared_store_for(self.config.weighted, tracer=tracer)

    def _run_deadline(self) -> float | None:
        """Absolute epoch the solve phase must finish by (``time.time()``
        based so worker processes share the same clock)."""
        if self.config.run_deadline_s is None:
            return None
        return time.time() + self.config.run_deadline_s

    def _merge_outcome(
        self,
        result: FillResult,
        key: tuple[int, int],
        outcome: TileOutcome,
        costs: list[ColumnCosts],
        tracer: TracerLike = NULL_TRACER,
        metrics: MetricsLike = NULL_METRICS,
        *,
        placed: list[FillFeature] | None = None,
        n_columns: int | None = None,
    ) -> None:
        """Fold one tile's outcome into the result: place its features,
        record timings and the solve report, absorb the tile's telemetry
        buffer, and turn a failed tile into an explicit empty solution
        (zero features) rather than a crash.

        Every solved tile gets a report — including the strict
        (``fallback=False``) path, which produces no robust-layer report:
        an ``ok`` report is synthesized there so ``FillResult.clean`` is
        grounded in evidence rather than vacuously true.

        The sharded path releases each shard's cost tables before this
        global-order merge runs, so it pre-places features while the
        tables are alive and hands them in via ``placed`` (with
        ``n_columns`` sizing a failed tile's empty solution); ``costs``
        is then unused and may be empty.
        """
        tracer.absorb(outcome.spans)
        metrics.merge(outcome.metrics)
        if outcome.failed:
            width = n_columns if n_columns is not None else len(costs)
            solution = TileSolution(counts=[0] * width)
            result.solve_reports[key] = failed_report(
                key, self.config.method, outcome.retries, outcome.error,
                prior_errors=outcome.error_chain,
            )
            metrics.count("tiles.failed")
        else:
            solution = outcome.value
            report = outcome.report
            if report is None:
                report = SolveReport(
                    key=key,
                    requested_method=self.config.method,
                    used_method=self.config.method,
                    retries=outcome.retries,
                )
            result.solve_reports[key] = report
            metrics.count("tiles.solved")
            if report.degraded:
                metrics.count("tiles.degraded")
        if outcome.retries > 0:
            metrics.count("tiles.retried")
        metrics.observe("tile.seconds", outcome.seconds)
        result.tile_solutions[key] = solution
        result.tile_seconds[key] = outcome.seconds
        result.model_objective_ps += solution.model_objective_ps
        if placed is not None:
            result.features.extend(placed)
        else:
            self._place(costs, solution, result.features)

    def run_mvdc(self, slack_fraction: float = 0.25) -> FillResult:
        """Run the MVDC (minimum variation with delay constraint) variant
        — the formulation the paper mentions in footnote ‡ but does not
        develop.

        Per tile, the density step's prescription becomes a *ceiling*
        rather than an obligation: the solver packs as many features as a
        per-tile delay budget allows (derived as ``slack_fraction`` of the
        worst-case impact of the prescribed count). Tiles with generous
        free space still fill fully; tiles where every site is expensive
        stop early — trading density uniformity for timing safety.
        """
        cfg = self.config
        telemetry = Telemetry() if cfg.telemetry else None
        tracer: TracerLike = telemetry.tracer if telemetry is not None else NULL_TRACER
        metrics: MetricsLike = telemetry.metrics if telemetry is not None else NULL_METRICS
        prep = self._prepared_traced(tracer)
        result = FillResult(telemetry=telemetry)

        budget = prep.budget_for(cfg, tracer=tracer)
        result.requested_budget = dict(budget)

        t0 = time.perf_counter()
        costs_by_tile = prep.costs_for(cfg.weighted, tracer=tracer)
        delay_budgets = derive_tile_delay_budgets(budget, costs_by_tile, slack_fraction)

        solve_keys = []
        for tile in prep.dissection.tiles():
            want = budget.get(tile.key, 0)
            if want == 0 or not costs_by_tile.get(tile.key):
                result.effective_budget[tile.key] = 0
            else:
                solve_keys.append(tile.key)

        run_deadline = self._run_deadline()
        if cfg.parallel_backend == "process":
            # MVDC in a worker: the payload's budget is the prescription
            # ceiling; delay_budget_ps switches the worker to the MVDC
            # solve (plus the same trim the in-process path applies).
            store = self._shared_store(tracer)
            payloads = [
                make_tile_payload(
                    key,
                    costs_by_tile[key],
                    budget.get(key, 0),
                    method=cfg.method,
                    weighted=cfg.weighted,
                    ilp_backend=cfg.backend,
                    seed=cfg.seed,
                    delay_budget_ps=delay_budgets[key],
                    tile_deadline_s=cfg.tile_deadline_s,
                    run_deadline=run_deadline,
                    fault_spec=cfg.fault_spec,
                    fallback=cfg.fallback,
                    telemetry=cfg.telemetry,
                    inline_columns=store is None,
                )
                for key in solve_keys
            ]
            outcomes = dispatch_tile_payloads(
                payloads,
                workers=cfg.workers,
                isolate=cfg.fallback,
                store=store.handle if store is not None else None,
                batch_tiles=cfg.batch_tiles,
                persistent=cfg.persistent_pool,
                tracer=tracer,
                metrics=metrics,
            )
        else:
            def solve_one(key: tuple[int, int], attempt: int) -> TileSolution:
                # MVDC has no fallback chain (its solver is already the
                # greedy rung); fault hooks + deadlines still apply.
                fault_hooks.inject(key, "mvdc", attempt, cfg.fault_spec)
                effective_time_limit(cfg.tile_deadline_s, run_deadline)
                costs = costs_by_tile[key]
                solution = solve_tile_mvdc(costs, delay_budgets[key])
                # MVDC may not *need* the whole prescription; cap at it.
                want = budget.get(key, 0)
                if solution.total_features > want:
                    solution = self._trim_to(costs, solution, want)
                return solution

            outcomes = dispatch_tiles(
                solve_keys, solve_one, workers=cfg.workers, isolate=cfg.fallback
            )
        for key in solve_keys:
            outcome = outcomes[key]
            tracer.absorb(outcome.spans)
            metrics.merge(outcome.metrics)
            if outcome.failed:
                solution = TileSolution(counts=[0] * len(costs_by_tile[key]))
                result.solve_reports[key] = failed_report(
                    key, "mvdc", outcome.retries, outcome.error,
                    prior_errors=outcome.error_chain,
                )
            else:
                solution = outcome.value
                if outcome.retries > 0:
                    result.solve_reports[key] = SolveReport(
                        key=key, requested_method="mvdc", used_method="mvdc",
                        retries=outcome.retries,
                    )
            result.effective_budget[key] = solution.total_features
            result.tile_solutions[key] = solution
            result.tile_seconds[key] = outcome.seconds
            result.model_objective_ps += solution.model_objective_ps
            self._place(costs_by_tile[key], solution, result.features)
        self._finish_phases(result, time.perf_counter() - t0)
        return result

    def run_budgeted(
        self,
        net_budgets_ff: dict[str, float],
        exact: bool = True,
    ) -> FillResult:
        """Run the per-net capacitance-budgeted variant (paper §7).

        Like :meth:`run`, but each net's total added coupling capacitance
        (across *all* tiles) must stay within ``net_budgets_ff``. Budgets
        are consumed tile by tile: each tile solve sees the remaining
        budget of every net it touches and what it uses is deducted before
        the next tile. Tiles are visited in increasing total-capacity
        order so constrained tiles claim budget before generous ones —
        this sequential budget hand-off is inherently serial, so the
        ``workers`` knob does not apply here.

        Args:
            net_budgets_ff: ΔC budget per net name, fF (see
                :func:`repro.pilfill.budgeted.derive_net_cap_budgets`).
                Nets absent from the mapping are unconstrained.
            exact: True → per-tile ILP; False → budget-aware greedy (may
                fall short of a tile's prescription; the shortfall is
                visible via ``FillResult.shortfall``).
        """
        cfg = self.config
        prep = self.prepared
        result = FillResult()

        budget = prep.budget_for(cfg)
        result.requested_budget = dict(budget)

        t0 = time.perf_counter()
        costs_by_tile = prep.costs_for(cfg.weighted)
        run_deadline = self._run_deadline()
        remaining = dict(net_budgets_ff)
        order = sorted(
            prep.dissection.tiles(),
            key=lambda t: sum(c.capacity for c in prep.columns_by_tile.get(t.key, [])),
        )
        for tile in order:
            tick = time.perf_counter()
            want = budget.get(tile.key, 0)
            costs = costs_by_tile.get(tile.key, [])
            cap_total = sum(c.capacity for c in costs)
            effective = min(want, cap_total)
            if effective == 0:
                result.effective_budget[tile.key] = 0
                continue
            try:
                time_limit = effective_time_limit(cfg.tile_deadline_s, run_deadline)
            except SolveTimeoutError as exc:
                # Run deadline exhausted: skip (don't solve) the remaining
                # tiles, recording each as failed rather than aborting.
                result.effective_budget[tile.key] = 0
                result.solve_reports[tile.key] = failed_report(
                    tile.key,
                    "budgeted_ilp" if exact else "budgeted_greedy",
                    0,
                    f"TIME_LIMIT: {exc}",
                )
                continue
            cap_tables = build_cap_tables(costs)
            if exact:
                outcome = solve_tile_budgeted_ilp(
                    costs, cap_tables, effective, remaining,
                    backend=cfg.backend, time_limit=time_limit,
                )
                if not outcome.feasible:
                    # Fall back to the largest feasible count via greedy
                    # (covers infeasible budgets and ILP timeouts alike).
                    outcome = solve_tile_budgeted_greedy(
                        costs, cap_tables, effective, remaining
                    )
                    result.solve_reports[tile.key] = SolveReport(
                        key=tile.key,
                        requested_method="budgeted_ilp",
                        used_method="budgeted_greedy",
                        errors=("budgeted_ilp: not feasible within budgets/deadline",),
                    )
            else:
                outcome = solve_tile_budgeted_greedy(
                    costs, cap_tables, effective, remaining
                )
            for net, used in outcome.cap_used_ff.items():
                if net in remaining:
                    remaining[net] -= used
            solution = outcome.solution
            result.effective_budget[tile.key] = solution.total_features
            result.tile_solutions[tile.key] = solution
            result.tile_seconds[tile.key] = time.perf_counter() - tick
            result.model_objective_ps += solution.model_objective_ps
            self._place(costs, solution, result.features)
        self._finish_phases(result, time.perf_counter() - t0)
        return result

    @staticmethod
    def _trim_to(costs: list[ColumnCosts], solution: TileSolution, want: int) -> TileSolution:
        """Drop the most expensive granted features until only ``want``
        remain (see :func:`repro.pilfill.methods.trim_to`)."""
        return trim_to(costs, solution, want)

    def compute_budget(self) -> dict[tuple[int, int], int]:
        """Per-tile feature budgets from the density-control baseline
        (thin wrapper over :meth:`PreparedInstance.budget_for`)."""
        return self.prepared.budget_for(self.config)

    def _solve_tile(
        self,
        costs: list[ColumnCosts],
        effective: int,
        rng: random.Random,
        time_limit: float | None = None,
    ) -> TileSolution:
        """Dispatch one tile to the configured method (see
        :func:`repro.pilfill.methods.solve_tile_method`)."""
        cfg = self.config
        return solve_tile_method(
            costs, cfg.method, effective, cfg.weighted, cfg.backend, rng,
            time_limit=time_limit,
        )
