"""End-to-end PIL-Fill engine (paper Sections 5-6 flow).

Pipeline per layer:

1. build the fixed r-dissection and the pre-fill density map,
2. compute per-tile fill budgets with the density-control baseline
   (Min-Var LP or Monte-Carlo, ref [3]),
3. run the scan-line to extract slack columns (definition I/II/III),
4. clamp budgets to column capacity (the definition-I/II shortfall the
   paper describes surfaces here),
5. solve each tile's MDFC instance with the chosen method and place the
   features into column sites,
6. return the placement plus bookkeeping (budgets, per-tile solutions,
   phase runtimes).

The engine never mutates the input layout; callers evaluate placements
with :func:`repro.pilfill.evaluate.evaluate_impact` and may attach the
features via ``layout.add_fill`` afterwards.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.cap.lut import LUTCache
from repro.dissection.density import DensityMap
from repro.dissection.fixed import FixedDissection
from repro.errors import FillError
from repro.fillsynth.budget import hybrid_budget, lp_minvar_budget, montecarlo_budget
from repro.fillsynth.slack_sites import SiteLegality
from repro.layout.layout import FillFeature, RoutedLayout
from repro.pilfill.columns import SlackColumnDef
from repro.pilfill.costs import build_costs
from repro.pilfill.dp import allocate_dp, allocation_cost
from repro.pilfill.greedy import solve_tile_greedy, solve_tile_greedy_marginal
from repro.pilfill.budgeted import (
    build_cap_tables,
    solve_tile_budgeted_greedy,
    solve_tile_budgeted_ilp,
)
from repro.pilfill.ilp1 import solve_tile_ilp1
from repro.pilfill.ilp2 import solve_tile_ilp2
from repro.pilfill.mvdc import derive_tile_delay_budgets, solve_tile_mvdc
from repro.pilfill.scanline import extract_columns
from repro.pilfill.solution import TileSolution
from repro.tech.rules import DensityRules, FillRules

#: The method names the engine accepts.
METHODS = ("normal", "ilp1", "ilp2", "greedy", "greedy_marginal", "dp")


@dataclass
class EngineConfig:
    """Configuration of one PIL-Fill run.

    Attributes:
        fill_rules: fill feature size / gap / buffer distance.
        density_rules: window size, dissection value r, density bounds.
        method: one of :data:`METHODS`.
        weighted: sink-weighted (True, Table 2) or per-segment (False,
            Table 1) objective.
        column_def: slack-column definition (paper §5.1); III by default.
        budget_mode: ``"lp"`` (Min-Var LP) or ``"montecarlo"``.
        target_density: density floor the budget step aims for. A float is
            used directly; ``"mean"`` resolves to the pre-fill mean window
            density; None maximizes uniformity with no cap (can consume all
            slack, leaving the methods little freedom).
        capacity_margin: fraction of each tile's slack capacity the budget
            step may prescribe (≤ 1). Real flows keep headroom below 100%
            utilization; for the reproduction it also guarantees every
            budgeted tile retains site choice, so methods stay
            distinguishable at fine dissections.
        backend: ILP backend for the ILP methods.
        seed: seed for the Normal placement / Monte-Carlo budget.
    """

    fill_rules: FillRules
    density_rules: DensityRules
    method: str = "ilp2"
    weighted: bool = True
    column_def: SlackColumnDef = SlackColumnDef.FULL_LAYOUT
    budget_mode: str = "lp"
    target_density: float | str | None = "mean"
    capacity_margin: float = 0.7
    backend: str = "auto"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise FillError(f"unknown method {self.method!r}; expected one of {METHODS}")
        if self.budget_mode not in ("lp", "montecarlo", "hybrid"):
            raise FillError(f"unknown budget mode {self.budget_mode!r}")
        if isinstance(self.target_density, str) and self.target_density != "mean":
            raise FillError(
                f"target_density must be a float, None, or 'mean'; got {self.target_density!r}"
            )
        if not 0.0 < self.capacity_margin <= 1.0:
            raise FillError(
                f"capacity_margin must be in (0, 1], got {self.capacity_margin}"
            )


@dataclass
class FillResult:
    """Outcome of one engine run."""

    features: list[FillFeature] = field(default_factory=list)
    requested_budget: dict[tuple[int, int], int] = field(default_factory=dict)
    effective_budget: dict[tuple[int, int], int] = field(default_factory=dict)
    tile_solutions: dict[tuple[int, int], TileSolution] = field(default_factory=dict)
    model_objective_ps: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_features(self) -> int:
        return len(self.features)

    @property
    def shortfall(self) -> int:
        """Features the density step asked for that no slack column could
        hold (the paper's definition-I/II weakness)."""
        return sum(self.requested_budget.values()) - sum(self.effective_budget.values())

    @property
    def solve_seconds(self) -> float:
        """Time in the per-tile optimization phase (the paper's CPU
        column measures the method, not the shared preprocessing)."""
        return self.phase_seconds.get("solve", 0.0)


class PILFillEngine:
    """Runs the full PIL-Fill flow on one layer of a layout."""

    def __init__(self, layout: RoutedLayout, layer: str, config: EngineConfig):
        if not layout.stack.has_layer(layer):
            raise FillError(f"layout stack has no layer {layer!r}")
        self.layout = layout
        self.layer = layer
        self.config = config

    def run(self, budget: dict[tuple[int, int], int] | None = None) -> FillResult:
        """Execute the flow. ``budget`` overrides the density step when
        given (used to hold density control identical across methods)."""
        cfg = self.config
        result = FillResult()
        clock = time.perf_counter

        t0 = clock()
        dissection = FixedDissection(self.layout.die, cfg.density_rules)
        legality = SiteLegality(self.layout, self.layer, cfg.fill_rules)
        density = DensityMap.from_layout(dissection, self.layout, self.layer)
        result.phase_seconds["setup"] = clock() - t0

        t0 = clock()
        columns_by_tile = extract_columns(
            self.layout, self.layer, dissection, legality, cfg.fill_rules, cfg.column_def
        )
        result.phase_seconds["scanline"] = clock() - t0

        t0 = clock()
        if budget is None:
            # The density step sees the true placeable capacity (column
            # sites) scaled by the headroom margin, so its prescription is
            # achievable by every method with room to choose.
            capacity = {
                key: int(sum(c.capacity for c in cols) * cfg.capacity_margin)
                for key, cols in columns_by_tile.items()
            }
            budget = self.compute_budget(density, capacity)
        result.requested_budget = dict(budget)
        result.phase_seconds["budget"] = clock() - t0

        t0 = clock()
        layer_proc = self.layout.stack.layer(self.layer)
        dbu = self.layout.stack.dbu_per_micron
        lut_cache = LUTCache(
            layer_proc.eps_r, layer_proc.thickness_um, cfg.fill_rules.fill_size / dbu
        )
        rng = random.Random(cfg.seed)

        for tile in dissection.tiles():
            want = budget.get(tile.key, 0)
            columns = columns_by_tile.get(tile.key, [])
            capacity = sum(c.capacity for c in columns)
            effective = min(want, capacity)
            result.effective_budget[tile.key] = effective
            if effective == 0:
                continue
            costs = build_costs(
                columns, layer_proc, cfg.fill_rules, dbu, lut_cache, cfg.weighted
            )
            solution = self._solve_tile(costs, effective, rng)
            result.tile_solutions[tile.key] = solution
            result.model_objective_ps += solution.model_objective_ps
            for cc, count in zip(costs, solution.counts):
                for rect in cc.column.sites[:count]:
                    result.features.append(FillFeature(layer=self.layer, rect=rect))
        result.phase_seconds["solve"] = clock() - t0
        return result

    def run_mvdc(self, slack_fraction: float = 0.25) -> FillResult:
        """Run the MVDC (minimum variation with delay constraint) variant
        — the formulation the paper mentions in footnote ‡ but does not
        develop.

        Per tile, the density step's prescription becomes a *ceiling*
        rather than an obligation: the solver packs as many features as a
        per-tile delay budget allows (derived as ``slack_fraction`` of the
        worst-case impact of the prescribed count). Tiles with generous
        free space still fill fully; tiles where every site is expensive
        stop early — trading density uniformity for timing safety.
        """
        cfg = self.config
        result = FillResult()
        clock = time.perf_counter

        t0 = clock()
        dissection = FixedDissection(self.layout.die, cfg.density_rules)
        legality = SiteLegality(self.layout, self.layer, cfg.fill_rules)
        density = DensityMap.from_layout(dissection, self.layout, self.layer)
        columns_by_tile = extract_columns(
            self.layout, self.layer, dissection, legality, cfg.fill_rules, cfg.column_def
        )
        capacity = {
            key: int(sum(c.capacity for c in cols) * cfg.capacity_margin)
            for key, cols in columns_by_tile.items()
        }
        budget = self.compute_budget(density, capacity)
        result.requested_budget = dict(budget)
        result.phase_seconds["setup"] = clock() - t0

        t0 = clock()
        layer_proc = self.layout.stack.layer(self.layer)
        dbu = self.layout.stack.dbu_per_micron
        lut_cache = LUTCache(
            layer_proc.eps_r, layer_proc.thickness_um, cfg.fill_rules.fill_size / dbu
        )
        costs_by_tile = {
            key: build_costs(cols, layer_proc, cfg.fill_rules, dbu, lut_cache, cfg.weighted)
            for key, cols in columns_by_tile.items()
        }
        delay_budgets = derive_tile_delay_budgets(budget, costs_by_tile, slack_fraction)
        for tile in dissection.tiles():
            costs = costs_by_tile.get(tile.key, [])
            want = budget.get(tile.key, 0)
            if want == 0 or not costs:
                result.effective_budget[tile.key] = 0
                continue
            solution = solve_tile_mvdc(costs, delay_budgets[tile.key])
            # MVDC may not *need* the whole prescription; cap at it.
            if solution.total_features > want:
                solution = self._trim_to(costs, solution, want)
            result.effective_budget[tile.key] = solution.total_features
            result.tile_solutions[tile.key] = solution
            result.model_objective_ps += solution.model_objective_ps
            for cc, count in zip(costs, solution.counts):
                for rect in cc.column.sites[:count]:
                    result.features.append(FillFeature(layer=self.layer, rect=rect))
        result.phase_seconds["solve"] = clock() - t0
        return result

    def run_budgeted(
        self,
        net_budgets_ff: dict[str, float],
        exact: bool = True,
    ) -> FillResult:
        """Run the per-net capacitance-budgeted variant (paper §7).

        Like :meth:`run`, but each net's total added coupling capacitance
        (across *all* tiles) must stay within ``net_budgets_ff``. Budgets
        are consumed tile by tile: each tile solve sees the remaining
        budget of every net it touches and what it uses is deducted before
        the next tile. Tiles are visited in increasing total-capacity
        order so constrained tiles claim budget before generous ones.

        Args:
            net_budgets_ff: ΔC budget per net name, fF (see
                :func:`repro.pilfill.budgeted.derive_net_cap_budgets`).
                Nets absent from the mapping are unconstrained.
            exact: True → per-tile ILP; False → budget-aware greedy (may
                fall short of a tile's prescription; the shortfall is
                visible via ``FillResult.shortfall``).
        """
        cfg = self.config
        result = FillResult()
        clock = time.perf_counter

        t0 = clock()
        dissection = FixedDissection(self.layout.die, cfg.density_rules)
        legality = SiteLegality(self.layout, self.layer, cfg.fill_rules)
        density = DensityMap.from_layout(dissection, self.layout, self.layer)
        columns_by_tile = extract_columns(
            self.layout, self.layer, dissection, legality, cfg.fill_rules, cfg.column_def
        )
        capacity = {
            key: int(sum(c.capacity for c in cols) * cfg.capacity_margin)
            for key, cols in columns_by_tile.items()
        }
        budget = self.compute_budget(density, capacity)
        result.requested_budget = dict(budget)
        result.phase_seconds["setup"] = clock() - t0

        t0 = clock()
        layer_proc = self.layout.stack.layer(self.layer)
        dbu = self.layout.stack.dbu_per_micron
        lut_cache = LUTCache(
            layer_proc.eps_r, layer_proc.thickness_um, cfg.fill_rules.fill_size / dbu
        )
        remaining = dict(net_budgets_ff)
        order = sorted(
            dissection.tiles(),
            key=lambda t: sum(c.capacity for c in columns_by_tile.get(t.key, [])),
        )
        for tile in order:
            want = budget.get(tile.key, 0)
            columns = columns_by_tile.get(tile.key, [])
            cap_total = sum(c.capacity for c in columns)
            effective = min(want, cap_total)
            if effective == 0:
                result.effective_budget[tile.key] = 0
                continue
            costs = build_costs(
                columns, layer_proc, cfg.fill_rules, dbu, lut_cache, cfg.weighted
            )
            cap_tables = build_cap_tables(costs)
            if exact:
                outcome = solve_tile_budgeted_ilp(
                    costs, cap_tables, effective, remaining, backend=cfg.backend
                )
                if not outcome.feasible:
                    # Fall back to the largest feasible count via greedy.
                    outcome = solve_tile_budgeted_greedy(
                        costs, cap_tables, effective, remaining
                    )
            else:
                outcome = solve_tile_budgeted_greedy(
                    costs, cap_tables, effective, remaining
                )
            for net, used in outcome.cap_used_ff.items():
                if net in remaining:
                    remaining[net] -= used
            solution = outcome.solution
            result.effective_budget[tile.key] = solution.total_features
            result.tile_solutions[tile.key] = solution
            result.model_objective_ps += solution.model_objective_ps
            for cc, count in zip(costs, solution.counts):
                for rect in cc.column.sites[:count]:
                    result.features.append(FillFeature(layer=self.layer, rect=rect))
        result.phase_seconds["solve"] = clock() - t0
        return result

    @staticmethod
    def _trim_to(costs, solution: TileSolution, want: int) -> TileSolution:
        """Drop the most expensive granted features until only ``want``
        remain (marginals are convex, so trimming from the top is optimal)."""
        counts = list(solution.counts)
        spent = solution.model_objective_ps
        while sum(counts) > want:
            worst_k, worst_marginal = -1, -1.0
            for k, cc in enumerate(costs):
                if counts[k] > 0:
                    marginal = cc.exact[counts[k]] - cc.exact[counts[k] - 1]
                    if marginal > worst_marginal:
                        worst_k, worst_marginal = k, marginal
            counts[worst_k] -= 1
            spent -= worst_marginal
        return TileSolution(counts=counts, model_objective_ps=spent)

    def compute_budget(
        self,
        density: DensityMap,
        capacity: dict[tuple[int, int], int],
    ) -> dict[tuple[int, int], int]:
        """Per-tile feature budgets from the density-control baseline."""
        target = self.config.target_density
        if target == "mean":
            target = float(density.window_density().mean())
        if self.config.budget_mode == "lp":
            return lp_minvar_budget(
                density, capacity, self.config.fill_rules, target_density=target
            )
        if self.config.budget_mode == "hybrid":
            return hybrid_budget(
                density,
                capacity,
                self.config.fill_rules,
                target_density=target,
                seed=self.config.seed,
            )
        return montecarlo_budget(
            density,
            capacity,
            self.config.fill_rules,
            target_density=target,
            seed=self.config.seed,
        )

    def _solve_tile(self, costs, effective: int, rng: random.Random) -> TileSolution:
        """Dispatch one tile to the configured method."""
        method = self.config.method
        if method == "ilp1":
            return solve_tile_ilp1(
                costs, effective, self.config.weighted, backend=self.config.backend
            )
        if method == "ilp2":
            return solve_tile_ilp2(costs, effective, backend=self.config.backend)
        if method == "greedy":
            return solve_tile_greedy(costs, effective)
        if method == "greedy_marginal":
            return solve_tile_greedy_marginal(costs, effective)
        if method == "dp":
            tables = [c.exact for c in costs]
            counts = allocate_dp(tables, effective)
            return TileSolution(counts=counts, model_objective_ps=allocation_cost(tables, counts))
        # Normal: timing-oblivious random spread over the tile's column
        # sites (same site universe as the other methods so density control
        # quality is identical — paper Section 6).
        slots = [(k, s) for k, cc in enumerate(costs) for s in range(cc.capacity)]
        chosen = rng.sample(slots, effective)
        counts = [0] * len(costs)
        for k, _s in chosen:
            counts[k] += 1
        tables = [c.exact for c in costs]
        return TileSolution(counts=counts, model_objective_ps=allocation_cost(tables, counts))
