"""Per-tile solution container shared by the MDFC methods."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TileSolution:
    """Outcome of solving one tile's MDFC instance.

    Attributes:
        counts: features per slack column (parallel to the cost list).
        model_objective_ps: the objective value *under the method's own
            capacitance model* (ILP-I reports its linear estimate, which
            can differ from the true impact — that gap is the paper's
            point).
        nodes: branch-and-bound nodes (ILP methods, bundled backend).
        iterations: simplex iterations (ILP methods, bundled backend).
    """

    counts: list[int] = field(default_factory=list)
    model_objective_ps: float = 0.0
    nodes: int = 0
    iterations: int = 0

    @property
    def total_features(self) -> int:
        return sum(self.counts)
