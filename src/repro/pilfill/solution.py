"""Per-tile solution container shared by the MDFC methods."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TileSolution:
    """Outcome of solving one tile's MDFC instance.

    Attributes:
        counts: features per slack column (parallel to the cost list).
        model_objective_ps: the objective value *under the method's own
            capacitance model* (ILP-I reports its linear estimate, which
            can differ from the true impact — that gap is the paper's
            point).
        nodes: branch-and-bound nodes (ILP methods, bundled backend).
        iterations: simplex iterations (ILP methods, bundled backend).
        site_indices: per-column site indices to place, parallel to
            ``counts`` (each inner tuple has ``counts[k]`` entries).
            None means "any sites" — the column cost model is
            count-based, so optimizing methods are free to take the
            first ``counts[k]`` sites. Methods that *sample* specific
            sites (the Normal baseline) must record them here so the
            placement matches what was drawn.
    """

    counts: list[int] = field(default_factory=list)
    model_objective_ps: float = 0.0
    nodes: int = 0
    iterations: int = 0
    site_indices: tuple[tuple[int, ...], ...] | None = None

    @property
    def total_features(self) -> int:
        return sum(self.counts)

    def sites_for(self, k: int) -> tuple[int, ...]:
        """Site indices to fill in column ``k`` (explicit or prefix)."""
        if self.site_indices is not None:
            return self.site_indices[k]
        return tuple(range(self.counts[k]))
