"""Grid sharding: partition the fill run along the dissection's cut lines.

The fixed r-dissection makes every tile's MDFC instance independent, and
its window structure gives natural horizontal cut lines: every tile-row
boundary ``y = die.ylo + iy * tile`` is a cut line of the sliding window
grid (windows advance by exactly one tile). :func:`plan_shards` splits
the tile grid into contiguous bands of tile rows along those lines —
deterministic integer shard keys, near-even row counts — and
:func:`run_sharded` runs the solve phase shard by shard:

* **Bounded peak memory.** The unsharded path materializes the cost
  tables for *every* tile before the first solve. A sharded run builds
  only the current shard's tables
  (:meth:`~repro.pilfill.prepare.PreparedInstance.costs_for_tiles`),
  ships them through a shard-scoped shared-memory store, and releases
  both when the shard completes — peak memory holds one band, not the
  grid. The shard bands are the same horizontal bands
  :class:`~repro.io.deflite.DefWindowStream` streams a chip-scale DEF
  in (:func:`iter_shard_windows` maps its windows onto shard keys), so a
  future multi-host driver can feed each shard only its slice of the
  input.
* **One warm pool.** All shards dispatch through the persistent
  :class:`~repro.pilfill.executor._PoolRegistry` pool for the configured
  worker count; the per-shard store rides the content-hash handshake, so
  workers re-sync once per shard instead of once per tile.
* **Bit-identity (the crown jewel).** The merge never trusts shard
  order: features are buffered per tile while the shard's cost tables
  are still alive, then folded into the result by one final pass in
  global dissection order — the same iteration order, feature order,
  and float-accumulation order as the unsharded run. Telemetry,
  cache-stats deltas, and solve reports are merged exactly once, in
  that same pass. ``run_sharded`` output is bit-identical to
  ``engine.run()`` for every method, backend, worker count, and shard
  count; :func:`result_digest` is the canonical oracle for that claim.

:func:`solve_shard_batch` is the pool entry sharded dispatch submits —
anchored in the X301 policy so the purity pass walks the shard worker
cone like any other worker entry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import IO, TYPE_CHECKING, Iterable, Iterator

from repro.dissection.fixed import FixedDissection
from repro.errors import FillError
from repro.layout.layout import FillFeature
from repro.obs.metrics import NULL_METRICS, MetricsLike
from repro.obs.telemetry import Telemetry
from repro.obs.trace import NULL_TRACER, TracerLike
from repro.pilfill.executor import TileBatch, solve_tile_batch
from repro.pilfill.incremental import (
    _rect_payload,
    _sha256,
    cache_eligible,
    run_context_digest,
    tile_digest,
)
from repro.pilfill.parallel import TileOutcome
from repro.pilfill.prepare import PreparedInstance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.io.deflite import DefWindow
    from repro.pilfill.engine import FillResult, PILFillEngine
    from repro.tech.process import ProcessStack

TileKey = tuple[int, int]


@dataclass(frozen=True)
class GridShard:
    """One contiguous band of tile rows, solvable independently.

    ``tile_keys`` covers *every* grid tile of the band (not just tiles
    with slack columns), column-major within the band — the same
    relative order the global sweep visits them in.
    """

    key: int
    iy_lo: int
    iy_hi: int
    tile_keys: tuple[TileKey, ...]

    @property
    def rows(self) -> int:
        return self.iy_hi - self.iy_lo

    @property
    def tile_count(self) -> int:
        return len(self.tile_keys)


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic partition of a fixed dissection into row bands.

    Shard keys are dense integers ``0..n_shards-1`` in ascending-row
    order; the same ``(grid, n_shards)`` input always produces the same
    plan. ``tile_size`` / ``die_ylo`` let the plan map DEF-stream band
    coordinates back onto shards (see :meth:`shard_of_row` and
    :func:`iter_shard_windows`).
    """

    nx: int
    ny: int
    tile_size: int
    die_ylo: int
    shards: tuple[GridShard, ...]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of_row(self, iy: int) -> int:
        """Shard key owning tile row ``iy`` (rows past the grid clamp to
        the nearest edge shard, matching the density clip behavior)."""
        if iy < 0:
            return 0
        for shard in self.shards:
            if iy < shard.iy_hi:
                return shard.key
        return self.shards[-1].key

    def shard_of(self, key: TileKey) -> int:
        """Shard key owning tile ``key``."""
        return self.shard_of_row(key[1])

    def band_bounds_dbu(self, key: int) -> tuple[int, int]:
        """The DBU y-range ``[lo, hi)`` shard ``key`` consumes from a
        band-sorted DEF stream."""
        shard = self.shards[key]
        return (
            self.die_ylo + shard.iy_lo * self.tile_size,
            self.die_ylo + shard.iy_hi * self.tile_size,
        )


def plan_shards(
    prepared: "PreparedInstance | FixedDissection",
    n_shards: int | None = None,
    max_tiles_per_shard: int | None = None,
) -> ShardPlan:
    """Partition the tile grid into row-band shards along window cut lines.

    Exactly one of ``n_shards`` / ``max_tiles_per_shard`` selects the
    granularity (neither → a single shard covering the grid). Rows are
    distributed as evenly as possible — ``divmod`` spread, earlier shards
    take the remainder — and ``n_shards`` is clamped to the row count, so
    every shard holds at least one full tile row and the union of all
    shards is exactly the grid.
    """
    dissection = (
        prepared if isinstance(prepared, FixedDissection) else prepared.dissection
    )
    nx, ny = dissection.nx, dissection.ny
    if n_shards is not None and max_tiles_per_shard is not None:
        raise FillError("pass n_shards or max_tiles_per_shard, not both")
    if max_tiles_per_shard is not None:
        if max_tiles_per_shard < 1:
            raise FillError(
                f"max_tiles_per_shard must be >= 1, got {max_tiles_per_shard}"
            )
        rows_per = max(1, max_tiles_per_shard // nx)
        n_shards = -(-ny // rows_per)  # ceil div
    if n_shards is None:
        n_shards = 1
    if n_shards < 1:
        raise FillError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, ny)

    shards: list[GridShard] = []
    base, extra = divmod(ny, n_shards)
    iy_lo = 0
    for key in range(n_shards):
        iy_hi = iy_lo + base + (1 if key < extra else 0)
        tile_keys = tuple(
            (ix, iy) for ix in range(nx) for iy in range(iy_lo, iy_hi)
        )
        shards.append(GridShard(key=key, iy_lo=iy_lo, iy_hi=iy_hi, tile_keys=tile_keys))
        iy_lo = iy_hi
    return ShardPlan(
        nx=nx,
        ny=ny,
        tile_size=dissection.tile_size,
        die_ylo=dissection.die.ylo,
        shards=tuple(shards),
    )


def iter_shard_windows(
    source: "str | IO[str] | Iterable[str]",
    stack: "ProcessStack",
    plan: ShardPlan,
) -> "Iterator[tuple[int, DefWindow]]":
    """Stream a band-sorted DEF-lite source as ``(shard_key, window)``.

    Bands one tile row high ride :func:`~repro.io.deflite.
    iter_def_windows`; each window is tagged with the shard whose row
    band contains it, so a shard driver consumes only its own slice of
    the input and peak memory stays one band deep. Shard keys arrive in
    ascending order on band-sorted input.
    """
    from repro.io.deflite import iter_def_windows

    for window in iter_def_windows(source, stack, plan.tile_size):
        yield plan.shard_of_row(window.index), window


def solve_shard_batch(batch: TileBatch) -> list[TileOutcome]:
    """Pool entry for one shard's tile batch.

    Delegates to the standard batch worker — shard batches are ordinary
    tile batches whose store happens to be shard-scoped. Exists as a
    named entry so the X301 purity pass anchors the shard worker cone
    explicitly (``repro.pilfill.shard.solve_shard_batch`` in the
    default policy).
    """
    return solve_tile_batch(batch)


def result_digest(result: "FillResult") -> str:
    """Canonical content digest of a :class:`FillResult` placement.

    Covers everything the bit-identity contract promises: the feature
    list *in order* (layer + exact rect), both budget maps, every tile
    solution's counts / explicit site indices / model objective, and the
    run's accumulated model objective via ``repr`` (shortest round-trip
    form, so equal digests mean equal floats). Timings, telemetry, and
    cache stats are excluded — they vary run to run by design. Sharded
    and unsharded runs of the same configuration must digest equal; the
    ``t3_shard`` bench gates on exactly that.
    """
    solutions: dict[str, object] = {}
    for (ix, iy), sol in sorted(result.tile_solutions.items()):
        solutions[f"{ix},{iy}"] = {
            "counts": list(sol.counts),
            "model_objective_ps": repr(sol.model_objective_ps),
            "site_indices": (
                None
                if sol.site_indices is None
                else [list(sites) for sites in sol.site_indices]
            ),
        }
    payload: dict[str, object] = {
        "features": [
            {"layer": f.layer, "rect": _rect_payload(f.rect)} for f in result.features
        ],
        "requested_budget": sorted(
            (f"{ix},{iy}", v) for (ix, iy), v in result.requested_budget.items()
        ),
        "effective_budget": sorted(
            (f"{ix},{iy}", v) for (ix, iy), v in result.effective_budget.items()
        ),
        "solutions": solutions,
        "model_objective_ps": repr(result.model_objective_ps),
    }
    return _sha256(payload)


def run_sharded(
    engine: "PILFillEngine",
    budget: dict[TileKey, int] | None = None,
) -> "FillResult":
    """Execute ``engine``'s flow shard by shard (``EngineConfig.shards``).

    The density budget is derived once, globally — sharding is a solve
    scheduling choice and must not perturb density control. Each shard
    then builds only its own cost tables, looks its tiles up in the
    solution cache, dispatches its misses (all shards share one
    persistent pool; process dispatch rides a shard-scoped shared store
    that is closed the moment the shard completes), and buffers the
    placed features per tile. A final pass in global dissection order
    folds every outcome into the result, so feature order, float
    accumulation, dict insertion order, and per-tile telemetry
    absorption are bit-identical to the unsharded run. Cache recording
    and stats deltas happen once, after the merge, exactly as in
    :meth:`~repro.pilfill.engine.PILFillEngine.run`.
    """
    from repro.pilfill.engine import FillResult

    cfg = engine.config
    telemetry = Telemetry() if cfg.telemetry else None
    tracer: TracerLike = telemetry.tracer if telemetry is not None else NULL_TRACER
    metrics: MetricsLike = telemetry.metrics if telemetry is not None else NULL_METRICS
    prep = engine._prepared_traced(tracer)
    plan = plan_shards(prep, n_shards=max(1, cfg.shards))
    result = FillResult(telemetry=telemetry)

    with tracer.span(
        "engine.run", method=cfg.method, backend=cfg.backend,
        workers=cfg.workers, parallel_backend=cfg.parallel_backend,
        shards=plan.n_shards,
    ):
        if budget is None:
            budget = prep.budget_for(cfg, tracer=tracer)
        result.requested_budget = dict(budget)

        t0 = time.perf_counter()
        run_deadline = engine._run_deadline()

        cache = (
            cfg.solution_cache
            if cfg.solution_cache is not None and cache_eligible(cfg)
            else None
        )
        stats_before: dict[str, int] = cache.stats() if cache is not None else {}
        context = run_context_digest(cfg, engine.layer) if cache is not None else ""
        digests: dict[TileKey, str] = {}
        dispatch_keys: list[TileKey] = []
        cached_outcomes: dict[TileKey, TileOutcome] = {}
        outcomes_all: dict[TileKey, TileOutcome] = {}
        # Per-tile merge inputs, buffered while the owning shard's cost
        # tables are alive; the final global-order pass consumes them.
        effective: dict[TileKey, int] = {}
        placed: dict[TileKey, list[FillFeature]] = {}
        n_columns: dict[TileKey, int] = {}

        for shard in plan.shards:
            with tracer.span(
                "shard", key=shard.key, rows=shard.rows, tiles=shard.tile_count
            ):
                costs_by_tile = prep.costs_for_tiles(
                    cfg.weighted, shard.tile_keys, tracer=tracer
                )
                shard_solve: list[TileKey] = []
                for key in shard.tile_keys:
                    want = budget.get(key, 0)
                    capacity = sum(c.capacity for c in costs_by_tile.get(key, []))
                    effective[key] = min(want, capacity)
                    if effective[key] > 0:
                        shard_solve.append(key)

                if cache is None:
                    shard_dispatch = list(shard_solve)
                else:
                    shard_dispatch = []
                    for key in shard_solve:
                        digest = tile_digest(
                            context, key, costs_by_tile[key], effective[key]
                        )
                        digests[key] = digest
                        hit = cache.lookup(digest)
                        if hit is None:
                            shard_dispatch.append(key)
                        else:
                            solution, report = hit
                            cached_outcomes[key] = TileOutcome(
                                key=key, value=solution, seconds=0.0, report=report
                            )

                store = None
                if cfg.parallel_backend == "process" and cfg.workers > 1:
                    store = prep.store_for_costs(
                        cfg.weighted,
                        {key: costs_by_tile[key] for key in shard_dispatch},
                    )
                try:
                    with tracer.span(
                        "solve",
                        tiles=len(shard_solve),
                        cached=len(shard_solve) - len(shard_dispatch),
                        shard=shard.key,
                    ):
                        outcomes = engine._dispatch_solves(
                            shard_dispatch, costs_by_tile, effective,
                            run_deadline, store, tracer, metrics,
                            batch_solver=solve_shard_batch,
                        )
                finally:
                    if store is not None:
                        # Shard-scoped segment: unlink eagerly, never let
                        # it outlive its shard (workers re-sync on the
                        # next shard's content hash anyway).
                        store.close()
                outcomes_all.update(outcomes)
                dispatch_keys.extend(shard_dispatch)
                for key in shard_solve:
                    outcome = (
                        cached_outcomes[key]
                        if key in cached_outcomes
                        else outcomes[key]
                    )
                    costs = costs_by_tile[key]
                    n_columns[key] = len(costs)
                    feats: list[FillFeature] = []
                    if not outcome.failed:
                        engine._place(costs, outcome.value, feats)
                    placed[key] = feats
                # costs_by_tile goes out of scope here: a shard's tables
                # are released before the next shard builds its own.
                del costs_by_tile

        # The merge pass: global dissection order, exactly like the
        # unsharded run — same feature order, same float-accumulation
        # order, same dict insertion order, telemetry absorbed once.
        for tile in prep.dissection.tiles():
            key = tile.key
            result.effective_budget[key] = effective.get(key, 0)
            if key not in placed:
                continue
            outcome = (
                cached_outcomes[key] if key in cached_outcomes else outcomes_all[key]
            )
            engine._merge_outcome(
                result, key, outcome, [],
                tracer=tracer, metrics=metrics,
                placed=placed[key], n_columns=n_columns[key],
            )

        if cache is not None:
            for key in dispatch_keys:
                if not outcomes_all[key].failed:
                    cache.record(
                        digests[key],
                        result.tile_solutions[key],
                        result.solve_reports[key],
                    )
            cache.remember_run(digests)
            stats_after = cache.stats()
            result.cache_stats = {
                name: stats_after[name] - stats_before.get(name, 0)
                for name in stats_after
            }
            for name, delta in result.cache_stats.items():
                metrics.count(f"cache.{name}", delta)
        engine._finish_phases(result, time.perf_counter() - t0)
        metrics.count("features.placed", result.total_features)
        for name, hits in prep.lut_stats.items():
            metrics.count(f"lut.{name}", hits)
        for phase, seconds in result.phase_seconds.items():
            metrics.observe(f"phase.{phase}.seconds", seconds)
    return result
