"""Per-tile fill budgets — the "normal fill" density-control step (ref [3],
Chen-Kahng-Robins-Zelikovsky, TCAD 2002).

Two interchangeable back-ends compute the prescribed number of fill
features ``numRF_ij`` for every tile:

* :func:`lp_minvar_budget` — the Min-Var linear program: maximize the
  minimum window density M subject to a maximum density U and per-tile
  slack capacity; the LP's fractional fill areas are rounded down to whole
  features.
* :func:`montecarlo_budget` — the randomized greedy of the same paper:
  repeatedly pick the lowest-density window and drop one feature into a
  random tile of it that still has slack.

Both return ``{(ix, iy): feature_count}``. The PIL-Fill methods then decide
*where inside each tile* those features go.
"""

from __future__ import annotations

import random

import numpy as np

from repro.dissection.density import DensityMap
from repro.errors import FillError
from repro.ilp import Model, solve
from repro.tech.rules import FillRules


def lp_minvar_budget(
    density: DensityMap,
    capacity: dict[tuple[int, int], int],
    rules: FillRules,
    max_density: float | None = None,
    target_density: float | None = None,
    backend: str = "scipy",
) -> dict[tuple[int, int], int]:
    """Min-Var LP fill budgets.

    Args:
        density: pre-fill density map of the layer.
        capacity: legal fill sites per tile.
        rules: fill rules (feature area for area↔count conversion).
        max_density: density ceiling U; defaults to the larger of the
            dissection rules' max density and the current maximum window
            density (so the LP is always feasible).
        target_density: optional cap on the maximized min-density M. When
            the foundry rule only requires windows to reach a floor (the
            common case), capping M keeps budgets minimal instead of
            spending every slack site chasing uniformity.
        backend: ILP backend; the LP is continuous, scipy/HiGHS by default.

    Returns:
        Whole-feature budget per tile.
    """
    dissection = density.dissection
    windows = list(dissection.windows())
    if not windows:
        raise FillError("dissection has no windows; die too small for window size")

    current = density.window_density()
    ceiling = max(
        max_density if max_density is not None else dissection.rules.max_density,
        float(current.max()),
    )

    model = Model("minvar-budget")
    fill_area = float(rules.fill_area)
    tile_vars = {}
    for tile in dissection.tiles():
        cap_area = capacity.get(tile.key, 0) * fill_area
        tile_vars[tile.key] = model.add_var(f"p_{tile.ix}_{tile.iy}", lb=0.0, ub=cap_area)

    m_ub = ceiling if target_density is None else min(ceiling, target_density)
    m_var = model.add_var("M", lb=0.0, ub=m_ub)
    window_areas = density.window_area()
    for win in windows:
        added = sum((tile_vars[k] * 1.0 for k in win.tile_keys), start=0.0)
        orig = float(window_areas[win.ix, win.iy])
        area = float(win.rect.area)
        model.add_constraint(added + orig <= ceiling * area)
        model.add_constraint(added + orig >= m_var * area)

    # Phase 1: the best achievable minimum window density M*.
    model.maximize(m_var * 1.0)
    phase1 = solve(model, backend=backend)
    if not phase1.status.is_optimal:
        raise FillError(f"Min-Var budget LP (phase 1) failed: {phase1.status}")
    m_star = phase1.value("M")

    # Phase 2: the *minimum total fill* achieving M*. Without this pass the
    # solver may return any max-M vertex — including ones that saturate
    # every tile, which both wastes fill and leaves the placement methods
    # no freedom.
    total_fill = sum((v * 1.0 for v in tile_vars.values()), start=0.0)
    model.add_constraint(m_var >= m_star - 1e-9)
    model.minimize(total_fill)
    result = solve(model, backend=backend)
    if not result.status.is_optimal:
        raise FillError(f"Min-Var budget LP (phase 2) failed: {result.status}")

    budget: dict[tuple[int, int], int] = {}
    for key, var in tile_vars.items():
        features = int(result.value(var.name) / fill_area + 1e-9)
        budget[key] = min(features, capacity.get(key, 0))
    return budget


def hybrid_budget(
    density: DensityMap,
    capacity: dict[tuple[int, int], int],
    rules: FillRules,
    target_density: float | None = None,
    max_density: float | None = None,
    seed: int = 0,
) -> dict[tuple[int, int], int]:
    """The iterated LP + Monte-Carlo back-end of ref [3].

    The LP works in continuous areas; rounding down to whole features
    leaves the minimum window density slightly short of the LP optimum.
    This hybrid runs the LP first, then lets the Monte-Carlo greedy top up
    windows that the rounding left below target, using only the capacity
    the LP did not consume.
    """
    lp = lp_minvar_budget(
        density, capacity, rules,
        max_density=max_density, target_density=target_density,
    )
    fill_area = float(rules.fill_area)
    extra_area = np.zeros((density.dissection.nx, density.dissection.ny))
    for (ix, iy), count in lp.items():
        extra_area[ix, iy] = count * fill_area
    topped = density.added(extra_area)
    leftover = {
        key: capacity.get(key, 0) - lp.get(key, 0) for key in capacity
    }
    if target_density is None:
        target_density = float(density.window_density().mean())
    mc = montecarlo_budget(
        topped, leftover, rules,
        target_density=target_density, max_density=max_density, seed=seed,
    )
    return {key: lp.get(key, 0) + mc.get(key, 0) for key in sorted(set(lp) | set(mc))}


def montecarlo_budget(
    density: DensityMap,
    capacity: dict[tuple[int, int], int],
    rules: FillRules,
    target_density: float | None = None,
    max_density: float | None = None,
    seed: int = 0,
    max_steps: int | None = None,
) -> dict[tuple[int, int], int]:
    """Randomized greedy fill budgets (the Monte-Carlo back-end of ref [3]).

    Repeatedly selects the minimum-density window and adds one feature to a
    random tile of it that has remaining slack, until every window reaches
    ``target_density`` (default: the pre-fill mean window density), no
    window can be improved, or ``max_steps`` insertions were made.
    """
    dissection = density.dissection
    windows = list(dissection.windows())
    if not windows:
        raise FillError("dissection has no windows; die too small for window size")
    rng = random.Random(seed)

    fill_area = float(rules.fill_area)
    ceiling = max(
        max_density if max_density is not None else dissection.rules.max_density,
        float(density.window_density().max()),
    )
    window_area_geo = {w.key: float(w.rect.area) for w in windows}
    window_areas = density.window_area()
    window_fill = {w.key: float(window_areas[w.ix, w.iy]) for w in windows}
    if target_density is None:
        target_density = float(density.window_density().mean())
    target_density = min(target_density, ceiling)

    remaining = dict(capacity)
    budget = {t.key: 0 for t in dissection.tiles()}
    if max_steps is None:
        max_steps = sum(capacity.values())

    blocked: set[tuple[int, int]] = set()
    for _ in range(max_steps):
        candidates = [
            w for w in windows
            if w.key not in blocked
            and window_fill[w.key] / window_area_geo[w.key] < target_density
        ]
        if not candidates:
            break
        worst = min(candidates, key=lambda w: window_fill[w.key] / window_area_geo[w.key])
        open_tiles = [k for k in worst.tile_keys if remaining.get(k, 0) > 0]
        if not open_tiles:
            blocked.add(worst.key)
            continue
        # Adding a feature must not push any covering window over the ceiling.
        rng.shuffle(open_tiles)
        placed = False
        for tile_key in open_tiles:
            covering = dissection.windows_containing_tile(*tile_key)
            if all(
                (window_fill[w] + fill_area) / window_area_geo[w] <= ceiling + 1e-12
                for w in covering
            ):
                budget[tile_key] += 1
                remaining[tile_key] -= 1
                for w in covering:
                    window_fill[w] += fill_area
                placed = True
                break
        if not placed:
            blocked.add(worst.key)
    return budget
