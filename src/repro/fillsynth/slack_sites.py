"""Slack-site computation: where may fill features legally go.

The layout is gridded into candidate fill sites (side ``fill_size``, pitch
``fill_size + fill_gap``) anchored at the die's lower-left corner. A site
is *legal* when the site square, expanded by the buffer distance, overlaps
no drawn geometry on the layer and stays inside the die. This exact test
covers line ends and wrong-direction routing, which the parallel-line
capacitance model itself does not see.
"""

from __future__ import annotations

from repro.dissection.fixed import FixedDissection, Tile
from repro.geometry import GridBinIndex, Rect, SiteGrid
from repro.layout.layout import RoutedLayout
from repro.tech.rules import FillRules


class SiteLegality:
    """Per-layer legality oracle for fill sites.

    Construct from a layout (historical API) or from bare geometry via
    :meth:`from_rects` — the streaming preprocessor feeds blockage rects
    one net at a time with :meth:`add_blockage` and never materializes a
    :class:`RoutedLayout`. Incremental insertion is sound for queries
    below the stream's watermark: a site already judged legal can only
    be invalidated by a rect overlapping its grown square, and streamed
    geometry always arrives above it.
    """

    def __init__(self, layout: RoutedLayout, layer: str, rules: FillRules):
        self._init_from(layout.die, layer, rules, layout.feature_rects(layer))

    def _init_from(
        self, die: Rect, layer: str, rules: FillRules, rects: list[Rect]
    ) -> None:
        self.die = die
        self.layer = layer
        self.rules = rules
        self.grid = SiteGrid(
            origin_x=die.xlo + rules.buffer_distance,
            origin_y=die.ylo + rules.buffer_distance,
            site_size=rules.fill_size,
            site_gap=rules.fill_gap,
        )
        bin_size = max(1, max(die.width, die.height) // 32)
        self._blockages: GridBinIndex[int] = GridBinIndex(bin_size)
        self._rects: list[Rect] = []
        for rect in rects:
            self.add_blockage(rect)

    @classmethod
    def from_rects(
        cls, die: Rect, layer: str, rules: FillRules, rects: list[Rect]
    ) -> "SiteLegality":
        """Build from bare blockage geometry (no layout object needed)."""
        oracle = cls.__new__(cls)
        oracle._init_from(die, layer, rules, rects)
        return oracle

    def add_blockage(self, rect: Rect) -> None:
        """Register one more blockage rect (streaming construction)."""
        self._blockages.insert(rect, len(self._rects))
        self._rects.append(rect)

    def is_legal(self, site_rect: Rect) -> bool:
        """True when a fill feature at ``site_rect`` is design-rule legal."""
        if not self.die.contains_rect(site_rect):
            return False
        grown = site_rect.expanded(self.rules.buffer_distance)
        for idx in self._blockages.query(grown):
            if self._rects[idx].overlaps(grown):
                return False
        return True

    def legal_sites_in_region(self, region: Rect) -> list[Rect]:
        """Legal site squares whose center lies in ``region``, sorted by
        (column, row)."""
        # Candidate sites: any whose square could have its center in region.
        pad = self.grid.site_size
        search = Rect(
            region.xlo - pad, region.ylo - pad, region.xhi + pad, region.yhi + pad
        )
        out: list[Rect] = []
        c0 = self.grid.col_at(search.xlo)
        c1 = self.grid.col_at(search.xhi) + 1
        r0 = self.grid.row_at(search.ylo)
        r1 = self.grid.row_at(search.yhi) + 1
        for col in range(c0, c1 + 1):
            for row in range(r0, r1 + 1):
                rect = self.grid.site_rect(col, row)
                if region.contains_point(rect.center) and self.is_legal(rect):
                    out.append(rect)
        return out

    def legal_count_by_tile(self, dissection: FixedDissection) -> dict[tuple[int, int], int]:
        """Number of legal sites per tile (sites assigned by center)."""
        counts: dict[tuple[int, int], int] = {t.key: 0 for t in dissection.tiles()}
        for tile in dissection.tiles():
            counts[tile.key] = len(self.legal_sites_in_region(tile.rect))
        return counts

    def site_center_tile(self, dissection: FixedDissection, site_rect: Rect) -> Tile:
        """Tile owning a site (by center containment)."""
        c = site_rect.center
        return dissection.tile_at_point(c.x, c.y)
