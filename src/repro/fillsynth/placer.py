"""Timing-oblivious "Normal" fill placement — the paper's comparison
baseline (ref [3] placement stage).

Given per-tile budgets and the legal sites of each tile, place features
with no awareness of delay: either uniformly at random (the Monte-Carlo
placement of ref [3]; this is the paper's "Normal" column) or row-major
deterministic (useful for reproducible debugging).
"""

from __future__ import annotations

import random

from repro.dissection.fixed import FixedDissection
from repro.errors import FillError
from repro.fillsynth.slack_sites import SiteLegality
from repro.layout.layout import FillFeature, RoutedLayout


def place_normal(
    layout: RoutedLayout,
    layer: str,
    dissection: FixedDissection,
    legality: SiteLegality,
    budget: dict[tuple[int, int], int],
    seed: int = 0,
    order: str = "random",
) -> list[FillFeature]:
    """Place ``budget[tile]`` features into each tile's legal sites.

    Args:
        order: ``"random"`` (seeded shuffle, the Normal baseline) or
            ``"row_major"`` (bottom-left first, deterministic).

    Returns:
        The placed features (also appended to ``layout.fills``).

    Raises:
        FillError: when a tile's budget exceeds its legal site count.
    """
    if order not in ("random", "row_major"):
        raise FillError(f"unknown placement order {order!r}")
    rng = random.Random(seed)
    placed: list[FillFeature] = []
    for tile in dissection.tiles():
        want = budget.get(tile.key, 0)
        if want == 0:
            continue
        sites = legality.legal_sites_in_region(tile.rect)
        if want > len(sites):
            raise FillError(
                f"tile {tile.key}: budget {want} exceeds {len(sites)} legal sites"
            )
        if order == "random":
            chosen = rng.sample(sites, want)
        else:
            chosen = sorted(sites, key=lambda r: (r.ylo, r.xlo))[:want]
        for rect in chosen:
            feature = FillFeature(layer=layer, rect=rect)
            layout.add_fill(feature)
            placed.append(feature)
    return placed
