"""Density-control fill baseline (ref [3]): slack sites, Min-Var LP /
Monte-Carlo fill budgets, and timing-oblivious Normal placement."""

from repro.fillsynth.slack_sites import SiteLegality
from repro.fillsynth.budget import hybrid_budget, lp_minvar_budget, montecarlo_budget
from repro.fillsynth.placer import place_normal

__all__ = [
    "SiteLegality",
    "hybrid_budget",
    "lp_minvar_budget",
    "montecarlo_budget",
    "place_normal",
]
