"""Coupling-capacitance increment due to a column of dummy fill
(paper Eqs. 5-7).

A *column* of ``m`` square fill features (side ``w``) stacked between two
parallel active lines at spacing ``d`` is modeled as a single floating
metal block of cross-length ``m·w``: the series plate capacitance through
the block reduces the effective dielectric gap to ``d − m·w`` (Eq. 5).
Since the column occupies length ``w`` of the lines' overlap, the *lumped*
capacitance increment attached to each line at the column position is

    ΔC_exact(m)  = ε₀ ε_r t w (1/(d − m·w) − 1/d)
    ΔC_linear(m) = ε₀ ε_r t w · m·w / d²          (Eq. 6, w ≪ d regime)

ILP-I uses the linear form; ILP-II and the evaluator use the exact form
(via :class:`repro.cap.lut.CapacitanceLUT`).
"""

from __future__ import annotations

from repro.errors import FillError
from repro.units import EPS0_FF_PER_UM


def exact_gap_cap_per_um(eps_r: float, thickness_um: float, spacing_um: float,
                         m: int, fill_width_um: float) -> float:
    """Per-unit-length coupling ``f(m, d)`` through a column of ``m``
    features (paper Eq. 5), fF/µm."""
    _check(eps_r, thickness_um, spacing_um, m, fill_width_um)
    remaining = spacing_um - m * fill_width_um
    if remaining <= 0:
        raise FillError(
            f"{m} features of width {fill_width_um} do not fit in gap {spacing_um}"
        )
    return EPS0_FF_PER_UM * eps_r * thickness_um / remaining


def exact_column_cap(eps_r: float, thickness_um: float, spacing_um: float,
                     m: int, fill_width_um: float) -> float:
    """Exact lumped capacitance increment of a column of ``m`` features, fF.

    Zero when ``m == 0``; strictly increasing and convex in ``m``.
    """
    _check(eps_r, thickness_um, spacing_um, m, fill_width_um)
    if m == 0:
        return 0.0
    remaining = spacing_um - m * fill_width_um
    if remaining <= 0:
        raise FillError(
            f"{m} features of width {fill_width_um} do not fit in gap {spacing_um}"
        )
    base = EPS0_FF_PER_UM * eps_r * thickness_um * fill_width_um
    return base * (1.0 / remaining - 1.0 / spacing_um)


def linear_column_cap(eps_r: float, thickness_um: float, spacing_um: float,
                      m: int, fill_width_um: float) -> float:
    """Linearized lumped capacitance increment (paper Eq. 6 regime), fF.

    First-order Taylor expansion of :func:`exact_column_cap` around
    ``m = 0``; ILP-I's per-feature cost. Always underestimates the exact
    value (the exact form is convex).
    """
    _check(eps_r, thickness_um, spacing_um, m, fill_width_um)
    base = EPS0_FF_PER_UM * eps_r * thickness_um * fill_width_um
    return base * m * fill_width_um / (spacing_um * spacing_um)


def _check(eps_r: float, thickness_um: float, spacing_um: float,
           m: int, fill_width_um: float) -> None:
    if eps_r <= 0 or thickness_um <= 0:
        raise FillError("eps_r and thickness must be positive")
    if spacing_um <= 0:
        raise FillError(f"line spacing must be positive, got {spacing_um}")
    if fill_width_um <= 0:
        raise FillError(f"fill width must be positive, got {fill_width_um}")
    if m < 0:
        raise FillError(f"feature count must be non-negative, got {m}")
