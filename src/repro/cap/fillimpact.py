"""Coupling-capacitance increment due to a column of dummy fill
(paper Eqs. 5-7).

A *column* of ``m`` square fill features (side ``w``) stacked between two
parallel active lines at spacing ``d`` is modeled as a single floating
metal block of cross-length ``m·w``: the series plate capacitance through
the block reduces the effective dielectric gap to ``d − m·w`` (Eq. 5).
Since the column occupies length ``w`` of the lines' overlap, the *lumped*
capacitance increment attached to each line at the column position is

    ΔC_exact(m)  = ε₀ ε_r t w (1/(d − m·w) − 1/d)
    ΔC_linear(m) = ε₀ ε_r t w · m·w / d²          (Eq. 6, w ≪ d regime)

ILP-I uses the linear form; ILP-II and the evaluator use the exact form
(via :class:`repro.cap.lut.CapacitanceLUT`).

Both models also come in array form (:func:`exact_column_cap_array`,
:func:`linear_column_cap_array`): one vectorized evaluation over the whole
``m = 0 .. capacity`` range. The array variants apply the identical IEEE
operation sequence elementwise, so every entry is bit-identical to the
scalar function at the same ``m`` — the cost-table builder and the LUT
cache rely on this to swap in the batched kernels without perturbing any
result.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FillError
from repro.units import EPS0_FF_PER_UM


def exact_gap_cap_per_um(eps_r: float, thickness_um: float, spacing_um: float,
                         m: int, fill_width_um: float) -> float:
    """Per-unit-length coupling ``f(m, d)`` through a column of ``m``
    features (paper Eq. 5), fF/µm."""
    _check(eps_r, thickness_um, spacing_um, m, fill_width_um)
    remaining = spacing_um - m * fill_width_um
    if remaining <= 0:
        raise FillError(
            f"{m} features of width {fill_width_um} do not fit in gap {spacing_um}"
        )
    return EPS0_FF_PER_UM * eps_r * thickness_um / remaining


def exact_column_cap(eps_r: float, thickness_um: float, spacing_um: float,
                     m: int, fill_width_um: float) -> float:
    """Exact lumped capacitance increment of a column of ``m`` features, fF.

    Zero when ``m == 0``; strictly increasing and convex in ``m``.
    """
    _check(eps_r, thickness_um, spacing_um, m, fill_width_um)
    if m == 0:
        return 0.0
    remaining = spacing_um - m * fill_width_um
    if remaining <= 0:
        raise FillError(
            f"{m} features of width {fill_width_um} do not fit in gap {spacing_um}"
        )
    base = EPS0_FF_PER_UM * eps_r * thickness_um * fill_width_um
    return base * (1.0 / remaining - 1.0 / spacing_um)


def linear_column_cap(eps_r: float, thickness_um: float, spacing_um: float,
                      m: int, fill_width_um: float) -> float:
    """Linearized lumped capacitance increment (paper Eq. 6 regime), fF.

    First-order Taylor expansion of :func:`exact_column_cap` around
    ``m = 0``; ILP-I's per-feature cost. Always underestimates the exact
    value (the exact form is convex).
    """
    _check(eps_r, thickness_um, spacing_um, m, fill_width_um)
    base = EPS0_FF_PER_UM * eps_r * thickness_um * fill_width_um
    return base * m * fill_width_um / (spacing_um * spacing_um)


def exact_column_cap_array(eps_r: float, thickness_um: float, spacing_um: float,
                           capacity: int, fill_width_um: float) -> np.ndarray:
    """Vectorized :func:`exact_column_cap` over ``m = 0 .. capacity``, fF.

    Entry ``m`` is bit-identical to ``exact_column_cap(..., m, ...)``; the
    whole table is one numpy pass instead of ``capacity + 1`` Python calls.
    """
    _check(eps_r, thickness_um, spacing_um, capacity, fill_width_um)
    n = np.arange(capacity + 1, dtype=np.float64)
    remaining = spacing_um - n * fill_width_um
    if capacity > 0 and remaining[-1] <= 0:
        raise FillError(
            f"{capacity} features of width {fill_width_um} do not fit in gap {spacing_um}"
        )
    base = EPS0_FF_PER_UM * eps_r * thickness_um * fill_width_um
    out = base * (1.0 / remaining - 1.0 / spacing_um)
    out[0] = 0.0
    return out


def linear_column_cap_array(eps_r: float, thickness_um: float, spacing_um: float,
                            capacity: int, fill_width_um: float) -> np.ndarray:
    """Vectorized :func:`linear_column_cap` over ``m = 0 .. capacity``, fF.

    Entry ``m`` is bit-identical to ``linear_column_cap(..., m, ...)``.
    """
    _check(eps_r, thickness_um, spacing_um, capacity, fill_width_um)
    n = np.arange(capacity + 1, dtype=np.float64)
    base = EPS0_FF_PER_UM * eps_r * thickness_um * fill_width_um
    return base * n * fill_width_um / (spacing_um * spacing_um)


def _check(eps_r: float, thickness_um: float, spacing_um: float,
           m: int, fill_width_um: float) -> None:
    if eps_r <= 0 or thickness_um <= 0:
        raise FillError("eps_r and thickness must be positive")
    if spacing_um <= 0:
        raise FillError(f"line spacing must be positive, got {spacing_um}")
    if fill_width_um <= 0:
        raise FillError(f"fill width must be positive, got {fill_width_um}")
    if m < 0:
        raise FillError(f"feature count must be non-negative, got {m}")
