"""Pre-built capacitance lookup tables for ILP-II (paper Section 5.3).

For each distinct (gap distance, capacity) the exact column capacitance
``f(n, d)`` is tabulated once for ``n = 0 .. capacity``. Tables are cached
by quantized key so the thousands of columns in a layout share a handful
of tables — exactly the pre-building the paper describes.

Tables are built with the vectorized capacitance kernel
(:func:`repro.cap.fillimpact.exact_column_cap_array`), so one cache miss
costs one numpy pass regardless of capacity, and the cache itself is
thread-safe: the engine shares a single :class:`LUTCache` across worker
threads, so the get-or-build is guarded by a lock (two workers asking for
the same key get the same table object, built once).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro.cap.fillimpact import exact_column_cap_array
from repro.errors import FillError


@dataclass(frozen=True)
class CapacitanceLUT:
    """Lumped capacitance increment per feature count for one column
    geometry: ``table[n]`` is ΔC (fF) with ``n`` features in the column."""

    spacing_um: float
    fill_width_um: float
    table: tuple[float, ...]

    @property
    def max_features(self) -> int:
        """Largest tabulated feature count."""
        return len(self.table) - 1

    @cached_property
    def table_array(self) -> np.ndarray:
        """The table as a read-only float64 array (cached; shared by the
        vectorized cost-table builder)."""
        arr = np.asarray(self.table, dtype=np.float64)
        arr.setflags(write=False)
        return arr

    def cap(self, n: int) -> float:
        """ΔC for ``n`` features."""
        if not 0 <= n <= self.max_features:
            raise FillError(f"feature count {n} outside LUT range 0..{self.max_features}")
        return self.table[n]

    def marginal(self, n: int) -> float:
        """ΔC(n) − ΔC(n−1): the cost of the n-th feature."""
        if not 1 <= n <= self.max_features:
            raise FillError(f"feature count {n} outside LUT range 1..{self.max_features}")
        return self.table[n] - self.table[n - 1]


@dataclass(frozen=True)
class LUTSnapshot:
    """Frozen, picklable dump of a :class:`LUTCache`.

    Built by :meth:`LUTCache.snapshot` in the parent and shipped once per
    worker inside the shared-memory cost store (see
    :mod:`repro.pilfill.executor`) instead of re-deriving — or worse,
    re-shipping — tables per tile payload. Entries are sorted
    ``(quantized spacing, capacity, spacing_um, table)`` rows, so equal
    caches snapshot to equal bytes and the store's content hash is
    stable. Restore with :meth:`LUTCache.from_snapshot`.
    """

    eps_r: float
    thickness_um: float
    fill_width_um: float
    entries: tuple[tuple[int, int, float, tuple[float, ...]], ...] = ()


class LUTCache:
    """Builds and caches :class:`CapacitanceLUT` instances.

    Keys quantize the gap distance to a DBU so physically identical columns
    share one table. Safe for concurrent readers and builders: lookups are
    lock-free on the hit path, and misses take a lock around the build so
    racing workers cannot build the same table twice.
    """

    def __init__(self, eps_r: float, thickness_um: float, fill_width_um: float):
        if fill_width_um <= 0:
            raise FillError("fill width must be positive")
        self.eps_r = eps_r
        self.thickness_um = thickness_um
        self.fill_width_um = fill_width_um
        self._cache: dict[tuple[int, int], CapacitanceLUT] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, spacing_um: float, capacity: int, quantum_um: float = 1e-3) -> CapacitanceLUT:
        """LUT for a column with gap ``spacing_um`` and up to ``capacity``
        features. ``quantum_um`` sets the cache key resolution."""
        if capacity < 0:
            raise FillError(f"capacity must be non-negative, got {capacity}")
        key = (round(spacing_um / quantum_um), capacity)
        # dict reads are atomic under the GIL; only the build is locked.
        hit = self._cache.get(key)
        if hit is not None:
            self._hits += 1
            return hit
        with self._lock:
            hit = self._cache.get(key)
            if hit is not None:
                self._hits += 1
                return hit
            self._misses += 1
            lut = self._build(spacing_um, capacity)
            self._cache[key] = lut
            return lut

    def get_batch(
        self,
        specs: Sequence[tuple[float, int]] | Iterable[tuple[float, int]],
        quantum_um: float = 1e-3,
    ) -> list[CapacitanceLUT]:
        """LUTs for many ``(spacing_um, capacity)`` columns at once.

        Deduplicates by quantized key, builds every missing table in one
        locked pass, and returns the tables in input order — the batched
        entry point the vectorized cost-table builder uses.
        """
        specs = list(specs)
        keys = []
        for spacing_um, capacity in specs:
            if capacity < 0:
                raise FillError(f"capacity must be non-negative, got {capacity}")
            keys.append((round(spacing_um / quantum_um), capacity))
        missing: dict[tuple[int, int], tuple[float, int]] = {}
        for key, spec in zip(keys, specs):
            if key not in self._cache and key not in missing:
                missing[key] = spec
        if missing:
            with self._lock:
                for key, (spacing_um, capacity) in missing.items():
                    if key not in self._cache:
                        self._misses += 1
                        self._cache[key] = self._build(spacing_um, capacity)
        self._hits += len(keys) - len(missing)
        return [self._cache[key] for key in keys]

    def snapshot(self) -> LUTSnapshot:
        """Frozen copy of every cached table (sorted for determinism).

        Tables are dumped as plain rows rather than
        :class:`CapacitanceLUT` objects so a warm cache (whose LUTs carry
        memoized numpy arrays) snapshots to the same compact bytes as a
        cold one.
        """
        with self._lock:
            items = sorted(self._cache.items())
        return LUTSnapshot(
            eps_r=self.eps_r,
            thickness_um=self.thickness_um,
            fill_width_um=self.fill_width_um,
            entries=tuple(
                (q, capacity, lut.spacing_um, lut.table)
                for (q, capacity), lut in items
            ),
        )

    @classmethod
    def from_snapshot(cls, snap: LUTSnapshot) -> "LUTCache":
        """Rebuild a warm cache from a :class:`LUTSnapshot` — the worker
        side of the ship-once protocol; restored hits count as hits."""
        cache = cls(snap.eps_r, snap.thickness_um, snap.fill_width_um)
        for q, capacity, spacing_um, table in snap.entries:
            cache._cache[(q, capacity)] = CapacitanceLUT(
                spacing_um, snap.fill_width_um, table
            )
        return cache

    def stats(self) -> dict[str, int]:
        """Cumulative hit/miss counts (approximate under concurrency: the
        counters are plain ints bumped without the lock on the hit path,
        which is fine for telemetry and never affects cached contents)."""
        return {"hits": self._hits, "misses": self._misses}

    def _build(self, spacing_um: float, capacity: int) -> CapacitanceLUT:
        table = exact_column_cap_array(
            self.eps_r, self.thickness_um, spacing_um, capacity, self.fill_width_um
        )
        return CapacitanceLUT(spacing_um, self.fill_width_um, tuple(table.tolist()))

    def __len__(self) -> int:
        return len(self._cache)
