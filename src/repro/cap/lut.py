"""Pre-built capacitance lookup tables for ILP-II (paper Section 5.3).

For each distinct (gap distance, capacity) the exact column capacitance
``f(n, d)`` is tabulated once for ``n = 0 .. capacity``. Tables are cached
by quantized key so the thousands of columns in a layout share a handful
of tables — exactly the pre-building the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cap.fillimpact import exact_column_cap
from repro.errors import FillError


@dataclass(frozen=True)
class CapacitanceLUT:
    """Lumped capacitance increment per feature count for one column
    geometry: ``table[n]`` is ΔC (fF) with ``n`` features in the column."""

    spacing_um: float
    fill_width_um: float
    table: tuple[float, ...]

    @property
    def max_features(self) -> int:
        """Largest tabulated feature count."""
        return len(self.table) - 1

    def cap(self, n: int) -> float:
        """ΔC for ``n`` features."""
        if not 0 <= n <= self.max_features:
            raise FillError(f"feature count {n} outside LUT range 0..{self.max_features}")
        return self.table[n]

    def marginal(self, n: int) -> float:
        """ΔC(n) − ΔC(n−1): the cost of the n-th feature."""
        if not 1 <= n <= self.max_features:
            raise FillError(f"feature count {n} outside LUT range 1..{self.max_features}")
        return self.table[n] - self.table[n - 1]


class LUTCache:
    """Builds and caches :class:`CapacitanceLUT` instances.

    Keys quantize the gap distance to a DBU so physically identical columns
    share one table.
    """

    def __init__(self, eps_r: float, thickness_um: float, fill_width_um: float):
        if fill_width_um <= 0:
            raise FillError("fill width must be positive")
        self.eps_r = eps_r
        self.thickness_um = thickness_um
        self.fill_width_um = fill_width_um
        self._cache: dict[tuple[int, int], CapacitanceLUT] = {}

    def get(self, spacing_um: float, capacity: int, quantum_um: float = 1e-3) -> CapacitanceLUT:
        """LUT for a column with gap ``spacing_um`` and up to ``capacity``
        features. ``quantum_um`` sets the cache key resolution."""
        if capacity < 0:
            raise FillError(f"capacity must be non-negative, got {capacity}")
        key = (round(spacing_um / quantum_um), capacity)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        table = tuple(
            exact_column_cap(self.eps_r, self.thickness_um, spacing_um, n, self.fill_width_um)
            for n in range(capacity + 1)
        )
        lut = CapacitanceLUT(spacing_um, self.fill_width_um, table)
        self._cache[key] = lut
        return lut

    def __len__(self) -> int:
        return len(self._cache)
