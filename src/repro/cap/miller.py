"""Switch-factor (Miller) scaling of coupling capacitance.

Ref [9] of the paper (Kahng-Muddu-Sarto, DAC 2000): when the neighbor of a
victim line switches, the *effective* coupling capacitance seen by the
victim scales by a switch factor — classically 0 (same direction), 1
(quiet neighbor), 2 (opposite direction); tighter analyses use [-1, 3].

Floating fill modifies the line-to-line *coupling*, so its delay impact
inherits the victim/neighbor switching scenario. The paper's tables assume
quiet neighbors (SF = 1, what the plain evaluator reports); these helpers
bound the impact across switching scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FillError

#: Classical switch-factor bounds.
SF_SAME_DIRECTION = 0.0
SF_QUIET = 1.0
SF_OPPOSITE = 2.0
#: Extended bounds from ref [9]'s analysis.
SF_MIN_EXTENDED = -1.0
SF_MAX_EXTENDED = 3.0


def effective_coupling(delta_c_ff: float, switch_factor: float) -> float:
    """Effective coupling capacitance under a switching scenario, fF."""
    if not SF_MIN_EXTENDED <= switch_factor <= SF_MAX_EXTENDED:
        raise FillError(
            f"switch factor {switch_factor} outside [{SF_MIN_EXTENDED}, {SF_MAX_EXTENDED}]"
        )
    return delta_c_ff * switch_factor


@dataclass(frozen=True)
class SwitchingBounds:
    """Delay-impact bounds of a fill placement across switching scenarios.

    All values scale linearly from the quiet-neighbor (SF = 1) impact, so
    only one evaluator pass is needed.
    """

    quiet_ps: float

    @property
    def best_case_ps(self) -> float:
        """Neighbors switching with the victim (SF = 0): fill coupling
        vanishes from the victim's delay."""
        return self.quiet_ps * SF_SAME_DIRECTION

    @property
    def worst_case_ps(self) -> float:
        """Neighbors switching against the victim (SF = 2)."""
        return self.quiet_ps * SF_OPPOSITE

    @property
    def worst_case_extended_ps(self) -> float:
        """Extended worst case (SF = 3, ref [9])."""
        return self.quiet_ps * SF_MAX_EXTENDED

    def at(self, switch_factor: float) -> float:
        """Impact at an arbitrary switch factor."""
        return effective_coupling(self.quiet_ps, switch_factor)


def switching_bounds(quiet_impact_ps: float) -> SwitchingBounds:
    """Wrap an evaluator total (quiet-neighbor assumption) into bounds."""
    if quiet_impact_ps < 0:
        raise FillError("impact must be non-negative")
    return SwitchingBounds(quiet_ps=quiet_impact_ps)
