"""Grounded (tied-to-ground) fill capacitance model.

The paper (Section 1) notes foundries choose between *floating* and
*grounded* dummy fill; the paper's methods assume floating squares. This
module provides the grounded counterpart so the trade-off can be
quantified (see ``benchmarks/test_bench_ablation_filltype.py``):

* a grounded column *screens* the line-to-line lateral coupling under its
  footprint (the fill is an AC ground between the lines), and
* each line instead sees a plate capacitance to the grounded stack at the
  distance of its nearest feature.

Assuming the ``m`` features are stacked symmetrically in the gap (centered
— the placement that minimizes the added capacitance), each side clearance
is ``(d − m·w − (m−1)·g) / 2`` and the per-line lumped increment over the
column footprint ``w`` is

    ΔC_line(m) = ε₀ ε_r t w (1/side(m) − 1/d)      for m ≥ 1

which is strictly larger than the floating increment at the same count —
grounded fill is electrically safer to model but costlier, matching
industry practice. For single-neighbor (boundary) columns grounded fill is
*not* free: the line sees ε₀ ε_r t w / side, with the stack pushed to the
far end of the column span.

Note the table is NOT globally convex in ``m``: the 0 → 1 marginal (a
ground plate appearing where there was none) dominates all later
marginals; convexity holds from ``m ≥ 1``. Allocators that rely on convex
marginals (marginal greedy, MVDC) are therefore only heuristic for
grounded fill — use the DP or ILP solvers for exact results.
"""

from __future__ import annotations

from repro.errors import FillError
from repro.units import EPS0_FF_PER_UM


def grounded_stack_extent(m: int, fill_width_um: float, fill_gap_um: float) -> float:
    """Cross-axis extent of a stack of ``m`` features (µm)."""
    if m <= 0:
        return 0.0
    return m * fill_width_um + (m - 1) * fill_gap_um


def grounded_column_cap_per_line(
    eps_r: float,
    thickness_um: float,
    spacing_um: float,
    m: int,
    fill_width_um: float,
    fill_gap_um: float,
) -> float:
    """Lumped capacitance increment seen by *each* line of the pair, fF.

    Zero when ``m == 0``; raises when the stack (plus any clearance) no
    longer fits in the gap.
    """
    _check(eps_r, thickness_um, spacing_um, m, fill_width_um, fill_gap_um)
    if m == 0:
        return 0.0
    extent = grounded_stack_extent(m, fill_width_um, fill_gap_um)
    side = (spacing_um - extent) / 2.0
    if side <= 0:
        raise FillError(
            f"{m} grounded features (extent {extent:.3f}) do not fit in gap "
            f"{spacing_um:.3f} with symmetric clearance"
        )
    base = EPS0_FF_PER_UM * eps_r * thickness_um * fill_width_um
    return base * (1.0 / side - 1.0 / spacing_um)


def grounded_boundary_cap(
    eps_r: float,
    thickness_um: float,
    span_um: float,
    m: int,
    fill_width_um: float,
    fill_gap_um: float,
    min_clearance_um: float,
) -> float:
    """Increment on a line whose column has no opposite neighbor, fF.

    The stack is pushed to the far end of the ``span_um`` column extent;
    the clearance to the line is ``span − extent`` but never less than
    ``min_clearance_um`` (the buffer distance).
    """
    _check(eps_r, thickness_um, span_um, m, fill_width_um, fill_gap_um)
    if m == 0:
        return 0.0
    extent = grounded_stack_extent(m, fill_width_um, fill_gap_um)
    clearance = max(span_um - extent, min_clearance_um)
    if clearance <= 0:
        raise FillError("grounded boundary stack has non-positive clearance")
    base = EPS0_FF_PER_UM * eps_r * thickness_um * fill_width_um
    return base / clearance


def grounded_column_table(
    eps_r: float,
    thickness_um: float,
    spacing_um: float,
    capacity: int,
    fill_width_um: float,
    fill_gap_um: float,
) -> tuple[float, ...]:
    """Per-count table of the per-line grounded increment, analogous to the
    floating :class:`~repro.cap.lut.CapacitanceLUT` tables."""
    if capacity < 0:
        raise FillError(f"capacity must be non-negative, got {capacity}")
    return tuple(
        grounded_column_cap_per_line(
            eps_r, thickness_um, spacing_um, m, fill_width_um, fill_gap_um
        )
        for m in range(capacity + 1)
    )


def _check(
    eps_r: float,
    thickness_um: float,
    spacing_um: float,
    m: int,
    fill_width_um: float,
    fill_gap_um: float,
) -> None:
    if eps_r <= 0 or thickness_um <= 0:
        raise FillError("eps_r and thickness must be positive")
    if spacing_um <= 0:
        raise FillError(f"gap/span must be positive, got {spacing_um}")
    if fill_width_um <= 0:
        raise FillError(f"fill width must be positive, got {fill_width_um}")
    if fill_gap_um < 0:
        raise FillError(f"fill gap must be non-negative, got {fill_gap_um}")
    if m < 0:
        raise FillError(f"feature count must be non-negative, got {m}")
