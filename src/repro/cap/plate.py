"""Parallel-plate coupling capacitance primitives (paper Eqs. 2-4).

Geometry convention: two parallel active lines on the same layer, metal
thickness ``t`` (µm), edge-to-edge spacing ``d`` (µm). The facing "plate"
per unit length of overlap has area ``t × 1``, so the per-unit-length
lateral coupling is ``C_B = ε₀ ε_r t / d`` (Eq. 3). All capacitances in
fF, lengths in µm.
"""

from __future__ import annotations

from repro.errors import FillError
from repro.units import EPS0_FF_PER_UM


def coupling_per_um(eps_r: float, thickness_um: float, spacing_um: float) -> float:
    """Per-unit-length lateral coupling between two parallel lines, fF/µm
    (paper Eq. 3)."""
    if spacing_um <= 0:
        raise FillError(f"line spacing must be positive, got {spacing_um}")
    if eps_r <= 0 or thickness_um <= 0:
        raise FillError("eps_r and thickness must be positive")
    return EPS0_FF_PER_UM * eps_r * thickness_um / spacing_um


def line_coupling(eps_r: float, thickness_um: float, spacing_um: float, overlap_um: float) -> float:
    """Total coupling between two parallel lines with overlap length
    ``overlap_um``, fF (paper Eq. 2)."""
    if overlap_um < 0:
        raise FillError(f"overlap length must be non-negative, got {overlap_um}")
    return coupling_per_um(eps_r, thickness_um, spacing_um) * overlap_um


def series_caps(*caps: float) -> float:
    """Series combination ``1 / Σ(1/C_i)`` (paper Eq. 4's
    ``1/(1/C_A + 1/C_C + 1/C_A)`` pattern). Zero capacitances make the
    chain an open circuit (returns 0)."""
    if not caps:
        raise FillError("series_caps needs at least one capacitance")
    total = 0.0
    for c in caps:
        if c < 0:
            raise FillError(f"capacitance must be non-negative, got {c}")
        if c == 0.0:  # pilfill: allow[D104] -- exact-zero sentinel: 0.0 means open circuit, not a computed small value
            return 0.0
        total += 1.0 / c
    return 1.0 / total
