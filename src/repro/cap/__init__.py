"""Capacitance models for floating fill (paper Section 3)."""

from repro.cap.plate import coupling_per_um, line_coupling, series_caps
from repro.cap.fillimpact import (
    exact_column_cap,
    exact_column_cap_array,
    exact_gap_cap_per_um,
    linear_column_cap,
    linear_column_cap_array,
)
from repro.cap.lut import CapacitanceLUT, LUTCache, LUTSnapshot
from repro.cap.grounded import (
    grounded_boundary_cap,
    grounded_column_cap_per_line,
    grounded_column_table,
    grounded_stack_extent,
)
from repro.cap.miller import (
    SF_OPPOSITE,
    SF_QUIET,
    SF_SAME_DIRECTION,
    SwitchingBounds,
    effective_coupling,
    switching_bounds,
)

__all__ = [
    "grounded_boundary_cap",
    "grounded_column_cap_per_line",
    "grounded_column_table",
    "grounded_stack_extent",
    "SF_OPPOSITE",
    "SF_QUIET",
    "SF_SAME_DIRECTION",
    "SwitchingBounds",
    "effective_coupling",
    "switching_bounds",
    "coupling_per_um",
    "line_coupling",
    "series_caps",
    "exact_column_cap",
    "exact_column_cap_array",
    "exact_gap_cap_per_um",
    "linear_column_cap",
    "linear_column_cap_array",
    "CapacitanceLUT",
    "LUTCache",
    "LUTSnapshot",
]
