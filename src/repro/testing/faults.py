"""Deterministic, picklable fault injection for the solve path.

The robust solve layer (:mod:`repro.pilfill.robust`) calls :func:`inject`
at every per-tile solve attempt with ``(tile key, method, attempt)``. A
:class:`FaultSpec` — threaded through ``EngineConfig.fault_spec`` and the
process-pool :class:`~repro.pilfill.parallel.TilePayload` — decides
whether that attempt raises, and what:

* ``kind="error"`` raises :class:`~repro.errors.SolverError` — a generic
  backend failure; the fallback chain degrades to the next method.
* ``kind="timeout"`` raises :class:`~repro.errors.SolveTimeoutError` — a
  simulated deadline; degrades without a same-method retry.
* ``kind="worker_death"`` raises :class:`~repro.errors.WorkerDeathError`
  — escapes the fallback chain entirely (nothing inside a dead worker can
  run recovery code) so the *dispatcher* retry path is exercised.

Everything is stateless: a rule fires based on the attempt *number*, not
on a counter, so behavior is identical whether the retry happens in the
same process (thread backend) or in the parent after a pool worker died
(process backend), and identical across repeated runs.

Two injection channels exist so both in-process and pool-worker solves
can be targeted: an explicit spec argument (what the engine threads
through), and a module-global :data:`ACTIVE_SPEC` set via the
:func:`activate` context manager (handy in tests that cannot reach the
config, serial/thread backends only — pool workers do not inherit it).
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import FillError, SolverError, SolveTimeoutError, WorkerDeathError

TileKey = tuple[int, int]

#: Accepted fault kinds.
FAULT_KINDS = ("error", "timeout", "worker_death")

#: Module-global spec consulted by :func:`inject` in addition to the
#: explicit argument. Set it via :func:`activate`, not directly.
ACTIVE_SPEC: "FaultSpec | None" = None


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *which* fault, *where*, and *when*.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        tiles: tile keys the rule applies to; ``None`` means every tile.
        methods: method names the rule applies to (``"ilp2"``, ``"mvdc"``,
            ...); ``None`` means every method.
        attempts: dispatcher attempt numbers the rule fires on. ``(0,)``
            models a *transient* fault (first attempt fails, the retry
            succeeds); ``None`` models a *persistent* fault (every attempt
            fails, forcing the fallback chain / failed-tile path).
    """

    kind: str
    tiles: frozenset[TileKey] | None = None
    methods: tuple[str, ...] | None = None
    attempts: tuple[int, ...] | None = (0,)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FillError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )

    def matches(self, key: TileKey, method: str, attempt: int) -> bool:
        if self.tiles is not None and key not in self.tiles:
            return False
        if self.methods is not None and method not in self.methods:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return True

    def fire(self, key: TileKey, method: str, attempt: int) -> None:
        detail = f"injected {self.kind} fault: tile {key} method {method} attempt {attempt}"
        if self.kind == "worker_death":
            raise WorkerDeathError(detail)
        if self.kind == "timeout":
            raise SolveTimeoutError(detail)
        raise SolverError(detail)


@dataclass(frozen=True)
class FaultSpec:
    """An ordered set of :class:`FaultRule`; the first match fires.

    Frozen and built from hashable containers so it pickles into the
    process-pool tile payloads unchanged.
    """

    rules: tuple[FaultRule, ...] = ()

    @staticmethod
    def single(
        kind: str,
        tiles: Iterable[TileKey] | None = None,
        methods: Sequence[str] | None = None,
        attempts: Sequence[int] | None = (0,),
    ) -> "FaultSpec":
        """Convenience constructor for the common one-rule spec."""
        return FaultSpec(
            rules=(
                FaultRule(
                    kind=kind,
                    tiles=None if tiles is None else frozenset(tiles),
                    methods=None if methods is None else tuple(methods),
                    attempts=None if attempts is None else tuple(attempts),
                ),
            )
        )

    def check(self, key: TileKey, method: str, attempt: int) -> None:
        """Raise the first matching rule's fault, if any."""
        for rule in self.rules:
            if rule.matches(key, method, attempt):
                rule.fire(key, method, attempt)


def inject(key: TileKey, method: str, attempt: int, spec: FaultSpec | None = None) -> None:
    """The hook the robust solve layer calls before every attempt.

    Checks the explicit ``spec`` first, then the module-global
    :data:`ACTIVE_SPEC`. Tests may also monkeypatch this function
    wholesale to inject arbitrary behavior.
    """
    if spec is not None:
        spec.check(key, method, attempt)
    if ACTIVE_SPEC is not None:
        ACTIVE_SPEC.check(key, method, attempt)


@contextmanager
def activate(spec: FaultSpec) -> Iterator[FaultSpec]:
    """Temporarily install ``spec`` as the module-global fault source.

    Serial/thread backends only — pool workers run in other processes and
    do not see this global; ship the spec through ``EngineConfig.fault_spec``
    (and thus the tile payloads) to reach them.
    """
    global ACTIVE_SPEC  # pilfill: allow[C201] -- documented serial/thread-only test channel; pool workers get specs via TilePayload.fault_spec
    previous = ACTIVE_SPEC
    ACTIVE_SPEC = spec
    try:
        yield spec
    finally:
        ACTIVE_SPEC = previous


def sample_tiles(keys: Iterable[TileKey], fraction: float, seed: int = 0) -> frozenset[TileKey]:
    """A deterministic ``fraction`` of ``keys`` (at least one when any
    exist and ``fraction > 0``) — for specs like "kill ILP-II on 20% of
    tiles". Selection depends only on the sorted key set and the seed,
    never on iteration order.
    """
    if not 0.0 <= fraction <= 1.0:
        raise FillError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(set(keys))
    if not ordered or fraction == 0.0:
        return frozenset()
    count = max(1, round(fraction * len(ordered)))
    rng = random.Random(f"faults:{seed}")
    return frozenset(rng.sample(ordered, count))
