"""Deterministic fault injection for exercising the robust solve layer.

Not imported by any production code path unless a
:class:`~repro.testing.faults.FaultSpec` is explicitly configured — the
module exists so CI can *provoke* solver faults (errors, timeouts, worker
death) on chosen tiles and verify the engine degrades instead of dying.
"""

from repro.testing.faults import (
    FaultRule,
    FaultSpec,
    activate,
    inject,
    sample_tiles,
)

__all__ = ["FaultRule", "FaultSpec", "activate", "inject", "sample_tiles"]
