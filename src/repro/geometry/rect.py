"""Axis-aligned integer rectangles.

Rectangles use half-open semantics for area accounting: a rectangle spans
``[xlo, xhi) x [ylo, yhi)``. Degenerate (zero-width or zero-height)
rectangles are allowed only through :meth:`Rect.maybe` / intersection
results where they signal "no overlap"; the constructor rejects inverted
extents outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import GeometryError
from repro.geometry.point import Point


@dataclass(frozen=True, order=True)
class Rect:
    """Immutable axis-aligned rectangle in DBU, ``xlo <= xhi``, ``ylo <= yhi``."""

    xlo: int
    ylo: int
    xhi: int
    yhi: int

    def __post_init__(self) -> None:
        for name in ("xlo", "ylo", "xhi", "yhi"):
            if not isinstance(getattr(self, name), int):
                raise GeometryError(f"Rect.{name} must be an integer, got {getattr(self, name)!r}")
        if self.xhi < self.xlo or self.yhi < self.ylo:
            raise GeometryError(
                f"Rect extents inverted: ({self.xlo},{self.ylo})-({self.xhi},{self.yhi})"
            )

    # -- basic measures ----------------------------------------------------

    @property
    def width(self) -> int:
        """Extent along x."""
        return self.xhi - self.xlo

    @property
    def height(self) -> int:
        """Extent along y."""
        return self.yhi - self.ylo

    @property
    def area(self) -> int:
        """Area in DBU²."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Center point, rounded down to the lattice."""
        return Point((self.xlo + self.xhi) // 2, (self.ylo + self.yhi) // 2)

    def is_empty(self) -> bool:
        """True when the rectangle has zero area."""
        return self.width == 0 or self.height == 0

    # -- predicates ----------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """Half-open containment test."""
        return self.xlo <= p.x < self.xhi and self.ylo <= p.y < self.yhi

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and other.xhi <= self.xhi
            and other.yhi <= self.yhi
        )

    def overlaps(self, other: "Rect") -> bool:
        """True when the open interiors intersect (touching edges don't count)."""
        return (
            self.xlo < other.xhi
            and other.xlo < self.xhi
            and self.ylo < other.yhi
            and other.ylo < self.yhi
        )

    def touches(self, other: "Rect") -> bool:
        """True when the closed rectangles intersect (shared edges count)."""
        return (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
        )

    # -- constructive ops ----------------------------------------------------

    def intersection(self, other: "Rect") -> "Rect | None":
        """Overlap region, or None when interiors are disjoint."""
        xlo = max(self.xlo, other.xlo)
        ylo = max(self.ylo, other.ylo)
        xhi = min(self.xhi, other.xhi)
        yhi = min(self.yhi, other.yhi)
        if xhi <= xlo or yhi <= ylo:
            return None
        return Rect(xlo, ylo, xhi, yhi)

    def overlap_area(self, other: "Rect") -> int:
        """Area of the intersection (0 when disjoint)."""
        inter = self.intersection(other)
        return 0 if inter is None else inter.area

    def union_bbox(self, other: "Rect") -> "Rect":
        """Smallest rectangle containing both."""
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def expanded(self, margin: int) -> "Rect":
        """Rectangle grown (or shrunk for negative margin) by ``margin`` on
        every side. Shrinking below zero extent collapses to the center."""
        xlo, xhi = self.xlo - margin, self.xhi + margin
        ylo, yhi = self.ylo - margin, self.yhi + margin
        if xhi < xlo:
            xlo = xhi = (xlo + xhi) // 2
        if yhi < ylo:
            ylo = yhi = (ylo + yhi) // 2
        return Rect(xlo, ylo, xhi, yhi)

    def translated(self, dx: int, dy: int) -> "Rect":
        """Rectangle moved by ``(dx, dy)``."""
        return Rect(self.xlo + dx, self.ylo + dy, self.xhi + dx, self.yhi + dy)

    def subtract(self, other: "Rect") -> list["Rect"]:
        """Rectilinear difference ``self - other`` as up to 4 disjoint rects
        (in bottom / top / left / right order)."""
        inter = self.intersection(other)
        if inter is None:
            return [self]
        pieces: list[Rect] = []
        if inter.ylo > self.ylo:  # strip below
            pieces.append(Rect(self.xlo, self.ylo, self.xhi, inter.ylo))
        if inter.yhi < self.yhi:  # strip above
            pieces.append(Rect(self.xlo, inter.yhi, self.xhi, self.yhi))
        if inter.xlo > self.xlo:  # strip left (clipped to inter's y band)
            pieces.append(Rect(self.xlo, inter.ylo, inter.xlo, inter.yhi))
        if inter.xhi < self.xhi:  # strip right
            pieces.append(Rect(inter.xhi, inter.ylo, self.xhi, inter.yhi))
        return pieces

    # -- iteration helpers -----------------------------------------------------

    def corners(self) -> Iterator[Point]:
        """Yield the four corners counter-clockwise from (xlo, ylo)."""
        yield Point(self.xlo, self.ylo)
        yield Point(self.xhi, self.ylo)
        yield Point(self.xhi, self.yhi)
        yield Point(self.xlo, self.yhi)

    @staticmethod
    def bounding(rects: Iterable["Rect"]) -> "Rect":
        """Bounding box of a non-empty iterable of rectangles."""
        it = iter(rects)
        try:
            acc = next(it)
        except StopIteration:
            raise GeometryError("Rect.bounding requires at least one rectangle") from None
        for r in it:
            acc = acc.union_bbox(r)
        return acc


def total_area(rects: Iterable[Rect]) -> int:
    """Exact area of the union of ``rects`` (coordinate-compression sweep).

    Used by density accounting when features may overlap; O(n² log n) in the
    number of rectangles, fine for per-tile feature counts.
    """
    rects = [r for r in rects if not r.is_empty()]
    if not rects:
        return 0
    xs = sorted({r.xlo for r in rects} | {r.xhi for r in rects})
    area = 0
    for xa, xb in zip(xs, xs[1:]):
        # y-intervals of rects covering this x-slab
        ys = sorted(
            (r.ylo, r.yhi) for r in rects if r.xlo <= xa and r.xhi >= xb
        )
        covered = 0
        cur_lo = cur_hi = None
        for ylo, yhi in ys:
            if cur_hi is None or ylo > cur_hi:
                if cur_hi is not None:
                    covered += cur_hi - cur_lo
                cur_lo, cur_hi = ylo, yhi
            else:
                cur_hi = max(cur_hi, yhi)
        if cur_hi is not None:
            covered += cur_hi - cur_lo
        area += (xb - xa) * covered
    return area
