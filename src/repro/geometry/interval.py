"""1-D integer intervals and interval sets.

The scan-line slack-column extraction (paper Fig. 7) and the slack-site
computation both reduce to boolean algebra on 1-D intervals: "the x-range of
the tile minus the x-ranges blocked by active lines plus buffer distance".
:class:`IntervalSet` keeps a canonical sorted list of disjoint, non-touching
half-open intervals and supports union / subtraction / intersection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import GeometryError


@dataclass(frozen=True, order=True)
class Interval:
    """Half-open integer interval ``[lo, hi)`` with ``lo <= hi``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not isinstance(self.lo, int) or not isinstance(self.hi, int):
            raise GeometryError(f"Interval bounds must be integers, got ({self.lo!r}, {self.hi!r})")
        if self.hi < self.lo:
            raise GeometryError(f"Interval inverted: [{self.lo}, {self.hi})")

    @property
    def length(self) -> int:
        """Number of lattice units covered."""
        return self.hi - self.lo

    def is_empty(self) -> bool:
        """True for zero-length intervals."""
        return self.hi == self.lo

    def contains(self, value: int) -> bool:
        """Half-open membership test."""
        return self.lo <= value < self.hi

    def overlaps(self, other: "Interval") -> bool:
        """True when open interiors intersect."""
        return self.lo < other.hi and other.lo < self.hi

    def intersection(self, other: "Interval") -> "Interval | None":
        """Overlap, or None when interiors are disjoint."""
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if hi <= lo:
            return None
        return Interval(lo, hi)

    def shifted(self, delta: int) -> "Interval":
        """Interval translated by ``delta``."""
        return Interval(self.lo + delta, self.hi + delta)

    def expanded(self, margin: int) -> "Interval":
        """Interval grown by ``margin`` at both ends (collapses to a point
        when shrunk past zero)."""
        lo, hi = self.lo - margin, self.hi + margin
        if hi < lo:
            lo = hi = (lo + hi) // 2
        return Interval(lo, hi)


class IntervalSet:
    """A canonical union of disjoint half-open integer intervals.

    Internally stored sorted and merged (touching intervals coalesce), so
    equality and iteration order are deterministic.
    """

    __slots__ = ("_ivs",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        self._ivs: list[Interval] = self._normalize(intervals)

    @staticmethod
    def _normalize(intervals: Iterable[Interval]) -> list[Interval]:
        items = sorted(iv for iv in intervals if not iv.is_empty())
        merged: list[Interval] = []
        for iv in items:
            if merged and iv.lo <= merged[-1].hi:
                if iv.hi > merged[-1].hi:
                    merged[-1] = Interval(merged[-1].lo, iv.hi)
            else:
                merged.append(iv)
        return merged

    # -- container protocol -----------------------------------------------

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivs)

    def __len__(self) -> int:
        return len(self._ivs)

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivs == other._ivs

    def __hash__(self) -> int:
        return hash(tuple(self._ivs))

    def __repr__(self) -> str:
        body = ", ".join(f"[{iv.lo},{iv.hi})" for iv in self._ivs)
        return f"IntervalSet({body})"

    @property
    def intervals(self) -> Sequence[Interval]:
        """The canonical disjoint intervals, sorted ascending."""
        return tuple(self._ivs)

    @property
    def total_length(self) -> int:
        """Sum of interval lengths (measure of the set)."""
        return sum(iv.length for iv in self._ivs)

    def contains(self, value: int) -> bool:
        """Membership test (binary search)."""
        lo, hi = 0, len(self._ivs)
        while lo < hi:
            mid = (lo + hi) // 2
            iv = self._ivs[mid]
            if value < iv.lo:
                hi = mid
            elif value >= iv.hi:
                lo = mid + 1
            else:
                return True
        return False

    # -- boolean algebra -----------------------------------------------------

    def union(self, other: "IntervalSet | Interval") -> "IntervalSet":
        """Set union."""
        other_ivs = [other] if isinstance(other, Interval) else list(other)
        return IntervalSet(list(self._ivs) + other_ivs)

    def intersection(self, other: "IntervalSet | Interval") -> "IntervalSet":
        """Set intersection (linear merge)."""
        other_ivs = [other] if isinstance(other, Interval) else list(other)
        result: list[Interval] = []
        i = j = 0
        a, b = self._ivs, other_ivs
        while i < len(a) and j < len(b):
            inter = a[i].intersection(b[j])
            if inter is not None:
                result.append(inter)
            if a[i].hi <= b[j].hi:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def subtract(self, other: "IntervalSet | Interval") -> "IntervalSet":
        """Set difference ``self - other``."""
        other_ivs = [other] if isinstance(other, Interval) else list(other)
        other_ivs = IntervalSet(other_ivs)._ivs
        result: list[Interval] = []
        for iv in self._ivs:
            cursor = iv.lo
            for cut in other_ivs:
                if cut.hi <= cursor:
                    continue
                if cut.lo >= iv.hi:
                    break
                if cut.lo > cursor:
                    result.append(Interval(cursor, min(cut.lo, iv.hi)))
                cursor = max(cursor, cut.hi)
                if cursor >= iv.hi:
                    break
            if cursor < iv.hi:
                result.append(Interval(cursor, iv.hi))
        return IntervalSet(result)

    def clipped(self, window: Interval) -> "IntervalSet":
        """Intersection with a single interval, as a new set."""
        return self.intersection(window)
