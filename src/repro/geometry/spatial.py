"""Uniform-grid spatial index for rectangle queries.

The layout holds thousands of wire segments; density accounting and
slack-site computation repeatedly ask "which segments overlap this tile?".
A uniform bin grid answers that in near-constant time for well-distributed
layouts, which is exactly what routed layers look like.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Generic, Hashable, Iterable, Iterator, TypeVar

from repro.errors import GeometryError
from repro.geometry.rect import Rect

T = TypeVar("T", bound=Hashable)


class GridBinIndex(Generic[T]):
    """Spatial hash of items keyed by their bounding rectangles.

    Items are inserted with an explicit :class:`Rect`; queries return each
    matching item exactly once even when it spans multiple bins.
    """

    def __init__(self, bin_size: int):
        if bin_size <= 0:
            raise GeometryError(f"bin_size must be positive, got {bin_size}")
        self._bin_size = bin_size
        self._bins: dict[tuple[int, int], list[tuple[Rect, T]]] = defaultdict(list)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _bin_range(self, rect: Rect) -> Iterator[tuple[int, int]]:
        b = self._bin_size
        # Half-open rect: the bin containing xhi-1 is the last one touched.
        bx0, bx1 = rect.xlo // b, max(rect.xlo, rect.xhi - 1) // b
        by0, by1 = rect.ylo // b, max(rect.ylo, rect.yhi - 1) // b
        for bx in range(bx0, bx1 + 1):
            for by in range(by0, by1 + 1):
                yield (bx, by)

    def insert(self, rect: Rect, item: T) -> None:
        """Index ``item`` under ``rect``."""
        for key in self._bin_range(rect):
            self._bins[key].append((rect, item))
        self._count += 1

    def insert_many(self, pairs: Iterable[tuple[Rect, T]]) -> None:
        """Bulk insert of ``(rect, item)`` pairs."""
        for rect, item in pairs:
            self.insert(rect, item)

    def query(self, region: Rect) -> list[T]:
        """Items whose rects overlap ``region`` (open-interior overlap),
        each reported once, in insertion-deterministic order.

        A degenerate ``region`` (zero width or height) has an empty
        interior and overlaps nothing — ``Rect.overlaps`` alone would
        report a zero-area rect strictly *inside* an item, which is the
        wrong answer for window queries (an empty dirty window must
        dirty no tiles).
        """
        if region.width <= 0 or region.height <= 0:
            return []
        seen: set[T] = set()
        out: list[T] = []
        for key in self._bin_range(region):
            for rect, item in self._bins.get(key, ()):
                if item not in seen and rect.overlaps(region):
                    seen.add(item)
                    out.append(item)
        return out

    def query_pairs(self, region: Rect) -> list[tuple[Rect, T]]:
        """Like :meth:`query` but returns the stored rect alongside the item."""
        if region.width <= 0 or region.height <= 0:
            return []
        seen: set[T] = set()
        out: list[tuple[Rect, T]] = []
        for key in self._bin_range(region):
            for rect, item in self._bins.get(key, ()):
                if item not in seen and rect.overlaps(region):
                    seen.add(item)
                    out.append((rect, item))
        return out
