"""Site grids: mapping between DBU coordinates and discrete fill sites.

Fill features are squares of side ``site_size`` placed on a uniform grid
with pitch ``site_pitch = site_size + site_gap`` anchored at the grid
origin. A *site* is addressed by integer column/row indices ``(col, row)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class SiteGrid:
    """Uniform square fill-site grid over a region.

    Attributes:
        origin_x, origin_y: DBU coordinates of the lower-left corner of
            site ``(0, 0)``.
        site_size: side of the square fill feature, DBU.
        site_gap: spacing between adjacent fill features, DBU.
    """

    origin_x: int
    origin_y: int
    site_size: int
    site_gap: int

    def __post_init__(self) -> None:
        if self.site_size <= 0:
            raise GeometryError(f"site_size must be positive, got {self.site_size}")
        if self.site_gap < 0:
            raise GeometryError(f"site_gap must be non-negative, got {self.site_gap}")

    @property
    def pitch(self) -> int:
        """Distance between the lower-left corners of adjacent sites."""
        return self.site_size + self.site_gap

    def site_rect(self, col: int, row: int) -> Rect:
        """Geometry of site ``(col, row)``."""
        x = self.origin_x + col * self.pitch
        y = self.origin_y + row * self.pitch
        return Rect(x, y, x + self.site_size, y + self.site_size)

    def col_at(self, x: int) -> int:
        """Column index of the site whose pitch cell contains ``x``
        (floor division — works for coordinates left of the origin too)."""
        return (x - self.origin_x) // self.pitch

    def row_at(self, y: int) -> int:
        """Row index of the site whose pitch cell contains ``y``."""
        return (y - self.origin_y) // self.pitch

    def cols_fully_inside(self, xlo: int, xhi: int) -> range:
        """Range of columns whose site squares fit entirely in ``[xlo, xhi)``."""
        if xhi - xlo < self.site_size:
            return range(0)
        first = self.col_at(xlo + self.pitch - 1)  # ceil to next cell start
        if self.origin_x + first * self.pitch < xlo:
            first += 1
        # last col c such that origin + c*pitch + site_size <= xhi
        last = (xhi - self.site_size - self.origin_x) // self.pitch
        return range(first, last + 1) if last >= first else range(0)

    def rows_fully_inside(self, ylo: int, yhi: int) -> range:
        """Range of rows whose site squares fit entirely in ``[ylo, yhi)``."""
        if yhi - ylo < self.site_size:
            return range(0)
        first = self.row_at(ylo + self.pitch - 1)
        if self.origin_y + first * self.pitch < ylo:
            first += 1
        last = (yhi - self.site_size - self.origin_y) // self.pitch
        return range(first, last + 1) if last >= first else range(0)

    def sites_fully_inside(self, region: Rect) -> list[tuple[int, int]]:
        """All ``(col, row)`` whose squares fit entirely inside ``region``."""
        cols = self.cols_fully_inside(region.xlo, region.xhi)
        rows = self.rows_fully_inside(region.ylo, region.yhi)
        return [(c, r) for c in cols for r in rows]
