"""Geometric primitives: points, rectangles, intervals, site grids, and a
uniform-bin spatial index. All coordinates are integer DBU."""

from repro.geometry.point import Point
from repro.geometry.rect import Rect, total_area
from repro.geometry.interval import Interval, IntervalSet
from repro.geometry.grid import SiteGrid
from repro.geometry.spatial import GridBinIndex

__all__ = [
    "Point",
    "Rect",
    "total_area",
    "Interval",
    "IntervalSet",
    "SiteGrid",
    "GridBinIndex",
]
