"""Integer lattice points in DBU coordinates."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError


@dataclass(frozen=True, order=True)
class Point:
    """An immutable 2-D point in integer database units.

    Ordering is lexicographic ``(x, y)`` which is what scan-line sorting
    wants for vertical sweeps; use ``key=lambda p: (p.y, p.x)`` for
    horizontal sweeps.
    """

    x: int
    y: int

    def __post_init__(self) -> None:
        if not isinstance(self.x, int) or not isinstance(self.y, int):
            raise GeometryError(f"Point coordinates must be integers, got ({self.x!r}, {self.y!r})")

    def translated(self, dx: int, dy: int) -> "Point":
        """Return this point moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def manhattan_distance(self, other: "Point") -> int:
        """L1 distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def as_tuple(self) -> tuple[int, int]:
        """Return ``(x, y)``."""
        return (self.x, self.y)
