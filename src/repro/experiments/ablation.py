"""Programmatic ablation studies for the design choices DESIGN.md calls
out. Each study returns plain dataclass rows plus a ``format_*`` helper so
the CLI, the benchmarks, and notebooks share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cap import exact_column_cap, grounded_column_table, linear_column_cap
from repro.errors import ReproError
from repro.layout.layout import RoutedLayout
from repro.pilfill import (
    EngineConfig,
    PILFillEngine,
    SlackColumnDef,
    evaluate_impact,
)
from repro.synth import (
    default_fill_rules,
    density_rules_for,
    generate_layout,
    t1_spec,
)
from repro.tech.rules import FillRules


# -- A: slack-column definitions ------------------------------------------------


@dataclass(frozen=True)
class ColumnDefRow:
    definition: str
    features: int
    shortfall: int
    weighted_tau_ps: float


def ablation_column_definitions(
    layout: RoutedLayout,
    layer: str = "metal3",
    window_um: int = 32,
    r: int = 2,
    method: str = "greedy",
) -> list[ColumnDefRow]:
    """Capacity and delay impact under definitions I/II/III (paper §5.1)."""
    rules = default_fill_rules(layout.stack)
    rows = []
    for definition in SlackColumnDef:
        config = EngineConfig(
            fill_rules=rules,
            density_rules=density_rules_for(window_um, r, layout.stack),
            method=method,
            column_def=definition,
            backend="scipy",
        )
        result = PILFillEngine(layout, layer, config).run()
        impact = evaluate_impact(layout, layer, result.features, rules)
        rows.append(
            ColumnDefRow(
                definition=definition.value,
                features=result.total_features,
                shortfall=result.shortfall,
                weighted_tau_ps=impact.weighted_total_ps,
            )
        )
    return rows


def format_column_definitions(rows: list[ColumnDefRow]) -> str:
    lines = [
        "Slack-column definitions (paper §5.1):",
        f"{'def':>5}{'features':>10}{'shortfall':>11}{'wtau (ps)':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row.definition:>5}{row.features:>10d}{row.shortfall:>11d}"
            f"{row.weighted_tau_ps:>12.4f}"
        )
    return "\n".join(lines)


# -- B: capacitance models (linear vs exact vs grounded) -----------------------


@dataclass(frozen=True)
class CapModelRow:
    gap_um: float
    m: int
    linear_ff: float
    exact_ff: float
    grounded_ff: float

    @property
    def exact_over_linear(self) -> float:
        return self.exact_ff / self.linear_ff if self.linear_ff > 0 else float("inf")

    @property
    def grounded_over_exact(self) -> float:
        return self.grounded_ff / self.exact_ff if self.exact_ff > 0 else float("inf")


def ablation_cap_models(
    rules: FillRules | None = None,
    eps_r: float = 3.9,
    thickness_um: float = 0.5,
    gaps_um: tuple[float, ...] = (1.5, 2.0, 4.0, 8.0, 16.0),
    dbu_per_micron: int = 1000,
) -> list[CapModelRow]:
    """Linear (Eq. 6) vs exact (Eq. 5) vs grounded column capacitance at
    full column fill, per gap size."""
    if rules is None:
        rules = FillRules(fill_size=500, fill_gap=250, buffer_distance=250)
    w = rules.fill_size / dbu_per_micron
    g = rules.fill_gap / dbu_per_micron
    rows = []
    for gap in gaps_um:
        # Grounded stacks need symmetric clearance; pick the largest count
        # valid for both models.
        m = 0
        while (
            (m + 1) * w < gap
            and (m + 1) * w + m * g < gap - 1e-12
        ):
            m += 1
        if m == 0:
            continue
        grounded = grounded_column_table(eps_r, thickness_um, gap, m, w, g)[m]
        rows.append(
            CapModelRow(
                gap_um=gap,
                m=m,
                linear_ff=linear_column_cap(eps_r, thickness_um, gap, m, w),
                exact_ff=exact_column_cap(eps_r, thickness_um, gap, m, w),
                grounded_ff=grounded,
            )
        )
    return rows


def format_cap_models(rows: list[CapModelRow]) -> str:
    lines = [
        "Capacitance models at full column fill:",
        f"{'gap (um)':>9}{'m':>4}{'linear fF':>11}{'exact fF':>10}"
        f"{'grounded fF':>12}{'exact/lin':>10}{'gnd/exact':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row.gap_um:>9.1f}{row.m:>4d}{row.linear_ff:>11.5f}"
            f"{row.exact_ff:>10.5f}{row.grounded_ff:>12.5f}"
            f"{row.exact_over_linear:>10.2f}{row.grounded_over_exact:>10.2f}"
        )
    return "\n".join(lines)


# -- C: capacity margin sweep ----------------------------------------------------


@dataclass(frozen=True)
class MarginRow:
    margin: float
    budget_total: int
    normal_wtau_ps: float
    ilp2_wtau_ps: float

    @property
    def reduction(self) -> float:
        if self.normal_wtau_ps <= 0:
            return 0.0
        return 1.0 - self.ilp2_wtau_ps / self.normal_wtau_ps


def ablation_capacity_margin(
    layout: RoutedLayout,
    margins: tuple[float, ...] = (1.0, 0.85, 0.7, 0.5),
    layer: str = "metal3",
    window_um: int = 32,
    r: int = 4,
) -> list[MarginRow]:
    """How the budget-headroom knob trades fill amount for method
    distinguishability (see DESIGN.md substitutions)."""
    rules = default_fill_rules(layout.stack)
    rows = []
    for margin in margins:
        budget = None
        taus = {}
        for method in ("normal", "ilp2"):
            config = EngineConfig(
                fill_rules=rules,
                density_rules=density_rules_for(window_um, r, layout.stack),
                method=method,
                capacity_margin=margin,
                backend="scipy",
            )
            result = PILFillEngine(layout, layer, config).run(budget=budget)
            if budget is None:
                budget = result.requested_budget
            impact = evaluate_impact(layout, layer, result.features, rules)
            taus[method] = impact.weighted_total_ps
        rows.append(
            MarginRow(
                margin=margin,
                budget_total=sum(budget.values()),
                normal_wtau_ps=taus["normal"],
                ilp2_wtau_ps=taus["ilp2"],
            )
        )
    return rows


def format_capacity_margin(rows: list[MarginRow]) -> str:
    lines = [
        "Capacity-margin sweep (Normal vs ILP-II, weighted):",
        f"{'margin':>7}{'budget':>8}{'normal':>10}{'ilp2':>10}{'reduction':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row.margin:>7.2f}{row.budget_total:>8d}{row.normal_wtau_ps:>10.4f}"
            f"{row.ilp2_wtau_ps:>10.4f}{row.reduction:>10.0%}"
        )
    return "\n".join(lines)


# -- D: fill feature size (Grobman et al., ref [8]) ----------------------------


@dataclass(frozen=True)
class FillSizeRow:
    fill_size_um: float
    features: int
    fill_area_um2: float
    normal_wtau_ps: float
    ilp2_wtau_ps: float


def ablation_fill_size(
    layout: RoutedLayout,
    sizes_um: tuple[float, ...] = (0.4, 0.5, 0.8, 1.0),
    layer: str = "metal3",
    window_um: int = 32,
    r: int = 2,
) -> list[FillSizeRow]:
    """Ref [8]'s observation: at the same *fill density*, smaller features
    limit the capacitance increase. Sweep the feature size with gap and
    buffer scaled proportionally (constant pattern density) and compare
    delay impact at matched fill area."""
    dbu = layout.stack.dbu_per_micron
    rows = []
    for size in sizes_um:
        rules = FillRules(
            fill_size=round(size * dbu),
            fill_gap=round(size * dbu / 2),
            buffer_distance=round(size * dbu / 2),
        )
        budget = None
        taus = {}
        features = 0
        for method in ("normal", "ilp2"):
            config = EngineConfig(
                fill_rules=rules,
                density_rules=density_rules_for(window_um, r, layout.stack),
                method=method,
                backend="scipy",
            )
            result = PILFillEngine(layout, layer, config).run(budget=budget)
            if budget is None:
                budget = result.requested_budget
                features = result.total_features
            impact = evaluate_impact(layout, layer, result.features, rules)
            taus[method] = impact.weighted_total_ps
        rows.append(
            FillSizeRow(
                fill_size_um=size,
                features=features,
                fill_area_um2=features * size * size,
                normal_wtau_ps=taus["normal"],
                ilp2_wtau_ps=taus["ilp2"],
            )
        )
    return rows


def format_fill_size(rows: list[FillSizeRow]) -> str:
    lines = [
        "Fill feature size (ref [8]; same pattern density per size):",
        f"{'size (um)':>10}{'features':>10}{'area um^2':>11}"
        f"{'normal':>10}{'ilp2':>10}{'n/area':>10}",
    ]
    for row in rows:
        per_area = row.normal_wtau_ps / row.fill_area_um2 if row.fill_area_um2 else 0.0
        lines.append(
            f"{row.fill_size_um:>10.2f}{row.features:>10d}{row.fill_area_um2:>11.0f}"
            f"{row.normal_wtau_ps:>10.4f}{row.ilp2_wtau_ps:>10.4f}{per_area:>10.6f}"
        )
    return "\n".join(lines)


# -- E: seed sensitivity -----------------------------------------------------------


@dataclass(frozen=True)
class SeedRow:
    seed: int
    normal_wtau_ps: float
    ilp2_wtau_ps: float

    @property
    def reduction(self) -> float:
        if self.normal_wtau_ps <= 0:
            return 0.0
        return 1.0 - self.ilp2_wtau_ps / self.normal_wtau_ps


def ablation_seed_sensitivity(
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
    window_um: int = 32,
    r: int = 2,
) -> list[SeedRow]:
    """The headline reduction across independently generated T1-class
    layouts — is the result an artifact of one seed?"""
    rows = []
    for seed in seeds:
        layout = generate_layout(t1_spec(seed=seed))
        rules = default_fill_rules(layout.stack)
        budget = None
        taus = {}
        for method in ("normal", "ilp2"):
            config = EngineConfig(
                fill_rules=rules,
                density_rules=density_rules_for(window_um, r, layout.stack),
                method=method,
                backend="scipy",
            )
            result = PILFillEngine(layout, "metal3", config).run(budget=budget)
            if budget is None:
                budget = result.requested_budget
            impact = evaluate_impact(layout, "metal3", result.features, rules)
            taus[method] = impact.weighted_total_ps
        budget = None
        rows.append(SeedRow(seed=seed, normal_wtau_ps=taus["normal"],
                            ilp2_wtau_ps=taus["ilp2"]))
    return rows


def format_seed_sensitivity(rows: list[SeedRow]) -> str:
    reductions = [row.reduction for row in rows]
    mean = sum(reductions) / len(reductions)
    spread = max(reductions) - min(reductions)
    lines = [
        "Seed sensitivity (T1-class layouts, W=32 r=2, ILP-II vs Normal):",
        f"{'seed':>5}{'normal':>10}{'ilp2':>10}{'reduction':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row.seed:>5d}{row.normal_wtau_ps:>10.4f}{row.ilp2_wtau_ps:>10.4f}"
            f"{row.reduction:>10.0%}"
        )
    lines.append(f"mean reduction {mean:.0%}, spread {spread:.0%}")
    return "\n".join(lines)


#: Registry used by the CLI.
STUDIES = {
    "columns": "slack-column definitions I/II/III",
    "capmodel": "linear vs exact vs grounded capacitance",
    "margin": "capacity-margin sweep",
    "fillsize": "fill feature size at constant pattern density (ref [8])",
    "seeds": "seed sensitivity of the headline reduction",
}


def run_study(name: str, layout: RoutedLayout | None = None) -> str:
    """Run one named study and return its formatted report."""
    if name == "columns":
        if layout is None:
            layout = generate_layout(t1_spec())
        return format_column_definitions(ablation_column_definitions(layout))
    if name == "capmodel":
        return format_cap_models(ablation_cap_models())
    if name == "margin":
        if layout is None:
            layout = generate_layout(t1_spec())
        return format_capacity_margin(ablation_capacity_margin(layout))
    if name == "fillsize":
        if layout is None:
            layout = generate_layout(t1_spec())
        return format_fill_size(ablation_fill_size(layout))
    if name == "seeds":
        return format_seed_sensitivity(ablation_seed_sensitivity())
    raise ReproError(f"unknown ablation study {name!r}; expected one of {sorted(STUDIES)}")
