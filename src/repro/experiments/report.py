"""One-shot reproduction report.

Renders everything the repository measures — both tables, the ablation
studies, density statistics — into a single markdown document, so a full
reproduction run is one command::

    python -m repro report -o REPORT.md
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.dissection import DensityMap, FixedDissection, smoothness
from repro.experiments.ablation import (
    ablation_cap_models,
    ablation_capacity_margin,
    ablation_column_definitions,
    format_cap_models,
    format_capacity_margin,
    format_column_definitions,
)
from repro.experiments.tables import TableResult, TableSpec, default_layouts, run_table
from repro.layout.layout import RoutedLayout
from repro.synth import density_rules_for


@dataclass
class ReportSpec:
    """What to include in the report."""

    table_spec: TableSpec | None = None
    include_ablations: bool = True
    include_density: bool = True


def _table_markdown(table: TableResult) -> str:
    kind = "weighted" if table.weighted else "non-weighted"
    lines = [
        f"| T/W/r | Normal | ILP-I | ILP-II | Greedy | ILP-II reduction |",
        f"|---|---|---|---|---|---|",
    ]
    w = table.weighted
    for row in table.rows:
        lines.append(
            f"| {row.label} "
            f"| {row.tau('normal', w):.4f} "
            f"| {row.tau('ilp1', w):.4f} "
            f"| **{row.tau('ilp2', w):.4f}** "
            f"| {row.tau('greedy', w):.4f} "
            f"| {row.reduction_vs_normal('ilp2', w):.0%} |"
        )
    return "\n".join(lines)


def _density_markdown(layouts: dict[str, RoutedLayout]) -> str:
    lines = [
        "| testcase | layer | min | mean | max | variation | type-I | gradient |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for name, layout in layouts.items():
        dissection = FixedDissection(layout.die, density_rules_for(32, 2, layout.stack))
        density = DensityMap.from_layout(dissection, layout, "metal3")
        stats = density.stats()
        smooth = smoothness(density)
        lines.append(
            f"| {name} | metal3 | {stats.min_density:.4f} | {stats.mean_density:.4f} "
            f"| {stats.max_density:.4f} | {smooth.variation:.4f} "
            f"| {smooth.smoothness_type1:.4f} | {smooth.gradient:.4f} |"
        )
    return "\n".join(lines)


def generate_report(spec: ReportSpec | None = None) -> str:
    """Build the full markdown report (can take a few minutes)."""
    spec = spec or ReportSpec()
    layouts = default_layouts()
    started = time.strftime("%Y-%m-%d %H:%M:%S")
    parts = [
        "# PIL-Fill reproduction report",
        "",
        f"Generated {started}. Paper: Chen/Gupta/Kahng, DAC 2003. "
        "τ in picoseconds (synthetic testcases; see EXPERIMENTS.md for the "
        "comparability discussion).",
    ]

    if spec.include_density:
        parts += ["", "## Testcase density (pre-fill, W=32 µm, r=2)", "",
                  _density_markdown(layouts)]

    for weighted, title in ((False, "Table 1 — non-weighted τ"),
                            (True, "Table 2 — sink-weighted τ")):
        table = run_table(weighted=weighted, spec=spec.table_spec, layouts=layouts)
        parts += ["", f"## {title}", "", _table_markdown(table)]

    if spec.include_ablations:
        t1 = layouts["T1"]
        parts += [
            "", "## Ablation A — slack-column definitions", "",
            "```", format_column_definitions(ablation_column_definitions(t1)), "```",
            "", "## Ablation B — capacitance models", "",
            "```", format_cap_models(ablation_cap_models()), "```",
            "", "## Ablation C — capacity margin", "",
            "```", format_capacity_margin(ablation_capacity_margin(t1)), "```",
        ]
    parts.append("")
    return "\n".join(parts)
