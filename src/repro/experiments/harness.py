"""Experiment harness: one ``T/W/r`` configuration, all methods.

Mirrors the paper's Section 6 protocol: the density-control step fixes a
per-tile fill budget once per configuration, then every method places the
same budget (identical density-control quality) and is scored by the
common evaluator. CPU time per method covers its per-tile optimization
phase, which is what distinguishes the methods.

The setup/scan-line/cost-table preprocessing is method-independent, so
the harness builds one :class:`~repro.pilfill.prepare.PreparedInstance`
per configuration and hands it to every method's engine — the dissection,
legality map, density map, slack columns, cost tables, and budget are
each computed exactly once per configuration instead of once per method.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.layout.layout import RoutedLayout
from repro.pilfill.columns import SlackColumnDef
from repro.pilfill.engine import EngineConfig, PILFillEngine
from repro.pilfill.evaluate import evaluate_impact
from repro.pilfill.incremental import SolutionCache
from repro.pilfill.prepare import PreparedInstance, prepare
from repro.tech.rules import FillRules
from repro.synth.testcases import default_fill_rules, density_rules_for

#: Method order of the paper's tables.
TABLE_METHODS = ("normal", "ilp1", "ilp2", "greedy")


@dataclass
class MethodOutcome:
    """Result of one method on one configuration.

    ``degraded_tiles`` / ``failed_tiles`` / ``retried_tiles`` summarize
    the robust solve layer's per-tile reports: tiles solved by a cheaper
    fallback method, tiles left empty after every attempt failed, and
    tiles that needed a dispatcher retry. All zero on a clean run — any
    nonzero count means the τ/CPU cell mixes methods and should be
    annotated (the table renderer marks it with ``*``).
    """

    method: str
    tau_ps: float
    weighted_tau_ps: float
    cpu_s: float
    features: int
    model_objective_ps: float
    degraded_tiles: int = 0
    failed_tiles: int = 0
    retried_tiles: int = 0
    #: Full ``pilfill-run-report/v1`` dict when the run had telemetry on
    #: (spans, metrics, per-tile solve reports); ``None`` otherwise.
    report: dict | None = None

    @property
    def clean(self) -> bool:
        return self.degraded_tiles == 0 and self.failed_tiles == 0


@dataclass
class ConfigResult:
    """All methods on one ``T/W/r`` configuration."""

    testcase: str
    window_um: int
    r: int
    budget_total: int
    outcomes: dict[str, MethodOutcome] = field(default_factory=dict)
    #: Shared preprocessing phase timings (setup/scanline/density/costs/
    #: budget), paid once for the whole configuration.
    prepare_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.testcase}/{self.window_um}/{self.r}"

    def tau(self, method: str, weighted: bool) -> float:
        out = self.outcomes[method]
        return out.weighted_tau_ps if weighted else out.tau_ps

    def reduction_vs_normal(self, method: str, weighted: bool) -> float:
        """Fractional τ reduction of ``method`` relative to Normal."""
        base = self.tau("normal", weighted)
        if base <= 0:
            return 0.0
        return 1.0 - self.tau(method, weighted) / base


def run_config(
    layout: RoutedLayout,
    testcase: str,
    window_um: int,
    r: int,
    layer: str = "metal3",
    methods: tuple[str, ...] = TABLE_METHODS,
    weighted: bool = True,
    fill_rules: FillRules | None = None,
    column_def: SlackColumnDef = SlackColumnDef.FULL_LAYOUT,
    backend: str = "scipy",
    seed: int = 0,
    workers: int = 1,
    parallel_backend: str = "thread",
    batch_tiles: int | None = None,
    persistent_pool: bool = True,
    prepared: PreparedInstance | None = None,
    tile_deadline_s: float | None = None,
    run_deadline_s: float | None = None,
    fallback: bool = True,
    fault_spec=None,
    telemetry: bool = False,
    cache_dir: str | None = None,
    solution_cache: SolutionCache | None = None,
    density_backend: str = "direct",
    shards: int = 1,
) -> ConfigResult:
    """Run every method on one configuration with a shared budget.

    Args:
        workers: per-tile solver parallelism, forwarded to every method's
            engine (see :class:`EngineConfig`).
        parallel_backend: ``"thread"`` or ``"process"`` (see
            :class:`EngineConfig`); only meaningful with ``workers > 1``.
        batch_tiles: tiles per process-pool submit (None auto-sizes; see
            :class:`EngineConfig`).
        persistent_pool: reuse process pools across runs (default; see
            :class:`EngineConfig`).
        prepared: preprocessing to reuse; built once here when omitted.
        tile_deadline_s: per-tile solve deadline (see :class:`EngineConfig`).
        run_deadline_s: whole-solve-phase deadline, applied per method run.
        fallback: robust solving with method degradation (default) vs
            strict first-failure-propagates mode.
        fault_spec: deterministic fault injection for tests.
        telemetry: record tracing spans + metrics per method run and
            attach each run's JSON report to its :class:`MethodOutcome`.
        cache_dir: directory for a disk-backed tile-solution cache (see
            :mod:`repro.pilfill.incremental`); a warm re-run of an
            unchanged configuration then merges cached tiles instead of
            re-solving. ``None`` (default) → no caching.
        solution_cache: a prebuilt cache to use instead of constructing
            one from ``cache_dir`` (the two are mutually exclusive);
            lets callers share one in-memory cache across configs.
        density_backend: window-density aggregation backend
            (``"direct"``/``"fft"``; see :class:`EngineConfig`) — FFT is
            bit-identical on real layouts and much faster on large grids.
        shards: row-band shards for the solve phase (see
            :mod:`repro.pilfill.shard`); results are bit-identical for
            any value, sharding only bounds peak memory.
    """
    if solution_cache is None and cache_dir is not None:
        solution_cache = SolutionCache(cache_dir=cache_dir)
    if fill_rules is None:
        fill_rules = default_fill_rules(layout.stack)
    density_rules = density_rules_for(window_um, r, layout.stack)
    if prepared is None:
        prepared = prepare(
            layout, layer, fill_rules, density_rules, column_def,
            density_backend=density_backend,
        )

    result = ConfigResult(testcase=testcase, window_um=window_um, r=r, budget_total=0)
    budget = None
    for method in methods:
        cfg = EngineConfig(
            fill_rules=fill_rules,
            density_rules=density_rules,
            method=method,
            weighted=weighted,
            column_def=column_def,
            density_backend=prepared.density_backend,
            backend=backend,
            seed=seed,
            workers=workers,
            parallel_backend=parallel_backend,
            batch_tiles=batch_tiles,
            persistent_pool=persistent_pool,
            tile_deadline_s=tile_deadline_s,
            run_deadline_s=run_deadline_s,
            fallback=fallback,
            fault_spec=fault_spec,
            telemetry=telemetry,
            solution_cache=solution_cache,
            shards=shards,
        )
        engine = PILFillEngine(layout, layer, cfg, prepared=prepared)
        run = engine.run(budget=budget)
        if budget is None:
            budget = run.requested_budget
            result.budget_total = sum(budget.values())
        impact = evaluate_impact(layout, layer, run.features, fill_rules)
        result.outcomes[method] = MethodOutcome(
            method=method,
            tau_ps=impact.total_ps,
            weighted_tau_ps=impact.weighted_total_ps,
            cpu_s=run.solve_seconds,
            features=run.total_features,
            model_objective_ps=run.model_objective_ps,
            degraded_tiles=len(run.degraded_tiles),
            failed_tiles=len(run.failed_tiles),
            retried_tiles=len(run.retried_tiles),
            report=run.to_report(cfg) if telemetry else None,
        )
    result.prepare_seconds = dict(prepared.phase_seconds)
    return result
