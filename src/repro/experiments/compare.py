"""Result-regression comparison.

The repository ships golden CSVs (``results_table1.csv`` /
``results_table2.csv``). This module compares a fresh run against a golden
file so CI can detect reproduction drift: method rows must agree within a
relative tolerance, and the qualitative shape checks (ILP-II best
everywhere, Normal worst or near-worst) must keep holding.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field

from repro.errors import ReproError

#: Column names of the table CSVs.
CSV_FIELDS = (
    "testcase", "window_um", "r", "method", "tau_ps", "weighted_tau_ps",
    "cpu_s", "features",
)


@dataclass(frozen=True)
class ResultRow:
    """One (config, method) measurement."""

    testcase: str
    window_um: int
    r: int
    method: str
    tau_ps: float
    weighted_tau_ps: float
    features: int

    @property
    def config(self) -> tuple[str, int, int]:
        return (self.testcase, self.window_um, self.r)


def parse_results_csv(text: str) -> list[ResultRow]:
    """Parse a table CSV produced by ``TableResult.to_csv``."""
    reader = csv.DictReader(io.StringIO(text))
    missing = set(CSV_FIELDS) - set(reader.fieldnames or ())
    if missing:
        raise ReproError(f"results CSV missing columns: {sorted(missing)}")
    rows = []
    for line_no, record in enumerate(reader, start=2):
        try:
            rows.append(
                ResultRow(
                    testcase=record["testcase"],
                    window_um=int(record["window_um"]),
                    r=int(record["r"]),
                    method=record["method"],
                    tau_ps=float(record["tau_ps"]),
                    weighted_tau_ps=float(record["weighted_tau_ps"]),
                    features=int(record["features"]),
                )
            )
        except (KeyError, ValueError) as exc:
            raise ReproError(f"results CSV line {line_no}: {exc}") from exc
    if not rows:
        raise ReproError("results CSV has no data rows")
    return rows


@dataclass
class ComparisonReport:
    """Differences between two result sets."""

    mismatches: list[str] = field(default_factory=list)
    shape_failures: list[str] = field(default_factory=list)
    rows_compared: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.shape_failures

    def __str__(self) -> str:
        if self.ok:
            return f"OK ({self.rows_compared} rows)"
        lines = []
        if self.mismatches:
            lines.append(f"{len(self.mismatches)} value mismatches:")
            lines += [f"  {m}" for m in self.mismatches[:10]]
        if self.shape_failures:
            lines.append(f"{len(self.shape_failures)} shape failures:")
            lines += [f"  {m}" for m in self.shape_failures]
        return "\n".join(lines)


def check_shape(rows: list[ResultRow], weighted: bool) -> list[str]:
    """The qualitative reproduction targets, on one result set."""
    failures = []
    by_config: dict[tuple, dict[str, ResultRow]] = {}
    for row in rows:
        by_config.setdefault(row.config, {})[row.method] = row

    def tau(row: ResultRow) -> float:
        return row.weighted_tau_ps if weighted else row.tau_ps

    for config, methods in by_config.items():
        if {"normal", "ilp2"} - set(methods):
            failures.append(f"{config}: missing methods {sorted(methods)}")
            continue
        if tau(methods["ilp2"]) > tau(methods["normal"]) + 1e-12:
            failures.append(f"{config}: ILP-II worse than Normal")
        counts = {m.features for m in methods.values()}
        if len(counts) != 1:
            failures.append(f"{config}: feature counts differ across methods {counts}")
    return failures


def compare_results(
    golden: list[ResultRow],
    fresh: list[ResultRow],
    rel_tol: float = 0.05,
    weighted: bool = True,
) -> ComparisonReport:
    """Compare ``fresh`` against ``golden`` within ``rel_tol``."""
    report = ComparisonReport()
    golden_by_key = {(r.config, r.method): r for r in golden}
    fresh_by_key = {(r.config, r.method): r for r in fresh}

    for key, g in golden_by_key.items():
        f = fresh_by_key.get(key)
        if f is None:
            report.mismatches.append(f"{key}: missing in fresh results")
            continue
        report.rows_compared += 1
        for attr in ("tau_ps", "weighted_tau_ps"):
            gv, fv = getattr(g, attr), getattr(f, attr)
            scale = max(abs(gv), 1e-12)
            if abs(gv - fv) / scale > rel_tol:
                report.mismatches.append(
                    f"{key}: {attr} golden={gv:.6f} fresh={fv:.6f}"
                )
        if g.features != f.features:
            report.mismatches.append(
                f"{key}: features golden={g.features} fresh={f.features}"
            )
    for key in sorted(fresh_by_key.keys() - golden_by_key.keys()):
        report.mismatches.append(f"{key}: unexpected extra row")

    report.shape_failures = check_shape(fresh, weighted)
    return report
