"""Experiment harness reproducing the paper's evaluation (Tables 1-2)."""

from repro.experiments.ablation import (
    STUDIES,
    ablation_cap_models,
    ablation_capacity_margin,
    ablation_column_definitions,
    ablation_seed_sensitivity,
    run_study,
)
from repro.experiments.compare import (
    ComparisonReport,
    ResultRow,
    check_shape,
    compare_results,
    parse_results_csv,
)
from repro.experiments.report import ReportSpec, generate_report
from repro.experiments.harness import (
    TABLE_METHODS,
    ConfigResult,
    MethodOutcome,
    run_config,
)
from repro.experiments.tables import (
    TableResult,
    TableSpec,
    default_layouts,
    run_table,
    run_table1,
    run_table2,
)

__all__ = [
    "STUDIES",
    "ablation_cap_models",
    "ablation_capacity_margin",
    "ablation_column_definitions",
    "ablation_seed_sensitivity",
    "run_study",
    "ReportSpec",
    "generate_report",
    "ComparisonReport",
    "ResultRow",
    "check_shape",
    "compare_results",
    "parse_results_csv",
    "TABLE_METHODS",
    "ConfigResult",
    "MethodOutcome",
    "run_config",
    "TableResult",
    "TableSpec",
    "default_layouts",
    "run_table",
    "run_table1",
    "run_table2",
]
