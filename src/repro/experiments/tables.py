"""Table 1 / Table 2 regeneration.

Table 1: non-weighted total delay increase τ per method over the 12
configurations {T1, T2} × window ∈ {32, 20} µm × r ∈ {2, 4, 8}.
Table 2: the sink-weighted variant. τ is reported in picoseconds — the
synthetic stand-in layouts are far smaller than the paper's industry
designs, so absolute magnitudes differ by construction; the comparisons
(who wins, by what factor, and the trends over r) are the reproduction
target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.experiments.harness import TABLE_METHODS, ConfigResult, run_config
from repro.layout.layout import RoutedLayout
from repro.synth.testcases import R_VALUES, WINDOW_SIZES_UM, make_t1, make_t2


@dataclass
class TableSpec:
    """Which configurations a table run covers."""

    testcases: tuple[str, ...] = ("T1", "T2")
    windows_um: tuple[int, ...] = WINDOW_SIZES_UM
    r_values: tuple[int, ...] = R_VALUES
    methods: tuple[str, ...] = TABLE_METHODS
    layer: str = "metal3"
    backend: str = "scipy"
    seed: int = 0
    #: Per-tile solver parallelism forwarded to every engine run.
    workers: int = 1
    #: ``"thread"`` or ``"process"`` — how workers run (see EngineConfig).
    parallel_backend: str = "thread"
    #: Tiles per process-pool submit; None auto-sizes (see EngineConfig).
    batch_tiles: int | None = None
    #: Reuse the process pool across engine runs (see EngineConfig).
    persistent_pool: bool = True
    #: Per-tile / per-run wall-clock deadlines (seconds; see EngineConfig).
    tile_deadline_s: float | None = None
    run_deadline_s: float | None = None
    #: Robust solving (method degradation + fault isolation) — default on.
    fallback: bool = True
    #: Deterministic fault injection for tests (repro.testing.faults).
    fault_spec: object | None = None
    #: Record spans + metrics per method run; each cell's outcome then
    #: carries its full run report (see :meth:`TableResult.reports`).
    telemetry: bool = False
    #: Directory for the disk-backed tile-solution cache (see
    #: :mod:`repro.pilfill.incremental`); re-running an unchanged table
    #: then merges cached tile solutions instead of re-solving them.
    #: ``None`` (default) → no caching.
    cache_dir: str | None = None
    #: Window-density aggregation backend (``"direct"``/``"fft"``; see
    #: :class:`~repro.pilfill.engine.EngineConfig`). Bit-identical
    #: results either way on real layouts; FFT wins on large grids.
    density_backend: str = "direct"
    #: Row-band shards for the solve phase (see
    #: :mod:`repro.pilfill.shard`); 1 (default) → unsharded. Results are
    #: bit-identical for any value — sharding only bounds peak memory.
    shards: int = 1


@dataclass
class TableResult:
    """A generated table: one :class:`ConfigResult` per row."""

    weighted: bool
    rows: list[ConfigResult] = field(default_factory=list)

    def format(self) -> str:
        """Render in the paper's layout (τ in ps, CPU in seconds).

        A τ cell gains a ``*`` when some of its tiles were solved by a
        cheaper fallback method (deadline/fault degradation) and a ``!``
        when tiles failed outright (left empty) — those cells are not
        pure measurements of the named method.
        """
        kind = "Weighted" if self.weighted else "Non-weighted"
        header = (
            f"{kind} PIL-Fill synthesis (tau in ps, CPU in s)\n"
            f"{'Testcase':<10}{'Normal':>10}"
            f"{'ILP-I':>11}{'CPU':>7}"
            f"{'ILP-II':>11}{'CPU':>7}"
            f"{'Greedy':>11}{'CPU':>7}"
        )
        lines = [header, "-" * len(header.splitlines()[-1])]
        annotated = False
        for row in self.rows:
            cells = [f"{row.label:<10}"]
            cells.append(f"{row.tau('normal', self.weighted):>10.4f}")
            for method in ("ilp1", "ilp2", "greedy"):
                out = row.outcomes[method]
                mark = ""
                if out.failed_tiles:
                    mark = "!"
                elif out.degraded_tiles:
                    mark = "*"
                annotated = annotated or bool(mark)
                cells.append(f"{row.tau(method, self.weighted):>10.4f}{mark:<1}")
                cells.append(f"{out.cpu_s:>7.2f}")
            lines.append("".join(cells))
        if annotated:
            lines.append(
                "* some tiles degraded to a cheaper fallback method; "
                "! some tiles failed (left unfilled)"
            )
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Machine-readable form."""
        out = [
            "testcase,window_um,r,method,tau_ps,weighted_tau_ps,cpu_s,features,"
            "degraded_tiles,failed_tiles,retried_tiles"
        ]
        for row in self.rows:
            for method, outcome in row.outcomes.items():
                out.append(
                    f"{row.testcase},{row.window_um},{row.r},{method},"
                    f"{outcome.tau_ps:.6f},{outcome.weighted_tau_ps:.6f},"
                    f"{outcome.cpu_s:.3f},{outcome.features},"
                    f"{outcome.degraded_tiles},{outcome.failed_tiles},"
                    f"{outcome.retried_tiles}"
                )
        return "\n".join(out) + "\n"

    def reports(self) -> dict[str, dict[str, dict]]:
        """Per-cell run reports, ``{row label: {method: report dict}}``.

        Only populated when the table ran with ``TableSpec.telemetry``;
        cells without a report are omitted. This is what the CLI's
        ``--trace-out`` serializes — reading a degraded cell's entry shows
        the fallback-rung history and span tree behind the ``*``/``!``.
        """
        out: dict[str, dict[str, dict]] = {}
        for row in self.rows:
            cell = {
                method: outcome.report
                for method, outcome in row.outcomes.items()
                if outcome.report is not None
            }
            if cell:
                out[row.label] = cell
        return out

    @property
    def degraded_cells(self) -> int:
        """Method cells (rows × methods) with degraded or failed tiles."""
        return sum(
            1
            for row in self.rows
            for outcome in row.outcomes.values()
            if outcome.degraded_tiles or outcome.failed_tiles
        )


def default_layouts(seed_t1: int = 1, seed_t2: int = 2) -> dict[str, RoutedLayout]:
    """The T1/T2 stand-in layouts used by both tables."""
    return {"T1": make_t1(seed=seed_t1), "T2": make_t2(seed=seed_t2)}


def run_table(
    weighted: bool,
    spec: TableSpec | None = None,
    layouts: dict[str, RoutedLayout] | None = None,
    progress: Callable[[str], None] | None = None,
) -> TableResult:
    """Run all configurations of one table.

    Args:
        weighted: False → Table 1, True → Table 2.
        spec: configuration subset (all 12 rows by default).
        layouts: pre-built testcase layouts (built fresh when omitted).
        progress: optional callback invoked with each finished row label.
    """
    spec = spec or TableSpec()
    if layouts is None:
        layouts = default_layouts()
    table = TableResult(weighted=weighted)
    for testcase in spec.testcases:
        layout = layouts[testcase]
        for window_um in spec.windows_um:
            for r in spec.r_values:
                row = run_config(
                    layout,
                    testcase,
                    window_um,
                    r,
                    layer=spec.layer,
                    methods=spec.methods,
                    weighted=weighted,
                    backend=spec.backend,
                    seed=spec.seed,
                    workers=spec.workers,
                    parallel_backend=spec.parallel_backend,
                    batch_tiles=spec.batch_tiles,
                    persistent_pool=spec.persistent_pool,
                    tile_deadline_s=spec.tile_deadline_s,
                    run_deadline_s=spec.run_deadline_s,
                    fallback=spec.fallback,
                    fault_spec=spec.fault_spec,
                    telemetry=spec.telemetry,
                    cache_dir=spec.cache_dir,
                    density_backend=spec.density_backend,
                    shards=spec.shards,
                )
                table.rows.append(row)
                if progress is not None:
                    progress(row.label)
    return table


def run_table1(spec: TableSpec | None = None, **kwargs) -> TableResult:
    """Paper Table 1: non-weighted τ."""
    return run_table(weighted=False, spec=spec, **kwargs)


def run_table2(spec: TableSpec | None = None, **kwargs) -> TableResult:
    """Paper Table 2: sink-weighted τ."""
    return run_table(weighted=True, spec=spec, **kwargs)
