"""Command-line interface.

Usage::

    python -m repro table1 [--quick] [--csv out.csv]
    python -m repro table2 [--quick] [--csv out.csv]
    python -m repro density --testcase T1 --window 32 -r 2
    python -m repro fill --testcase T1 --window 32 -r 2 --method ilp2 --out filled.def
    python -m repro quickstart
"""

from __future__ import annotations

import argparse
import sys

from repro.dissection import DENSITY_BACKENDS, DensityMap, FixedDissection
from repro.experiments.ablation import STUDIES, run_study
from repro.experiments.tables import TableSpec, run_table
from repro.io import write_def
from repro.pilfill import (
    EngineConfig,
    METHODS,
    PARALLEL_BACKENDS,
    PILFillEngine,
    SolutionCache,
    evaluate_impact,
)
from repro.synth import (
    default_fill_rules,
    density_rules_for,
    make_t1,
    make_t2,
)


def _layout_for(name: str):
    if name == "T1":
        return make_t1()
    if name == "T2":
        return make_t2()
    raise SystemExit(f"unknown testcase {name!r}; expected T1 or T2")


def _cmd_table(args: argparse.Namespace, weighted: bool) -> int:
    telemetry = bool(args.trace_out or args.metrics_out)
    cache_dir = None if args.no_cache else args.cache_dir
    spec = TableSpec(
        workers=args.workers, parallel_backend=args.backend,
        batch_tiles=args.batch_tiles, persistent_pool=not args.ephemeral_pool,
        tile_deadline_s=args.tile_deadline, run_deadline_s=args.run_deadline,
        telemetry=telemetry, cache_dir=cache_dir,
        density_backend=args.density_backend, shards=args.shards,
    )
    if args.quick:
        spec = TableSpec(
            testcases=("T1",), windows_um=(32,), r_values=(2,),
            workers=args.workers, parallel_backend=args.backend,
            batch_tiles=args.batch_tiles, persistent_pool=not args.ephemeral_pool,
            tile_deadline_s=args.tile_deadline, run_deadline_s=args.run_deadline,
            telemetry=telemetry, cache_dir=cache_dir,
            density_backend=args.density_backend, shards=args.shards,
        )
    table = run_table(
        weighted=weighted, spec=spec, progress=lambda label: print(f"  done {label}")
    )
    print()
    print(table.format())
    if table.degraded_cells:
        print(f"\n{table.degraded_cells} cell(s) degraded or failed — "
              "see the *, ! annotations above")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(table.to_csv())
        print(f"\nCSV written to {args.csv}")
    if args.trace_out:
        from repro.obs.report import write_report

        write_report(args.trace_out, {
            "schema": "pilfill-table-report/v1",
            "weighted": weighted,
            "cells": table.reports(),
        })
        print(f"trace report written to {args.trace_out}")
    if args.metrics_out:
        from repro.obs.report import write_report

        write_report(args.metrics_out, {
            "schema": "pilfill-table-metrics/v1",
            "weighted": weighted,
            "cells": {
                label: {method: report.get("metrics") for method, report in cell.items()}
                for label, cell in table.reports().items()
            },
        })
        print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_density(args: argparse.Namespace) -> int:
    layout = _layout_for(args.testcase)
    rules = density_rules_for(args.window, args.r, layout.stack)
    dissection = FixedDissection(layout.die, rules)
    density = DensityMap.from_layout(
        dissection, layout, args.layer, backend=args.density_backend
    )
    stats = density.stats()
    print(f"{args.testcase} {args.layer} W={args.window}um r={args.r}")
    print(f"  tiles: {dissection.nx} x {dissection.ny}, windows: {dissection.window_count}")
    print(f"  window density min/mean/max: "
          f"{stats.min_density:.4f} / {stats.mean_density:.4f} / {stats.max_density:.4f}")
    print(f"  variation: {stats.variation:.4f}")
    return 0


def _cmd_fill(args: argparse.Namespace) -> int:
    layout = _layout_for(args.testcase)
    fill_rules = default_fill_rules(layout.stack)
    cache_dir = None if args.no_cache else args.cache_dir
    solution_cache = SolutionCache(cache_dir=cache_dir) if cache_dir else None
    cfg = EngineConfig(
        fill_rules=fill_rules,
        density_rules=density_rules_for(args.window, args.r, layout.stack),
        method=args.method,
        weighted=not args.unweighted,
        density_backend=args.density_backend,
        seed=args.seed,
        workers=args.workers,
        parallel_backend=args.backend,
        batch_tiles=args.batch_tiles,
        persistent_pool=not args.ephemeral_pool,
        tile_deadline_s=args.tile_deadline,
        run_deadline_s=args.run_deadline,
        telemetry=bool(args.trace_out or args.metrics_out),
        solution_cache=solution_cache,
        shards=args.shards,
    )
    engine = PILFillEngine(layout, args.layer, cfg)
    result = engine.run()
    impact = evaluate_impact(layout, args.layer, result.features, fill_rules)
    print(f"{args.testcase}/{args.window}/{args.r} method={args.method} "
          f"workers={args.workers} backend={args.backend}")
    print(f"  features placed: {result.total_features} (shortfall {result.shortfall})")
    if not result.clean:
        degraded, failed, retried = (
            result.degraded_tiles, result.failed_tiles, result.retried_tiles
        )
        print(f"  robustness: {len(degraded)} degraded, {len(failed)} failed, "
              f"{len(retried)} retried tile(s)")
        for key in degraded[:3]:
            report = result.solve_reports[key]
            print(f"    tile {key}: {report.requested_method} -> {report.used_method}")
    print(f"  delay impact: tau={impact.total_ps:.4f} ps, "
          f"weighted tau={impact.weighted_total_ps:.4f} ps")
    print(f"  solve time: {result.solve_seconds:.2f} s")
    if result.cache_stats is not None:
        stats = result.cache_stats
        print(f"  solution cache: {stats['hits']} hit(s), {stats['misses']} miss(es), "
              f"{stats['stores']} stored")
    phases = "  ".join(
        f"{name}={seconds:.3f}s" for name, seconds in result.phase_seconds.items()
    )
    print(f"  phases: {phases}")
    if result.tile_seconds:
        slowest = sorted(
            result.tile_seconds.items(), key=lambda kv: kv[1], reverse=True
        )[:3]
        shown = ", ".join(f"{key}: {sec:.3f}s" for key, sec in slowest)
        print(f"  slowest tiles ({len(result.tile_seconds)} solved): {shown}")
    if args.out:
        for feature in result.features:
            layout.add_fill(feature)
        with open(args.out, "w") as handle:
            handle.write(write_def(layout))
        print(f"  filled layout written to {args.out}")
    if args.trace_out or args.metrics_out:
        from repro.obs.report import write_report

        report = result.to_report(cfg)
        if args.trace_out:
            write_report(args.trace_out, report)
            print(f"  trace report written to {args.trace_out}")
        if args.metrics_out:
            write_report(args.metrics_out, {
                "schema": "pilfill-metrics/v1",
                "metrics": report.get("metrics"),
            })
            print(f"  metrics written to {args.metrics_out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import lint_paths, render_json, render_sarif, render_text

    cache_path = None if args.no_cache else Path(args.cache)
    report = lint_paths(
        args.paths,
        cache_path=cache_path,
        jobs=max(args.jobs, 1),
        changed_only=args.changed,
    )
    if args.format == "json":
        rendered = render_json(report.findings, report.files_checked)
    elif args.format == "sarif":
        rendered = render_sarif(report.findings, report.files_checked)
    else:
        rendered = render_text(report.findings, report.files_checked)
    print(rendered)
    if args.sarif_out:
        Path(args.sarif_out).write_text(
            render_sarif(report.findings, report.files_checked) + "\n",
            encoding="utf-8",
        )
    return 0 if report.clean else 1


def _quickstart_inline(_args: argparse.Namespace) -> int:
    layout = make_t1()
    fill_rules = default_fill_rules(layout.stack)
    cfg = EngineConfig(
        fill_rules=fill_rules,
        density_rules=density_rules_for(32, 2, layout.stack),
        method="ilp2",
    )
    result = PILFillEngine(layout, "metal3", cfg).run()
    impact = evaluate_impact(layout, "metal3", result.features, fill_rules)
    print(f"placed {result.total_features} fill features on metal3")
    print(f"weighted delay impact: {impact.weighted_total_ps:.4f} ps")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="pilfill",
        description="Performance-impact limited area fill synthesis (DAC 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for table_name in ("table1", "table2"):
        p = sub.add_parser(table_name, help=f"regenerate paper {table_name}")
        p.add_argument("--quick", action="store_true", help="single-config smoke run")
        p.add_argument("--csv", help="also write CSV to this path")
        p.add_argument("--workers", type=int, default=1,
                       help="per-tile solver parallelism (1 = serial)")
        p.add_argument("--backend", default="thread", choices=PARALLEL_BACKENDS,
                       help="worker pool kind: thread (shared memory) or "
                            "process (ships compact tile payloads)")
        p.add_argument("--batch-tiles", type=int, default=None,
                       help="tiles per process-pool submit (default: "
                            "auto-sized; results are identical either way)")
        p.add_argument("--ephemeral-pool", action="store_true",
                       help="tear the process pool down after each run "
                            "instead of reusing it across runs")
        p.add_argument("--tile-deadline", type=float, default=None,
                       help="per-tile solve deadline in seconds; timed-out "
                            "tiles degrade ILP-II -> ILP-I -> Greedy")
        p.add_argument("--run-deadline", type=float, default=None,
                       help="whole-solve-phase deadline in seconds per method run")
        p.add_argument("--cache-dir", default=None,
                       help="enable the content-addressed tile-solution "
                            "cache, persisted under this directory; warm "
                            "re-runs merge cached tiles instead of "
                            "re-solving (bit-identical results)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the tile-solution cache even when "
                            "--cache-dir is given")
        p.add_argument("--trace-out", default=None,
                       help="write per-cell run reports (spans + solve "
                            "reports + metrics) as JSON to this path; "
                            "enables telemetry for every run")
        p.add_argument("--density-backend", default="direct",
                       choices=DENSITY_BACKENDS,
                       help="window-density aggregation: direct summed-area "
                            "oracle or one-pass FFT (bit-identical on real "
                            "layouts, much faster on large grids)")
        p.add_argument("--metrics-out", default=None,
                       help="write per-cell metrics JSON to this path; "
                            "enables telemetry for every run")
        p.add_argument("--shards", type=int, default=1,
                       help="row-band shards for the solve phase; each "
                            "shard builds only its own cost tables, so "
                            "peak memory holds one band (results are "
                            "bit-identical for any shard count)")

    p = sub.add_parser("density", help="density analysis of a testcase")
    p.add_argument("--testcase", default="T1", choices=("T1", "T2"))
    p.add_argument("--layer", default="metal3")
    p.add_argument("--window", type=int, default=32)
    p.add_argument("-r", type=int, default=2, dest="r")
    p.add_argument("--density-backend", default="direct", choices=DENSITY_BACKENDS,
                   help="direct summed-area oracle or one-pass FFT")

    p = sub.add_parser("fill", help="run one fill configuration")
    p.add_argument("--testcase", default="T1", choices=("T1", "T2"))
    p.add_argument("--layer", default="metal3")
    p.add_argument("--window", type=int, default=32)
    p.add_argument("-r", type=int, default=2, dest="r")
    p.add_argument("--method", default="ilp2", choices=METHODS)
    p.add_argument("--unweighted", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="per-tile solver parallelism (1 = serial)")
    p.add_argument("--backend", default="thread", choices=PARALLEL_BACKENDS,
                   help="worker pool kind: thread (shared memory) or "
                        "process (ships compact tile payloads)")
    p.add_argument("--batch-tiles", type=int, default=None,
                   help="tiles per process-pool submit (default: "
                        "auto-sized; results are identical either way)")
    p.add_argument("--ephemeral-pool", action="store_true",
                   help="tear the process pool down after each run "
                        "instead of reusing it across runs")
    p.add_argument("--tile-deadline", type=float, default=None,
                   help="per-tile solve deadline in seconds; timed-out "
                        "tiles degrade ILP-II -> ILP-I -> Greedy")
    p.add_argument("--run-deadline", type=float, default=None,
                   help="whole-solve-phase deadline in seconds")
    p.add_argument("--cache-dir", default=None,
                   help="enable the content-addressed tile-solution cache, "
                        "persisted under this directory; warm re-runs merge "
                        "cached tiles instead of re-solving (bit-identical "
                        "results)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the tile-solution cache even when "
                        "--cache-dir is given")
    p.add_argument("--density-backend", default="direct", choices=DENSITY_BACKENDS,
                   help="window-density aggregation backend (direct | fft)")
    p.add_argument("--out", help="write filled DEF-lite to this path")
    p.add_argument("--trace-out", default=None,
                   help="write the run report (config, spans, metrics, "
                        "per-tile solve reports) as JSON to this path; "
                        "enables telemetry for the run")
    p.add_argument("--metrics-out", default=None,
                   help="write the run's metrics as JSON to this path; "
                        "enables telemetry for the run")
    p.add_argument("--shards", type=int, default=1,
                   help="row-band shards for the solve phase; each shard "
                        "builds only its own cost tables, so peak memory "
                        "holds one band (results are bit-identical for "
                        "any shard count)")

    sub.add_parser("quickstart", help="tiny end-to-end demo")

    p = sub.add_parser("ablation", help="run one ablation study")
    p.add_argument("name", choices=sorted(STUDIES),
                   help="; ".join(f"{k}: {v}" for k, v in sorted(STUDIES.items())))
    p.add_argument("--testcase", default="T1", choices=("T1", "T2"))

    p = sub.add_parser(
        "lint",
        help="determinism/concurrency/typing lint over the source tree",
    )
    p.add_argument("paths", nargs="*", default=["src/repro"],
                   help="files or directories to lint (default: src/repro)")
    p.add_argument("--format", default="text", choices=("text", "json", "sarif"),
                   help="report format (json round-trips; sarif feeds "
                        "GitHub code scanning)")
    p.add_argument("--sarif-out", default=None,
                   help="additionally write a SARIF report to this path")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the content-hash result cache")
    p.add_argument("--cache", default=".pilfill-lint-cache.json",
                   help="cache file path (content-digest keyed)")
    p.add_argument("--changed", action="store_true",
                   help="lint only files changed per git plus their "
                        "import-closure dependents (falls back to a full "
                        "lint when git state is unavailable)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel file-scan threads (output is identical "
                        "for any value)")

    p = sub.add_parser("report", help="full markdown reproduction report")
    p.add_argument("-o", "--out", default="REPORT.md")
    p.add_argument("--quick", action="store_true", help="single-config tables")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table(args, weighted=False)
    if args.command == "table2":
        return _cmd_table(args, weighted=True)
    if args.command == "density":
        return _cmd_density(args)
    if args.command == "fill":
        return _cmd_fill(args)
    if args.command == "quickstart":
        return _quickstart_inline(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "ablation":
        needs_layout = args.name in ("columns", "margin", "fillsize")
        layout = _layout_for(args.testcase) if needs_layout else None
        print(run_study(args.name, layout))
        return 0
    if args.command == "report":
        from repro.experiments import ReportSpec, generate_report

        spec = ReportSpec()
        if args.quick:
            spec.table_spec = TableSpec(testcases=("T1",), windows_um=(32,), r_values=(2,))
            spec.include_ablations = False
        text = generate_report(spec)
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"report written to {args.out}")
        return 0
    raise SystemExit(f"unknown command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
