"""Solver result types shared by the LP and MILP engines."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class SolveStatus(enum.Enum):
    """Terminal state of a solve.

    The limit statuses are distinct on purpose: ``TIME_LIMIT`` means the
    wall-clock deadline fired (the robust solve layer reacts by degrading
    to a cheaper method, not by retrying), ``ITERATION_LIMIT`` /
    ``NODE_LIMIT`` mean a work budget ran out, and ``NUMERICAL`` means
    the backend hit numerical trouble (HiGHS status 4). ``FAILED`` is the
    catch-all for a backend returning an unclassifiable outcome (e.g. an
    unknown status code, or success without a solution vector).
    """

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"
    NUMERICAL = "numerical"
    FAILED = "failed"

    @property
    def is_optimal(self) -> bool:
        return self is SolveStatus.OPTIMAL

    @property
    def is_limit(self) -> bool:
        """True for out-of-budget terminations (time/iterations/nodes)."""
        return self in (
            SolveStatus.ITERATION_LIMIT,
            SolveStatus.NODE_LIMIT,
            SolveStatus.TIME_LIMIT,
        )


@dataclass
class LPResult:
    """Raw LP solve outcome in array form."""

    status: SolveStatus
    x: np.ndarray | None
    objective: float
    iterations: int


@dataclass
class SolveResult:
    """MILP solve outcome mapped back to model variable names.

    Attributes:
        status: terminal status.
        values: variable name → value (rounded to exact integers for
            integer variables when optimal).
        objective: objective value at the returned point.
        nodes: number of branch-and-bound nodes explored.
        iterations: total simplex iterations across all LP relaxations.
    """

    status: SolveStatus
    values: dict[str, float] = field(default_factory=dict)
    objective: float = float("nan")
    nodes: int = 0
    iterations: int = 0

    def __getitem__(self, name: str) -> float:
        return self.values[name]

    def value(self, name: str, default: float = 0.0) -> float:
        """Value of a variable, with a default for absent names."""
        return self.values.get(name, default)
