"""Branch-and-bound MILP solver over the bundled simplex.

Substitutes the paper's CPLEX 7.0. Design:

* LP relaxations via :func:`repro.ilp.simplex.solve_lp`; general variable
  bounds are handled by shifting finite lower bounds to zero and emitting
  explicit upper-bound rows,
* best-first node selection on the parent relaxation bound,
* branching on the most fractional integer variable,
* a root rounding heuristic to seed the incumbent,
* pruning with a small absolute tolerance so ties resolve deterministically.

The per-tile PIL-Fill instances are small (tens to a few hundred
variables); for larger models use the scipy/HiGHS backend
(:mod:`repro.ilp.scipy_backend`) which shares the same :class:`Model` API.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.ilp.model import CompiledModel, Model
from repro.ilp.result import SolveResult, SolveStatus
from repro.ilp.simplex import solve_lp
from repro.obs.trace import NULL_TRACER, TracerLike

#: Integrality tolerance.
INT_TOL = 1e-6
#: Pruning tolerance.
PRUNE_TOL = 1e-9


@dataclass
class _Node:
    bound: float
    lb: np.ndarray
    ub: np.ndarray


def _solve_relaxation(
    compiled: CompiledModel, lb: np.ndarray, ub: np.ndarray
) -> tuple[LPResult | _ShiftedLP | None, int]:
    """LP relaxation with per-node bounds: shift lb to 0, add ub rows."""
    if np.any(np.isneginf(lb)):
        raise SolverError(
            "bundled branch-and-bound requires finite lower bounds; "
            "use the scipy backend for free variables"
        )
    if np.any(lb > ub + 1e-12):
        return None, 0  # empty box
    n = compiled.c.shape[0]
    shift = lb
    b_ub = compiled.b_ub - compiled.a_ub @ shift if compiled.a_ub.size else compiled.b_ub
    b_eq = compiled.b_eq - compiled.a_eq @ shift if compiled.a_eq.size else compiled.b_eq

    span = ub - lb
    finite = np.flatnonzero(np.isfinite(span))
    extra_rows = np.zeros((finite.size, n))
    for r, i in enumerate(finite):
        extra_rows[r, i] = 1.0
    a_ub = np.vstack([compiled.a_ub, extra_rows]) if compiled.a_ub.size else extra_rows
    b_ub_full = np.concatenate([b_ub, span[finite]])

    res = solve_lp(compiled.c, a_ub, b_ub_full, compiled.a_eq, b_eq)
    if res.status is not SolveStatus.OPTIMAL:
        return res, res.iterations
    x = res.x + shift
    return _ShiftedLP(res.objective + float(compiled.c @ shift), x), res.iterations


@dataclass
class _ShiftedLP:
    objective: float
    x: np.ndarray


def solve_branch_and_bound(
    model: Model,
    max_nodes: int = 100000,
    time_limit: float | None = None,
    tracer: TracerLike | None = None,
) -> SolveResult:
    """Solve a mixed-integer model to optimality (within tolerances).

    Returns OPTIMAL with variable values, INFEASIBLE, UNBOUNDED (when the
    root relaxation is unbounded), or NODE_LIMIT / TIME_LIMIT with the best
    incumbent found so far (if any). ``time_limit`` is wall-clock seconds;
    the deadline is checked between nodes, so a single huge LP relaxation
    can overshoot it (per-tile models are small enough that this is moot).
    ``tracer``, when given, records an ``ilp.branchbound`` span with the
    variable count, node count, and final status.
    """
    trc = tracer if tracer is not None else NULL_TRACER
    with trc.span("ilp.branchbound", vars=len(model.variables)) as span:
        result = _branch_and_bound(model, max_nodes, time_limit)
        span.set("status", result.status.name)
        span.set("nodes", result.nodes)
        return result


def _branch_and_bound(
    model: Model,
    max_nodes: int,
    time_limit: float | None,
) -> SolveResult:
    deadline = None if time_limit is None else time.monotonic() + time_limit
    compiled = model.compile()
    n = compiled.c.shape[0]
    int_idx = np.flatnonzero(compiled.integer)

    total_iters = 0
    nodes_explored = 0
    incumbent_x: np.ndarray | None = None
    incumbent_obj = math.inf

    def consider(x: np.ndarray, obj: float) -> None:
        nonlocal incumbent_x, incumbent_obj
        if obj < incumbent_obj - PRUNE_TOL:
            incumbent_obj = obj
            incumbent_x = x.copy()

    def is_feasible(x: np.ndarray) -> bool:
        if compiled.a_ub.size and np.any(compiled.a_ub @ x > compiled.b_ub + 1e-7):
            return False
        if compiled.a_eq.size and np.any(np.abs(compiled.a_eq @ x - compiled.b_eq) > 1e-7):
            return False
        if np.any(x < compiled.lb - 1e-9) or np.any(x > compiled.ub + 1e-9):
            return False
        return True

    # Root relaxation.
    root, iters = _solve_relaxation(compiled, compiled.lb.copy(), compiled.ub.copy())
    total_iters += iters
    if root is None:
        return SolveResult(SolveStatus.INFEASIBLE, {}, math.nan, 0, total_iters)
    if not isinstance(root, _ShiftedLP):
        if root.status is SolveStatus.UNBOUNDED:
            return SolveResult(SolveStatus.UNBOUNDED, {}, -math.inf, 0, total_iters)
        return SolveResult(SolveStatus(root.status.value), {}, math.nan, 0, total_iters)

    # Root heuristic: round to the nearest integer point in the box.
    if int_idx.size:
        rounded = root.x.copy()
        rounded[int_idx] = np.clip(
            np.round(rounded[int_idx]), compiled.lb[int_idx], compiled.ub[int_idx]
        )
        if is_feasible(rounded):
            consider(rounded, float(compiled.c @ rounded))

    counter = itertools.count()  # heap tie-breaker
    heap: list[tuple[float, int, _Node]] = []
    heapq.heappush(
        heap, (root.objective, next(counter), _Node(root.objective, compiled.lb.copy(), compiled.ub.copy()))
    )

    status = SolveStatus.OPTIMAL
    while heap:
        if nodes_explored >= max_nodes:
            status = SolveStatus.NODE_LIMIT
            break
        if deadline is not None and time.monotonic() >= deadline:
            status = SolveStatus.TIME_LIMIT
            break
        bound, _tie, node = heapq.heappop(heap)
        if bound >= incumbent_obj - PRUNE_TOL:
            continue  # pruned by incumbent
        relax, iters = _solve_relaxation(compiled, node.lb, node.ub)
        total_iters += iters
        nodes_explored += 1
        if relax is None or not isinstance(relax, _ShiftedLP):
            continue  # infeasible box
        if relax.objective >= incumbent_obj - PRUNE_TOL:
            continue
        x = relax.x
        frac = np.abs(x[int_idx] - np.round(x[int_idx])) if int_idx.size else np.array([])
        if frac.size == 0 or frac.max() <= INT_TOL:
            clean = x.copy()
            if int_idx.size:
                clean[int_idx] = np.round(clean[int_idx])
            consider(clean, float(compiled.c @ clean))
            continue
        # Branch on the most fractional integer variable.
        branch_var = int(int_idx[int(np.argmax(frac))])
        floor_val = math.floor(x[branch_var] + INT_TOL)
        lo_node = _Node(relax.objective, node.lb.copy(), node.ub.copy())
        lo_node.ub[branch_var] = floor_val
        hi_node = _Node(relax.objective, node.lb.copy(), node.ub.copy())
        hi_node.lb[branch_var] = floor_val + 1
        heapq.heappush(heap, (relax.objective, next(counter), lo_node))
        heapq.heappush(heap, (relax.objective, next(counter), hi_node))

    if incumbent_x is None:
        if status in (SolveStatus.NODE_LIMIT, SolveStatus.TIME_LIMIT):
            return SolveResult(status, {}, math.nan, nodes_explored, total_iters)
        return SolveResult(SolveStatus.INFEASIBLE, {}, math.nan, nodes_explored, total_iters)

    values = {
        name: (round(v) if compiled.integer[i] else float(v))
        for i, (name, v) in enumerate(zip(compiled.names, incumbent_x))
    }
    objective = float(compiled.c @ incumbent_x + compiled.c0)
    if model.is_maximization:
        objective = -objective
    return SolveResult(status, values, objective, nodes_explored, total_iters)
