"""Dense two-phase primal simplex.

Solves the standard-form LP

    min  c·x   s.t.  A_ub x <= b_ub,  A_eq x = b_eq,  x >= 0

with a classic tableau implementation: slack variables for inequality
rows, artificial variables for equality rows (and for inequality rows with
negative right-hand sides), phase 1 driving the artificials to zero, then
phase 2 on the original costs. Pivoting uses Dantzig's rule with an
automatic switch to Bland's rule when cycling is suspected.

This is the LP engine underneath :mod:`repro.ilp.branchbound`; upper
bounds and general lower bounds are handled by the caller (shift +
explicit rows), keeping this module small and testable.
"""

from __future__ import annotations

import numpy as np

from repro.ilp.result import LPResult, SolveStatus

#: Feasibility / optimality tolerance.
TOL = 1e-9


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    max_iter: int = 20000,
) -> LPResult:
    """Solve the standard-form LP; see module docstring.

    Returns an :class:`LPResult` whose ``x`` is None unless the status is
    OPTIMAL.
    """
    c = np.asarray(c, dtype=np.float64)
    n = c.shape[0]
    a_ub = np.asarray(a_ub, dtype=np.float64).reshape(-1, n)
    a_eq = np.asarray(a_eq, dtype=np.float64).reshape(-1, n)
    b_ub = np.asarray(b_ub, dtype=np.float64).ravel()
    b_eq = np.asarray(b_eq, dtype=np.float64).ravel()
    m_ub, m_eq = a_ub.shape[0], a_eq.shape[0]
    m = m_ub + m_eq

    if m == 0:
        # Only the trivial nonnegativity region: optimum at 0 unless some
        # cost is negative (then unbounded).
        if np.any(c < -TOL):
            return LPResult(SolveStatus.UNBOUNDED, None, -np.inf, 0)
        return LPResult(SolveStatus.OPTIMAL, np.zeros(n), 0.0, 0)

    # Assemble rows [A | slack | artificial | b] with b >= 0.
    rows = np.zeros((m, n))
    rhs = np.zeros(m)
    rows[:m_ub] = a_ub
    rhs[:m_ub] = b_ub
    rows[m_ub:] = a_eq
    rhs[m_ub:] = b_eq

    slack = np.zeros((m, m_ub))
    for i in range(m_ub):
        slack[i, i] = 1.0

    flip = rhs < 0
    rows[flip] *= -1.0
    rhs[flip] *= -1.0
    slack[flip] *= -1.0

    # Rows needing an artificial: all eq rows plus flipped ub rows (their
    # slack became a surplus and can't seed the basis).
    needs_art = np.ones(m, dtype=bool)
    for i in range(m_ub):
        if not flip[i]:
            needs_art[i] = False
    art_rows = np.flatnonzero(needs_art)
    n_art = art_rows.size

    art = np.zeros((m, n_art))
    for j, i in enumerate(art_rows):
        art[i, j] = 1.0

    tableau = np.hstack([rows, slack, art, rhs[:, None]])
    ncols = n + m_ub + n_art

    # Initial basis: slack for clean ub rows, artificial otherwise.
    basis = np.empty(m, dtype=np.int64)
    art_counter = 0
    for i in range(m):
        if needs_art[i]:
            basis[i] = n + m_ub + art_counter
            art_counter += 1
        else:
            basis[i] = n + i

    iterations = 0

    def run_phase(cost: np.ndarray, iter_budget: int) -> tuple[str, int]:
        """Optimize ``cost`` over the current tableau. Returns (status, iters)."""
        nonlocal tableau, basis
        # Reduced-cost row: z = cost - cost_B · B^-1 A (tableau rows are
        # already B^-1 A since we pivot in place).
        z = cost.copy().astype(np.float64)
        for i in range(m):
            cb = cost[basis[i]]
            if cb != 0.0:  # pilfill: allow[D104] -- exact-zero sparsity skip; any nonzero (even tiny) must contribute to the reduced-cost row
                z -= cb * tableau[i, :ncols]
        obj = 0.0
        for i in range(m):
            obj += cost[basis[i]] * tableau[i, ncols]

        used = 0
        bland = False
        while used < iter_budget:
            if bland:
                candidates = np.flatnonzero(z < -TOL)
                if candidates.size == 0:
                    return "optimal", used
                pivot_col = int(candidates[0])
            else:
                pivot_col = int(np.argmin(z))
                if z[pivot_col] >= -TOL:
                    return "optimal", used
            col = tableau[:, pivot_col]
            mask = col > TOL
            if not mask.any():
                return "unbounded", used
            ratios = np.full(m, np.inf)
            ratios[mask] = tableau[mask, ncols] / col[mask]
            pivot_row = int(np.argmin(ratios))
            # Bland tie-break: lowest basis index among minimal ratios.
            if bland:
                best = ratios[pivot_row]
                ties = np.flatnonzero(np.isclose(ratios, best, rtol=0, atol=TOL))
                pivot_row = int(min(ties, key=lambda i: basis[i]))

            # Pivot.
            pivot_val = tableau[pivot_row, pivot_col]
            tableau[pivot_row] /= pivot_val
            factors = tableau[:, pivot_col].copy()
            factors[pivot_row] = 0.0
            tableau -= np.outer(factors, tableau[pivot_row])
            z_factor = z[pivot_col]
            z = z - z_factor * tableau[pivot_row, :ncols]
            basis[pivot_row] = pivot_col
            used += 1
            # Heuristic cycling guard: switch to Bland after many pivots.
            if used > 4 * (m + ncols) and not bland:
                bland = True
        return "iteration_limit", used

    # -- phase 1 -------------------------------------------------------------
    if n_art > 0:
        phase1_cost = np.zeros(ncols)
        phase1_cost[n + m_ub:] = 1.0
        status, used = run_phase(phase1_cost, max_iter)
        iterations += used
        if status == "iteration_limit":
            return LPResult(SolveStatus.ITERATION_LIMIT, None, np.nan, iterations)
        infeas = sum(
            tableau[i, ncols] for i in range(m) if basis[i] >= n + m_ub
        )
        if status == "unbounded" or infeas > 1e-7:
            return LPResult(SolveStatus.INFEASIBLE, None, np.nan, iterations)
        # Pivot residual zero-level artificials out of the basis when possible.
        for i in range(m):
            if basis[i] >= n + m_ub:
                row = tableau[i, : n + m_ub]
                candidates = np.flatnonzero(np.abs(row) > 1e-7)
                if candidates.size:
                    pivot_col = int(candidates[0])
                    pivot_val = tableau[i, pivot_col]
                    tableau[i] /= pivot_val
                    factors = tableau[:, pivot_col].copy()
                    factors[i] = 0.0
                    tableau -= np.outer(factors, tableau[i])
                    basis[i] = pivot_col
        # Freeze artificial columns so they never re-enter.
        tableau[:, n + m_ub:ncols] = 0.0

    # -- phase 2 -------------------------------------------------------------
    phase2_cost = np.zeros(ncols)
    phase2_cost[:n] = c
    status, used = run_phase(phase2_cost, max_iter - iterations)
    iterations += used
    if status == "iteration_limit":
        return LPResult(SolveStatus.ITERATION_LIMIT, None, np.nan, iterations)
    if status == "unbounded":
        return LPResult(SolveStatus.UNBOUNDED, None, -np.inf, iterations)

    x = np.zeros(n)
    for i in range(m):
        if basis[i] < n:
            x[basis[i]] = tableau[i, ncols]
    # Clamp tiny negatives from roundoff.
    x[np.abs(x) < 1e-11] = 0.0
    return LPResult(SolveStatus.OPTIMAL, x, float(c @ x), iterations)
