"""Declarative linear/integer programming model builder.

A tiny modeling layer in the spirit of PuLP, sufficient for the paper's
formulations: continuous/integer/binary variables with bounds, linear
expressions, ``<=``/``>=``/``==`` constraints, and a linear objective.
Models compile to dense arrays consumed by the bundled simplex + branch
and bound engine (:mod:`repro.ilp.branchbound`) or by the scipy HiGHS
backend (:mod:`repro.ilp.scipy_backend`).
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError

INF = math.inf


class VarKind(enum.Enum):
    """Variable domain."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


@dataclass(frozen=True)
class Variable:
    """Handle to a model variable. Supports arithmetic to build
    :class:`LinExpr` terms: ``2 * x + y - 3``."""

    model_id: int
    index: int
    name: str
    kind: VarKind
    lb: float
    ub: float

    def __add__(self, other: LinExpr | Variable | float) -> LinExpr:
        return LinExpr.from_term(self) + other

    def __radd__(self, other: LinExpr | Variable | float) -> LinExpr:
        return LinExpr.from_term(self) + other

    def __sub__(self, other: LinExpr | Variable | float) -> LinExpr:
        return LinExpr.from_term(self) - other

    def __rsub__(self, other: LinExpr | Variable | float) -> LinExpr:
        return (-1.0 * self) + other

    def __mul__(self, coeff: float) -> LinExpr:
        return LinExpr({self.index: float(coeff)}, 0.0, self.model_id)

    def __rmul__(self, coeff: float) -> LinExpr:
        return self.__mul__(coeff)

    def __neg__(self) -> LinExpr:
        return self * -1.0

    def __le__(self, other: LinExpr | Variable | float) -> Constraint:
        return LinExpr.from_term(self).__le__(other)

    def __ge__(self, other: LinExpr | Variable | float) -> Constraint:
        return LinExpr.from_term(self).__ge__(other)

    def __eq__(self, other: object) -> object:  # type: ignore[override]
        if isinstance(other, (int, float, Variable, LinExpr)):
            return LinExpr.from_term(self) == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.model_id, self.index))


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass
class LinExpr:
    """Sparse linear expression ``Σ coeff_i · x_i + const``."""

    coeffs: dict[int, float]
    const: float = 0.0
    model_id: int = -1

    @staticmethod
    def from_term(var: Variable) -> "LinExpr":
        return LinExpr({var.index: 1.0}, 0.0, var.model_id)

    @staticmethod
    def constant(value: float) -> "LinExpr":
        return LinExpr({}, float(value), -1)

    def _merge_model(self, other_id: int) -> int:
        if self.model_id == -1:
            return other_id
        if other_id == -1 or other_id == self.model_id:
            return self.model_id
        raise SolverError("cannot mix variables from different models")

    def _coerce(self, other: LinExpr | Variable | float) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return LinExpr.from_term(other)
        if isinstance(other, (int, float)):
            return LinExpr.constant(float(other))
        raise TypeError(f"cannot combine LinExpr with {type(other).__name__}")

    def __add__(self, other: LinExpr | Variable | float) -> "LinExpr":
        rhs = self._coerce(other)
        coeffs = dict(self.coeffs)
        for idx, c in rhs.coeffs.items():
            coeffs[idx] = coeffs.get(idx, 0.0) + c
        return LinExpr(coeffs, self.const + rhs.const, self._merge_model(rhs.model_id))

    def __radd__(self, other: LinExpr | Variable | float) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: LinExpr | Variable | float) -> "LinExpr":
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other: LinExpr | Variable | float) -> "LinExpr":
        return (self * -1.0).__add__(other)

    def __mul__(self, coeff: float) -> "LinExpr":
        if not isinstance(coeff, (int, float)):
            raise TypeError("LinExpr supports multiplication by scalars only")
        return LinExpr(
            {i: c * coeff for i, c in self.coeffs.items()}, self.const * coeff, self.model_id
        )

    def __rmul__(self, coeff: float) -> "LinExpr":
        return self.__mul__(coeff)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __le__(self, other: LinExpr | Variable | float) -> "Constraint":
        rhs = self._coerce(other)
        return Constraint(self - rhs, Sense.LE)

    def __ge__(self, other: LinExpr | Variable | float) -> "Constraint":
        rhs = self._coerce(other)
        return Constraint(self - rhs, Sense.GE)

    def __eq__(self, other: object) -> object:  # type: ignore[override]
        if isinstance(other, (int, float, Variable, LinExpr)):
            rhs = self._coerce(other)
            return Constraint(self - rhs, Sense.EQ)
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def evaluate(self, values: np.ndarray) -> float:
        """Value of the expression at a variable assignment vector."""
        return self.const + sum(c * values[i] for i, c in self.coeffs.items())


@dataclass
class Constraint:
    """A normalized constraint ``expr (sense) 0``."""

    expr: LinExpr
    sense: Sense
    name: str = ""


@dataclass
class CompiledModel:
    """Dense-array form: min c·x + c0 s.t. A_ub x <= b_ub, A_eq x = b_eq,
    lb <= x <= ub, integrality flags per variable."""

    c: np.ndarray
    c0: float
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integer: np.ndarray  # bool per variable
    names: list[str]


class Model:
    """An optimization model under construction.

    Example::

        m = Model("tile")
        x = m.add_var("x", lb=0, ub=5, kind=VarKind.INTEGER)
        y = m.add_var("y", lb=0, ub=5, kind=VarKind.INTEGER)
        m.add_constraint(x + y == 7)
        m.minimize(3 * x + 2 * y)
    """

    # itertools.count: next() is atomic under the GIL, so models built
    # concurrently (thread-backend tile solves) still get distinct ids —
    # a bare `Model._next_id += 1` is a read-modify-write race.
    _ids = itertools.count(1)

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr | None = None
        self._id = next(Model._ids)
        self._names: set[str] = set()
        self._maximized = False

    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = INF,
        kind: VarKind = VarKind.CONTINUOUS,
    ) -> Variable:
        """Create a variable. Binary variables force bounds to [0, 1]."""
        if name in self._names:
            raise SolverError(f"duplicate variable name {name!r}")
        if kind is VarKind.BINARY:
            lb, ub = 0.0, 1.0
        if lb > ub:
            raise SolverError(f"variable {name}: lb {lb} > ub {ub}")
        if math.isinf(lb) and lb > 0 or math.isinf(ub) and ub < 0:
            raise SolverError(f"variable {name}: invalid infinite bound")
        var = Variable(self._id, len(self.variables), name, kind, float(lb), float(ub))
        self.variables.append(var)
        self._names.add(name)
        return var

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built from expression comparisons."""
        if not isinstance(constraint, Constraint):
            raise SolverError(
                "add_constraint expects an expression comparison "
                "(e.g. x + y <= 3); got a bool — don't use chained comparisons"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    @staticmethod
    def _as_expr(expr: LinExpr | Variable | float) -> LinExpr:
        if isinstance(expr, Variable):
            return LinExpr.from_term(expr)
        if isinstance(expr, (int, float)):
            return LinExpr.constant(float(expr))
        return expr

    def minimize(self, expr: LinExpr | Variable | float) -> None:
        """Set a minimization objective (constants allowed: feasibility
        problems compile to a zero objective)."""
        self.objective = self._as_expr(expr)
        self._maximized = False

    def maximize(self, expr: LinExpr | Variable | float) -> None:
        """Set a maximization objective (stored negated)."""
        self.objective = self._as_expr(expr) * -1.0
        self._maximized = True

    @property
    def is_maximization(self) -> bool:
        """True when :meth:`maximize` set the objective."""
        return self._maximized

    # -- compilation ---------------------------------------------------------

    def compile(self) -> CompiledModel:
        """Lower to dense arrays (minimization form)."""
        n = len(self.variables)
        c = np.zeros(n)
        c0 = 0.0
        if self.objective is not None:
            for idx, coeff in self.objective.coeffs.items():
                c[idx] = coeff
            c0 = self.objective.const

        ub_rows: list[np.ndarray] = []
        ub_rhs: list[float] = []
        eq_rows: list[np.ndarray] = []
        eq_rhs: list[float] = []
        for con in self.constraints:
            row = np.zeros(n)
            for idx, coeff in con.expr.coeffs.items():
                row[idx] = coeff
            rhs = -con.expr.const
            if con.sense is Sense.LE:
                ub_rows.append(row)
                ub_rhs.append(rhs)
            elif con.sense is Sense.GE:
                ub_rows.append(-row)
                ub_rhs.append(-rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(rhs)

        lb = np.array([v.lb for v in self.variables])
        ub = np.array([v.ub for v in self.variables])
        integer = np.array([v.kind is not VarKind.CONTINUOUS for v in self.variables])
        return CompiledModel(
            c=c,
            c0=c0,
            a_ub=np.array(ub_rows).reshape(len(ub_rows), n) if ub_rows else np.zeros((0, n)),
            b_ub=np.array(ub_rhs),
            a_eq=np.array(eq_rows).reshape(len(eq_rows), n) if eq_rows else np.zeros((0, n)),
            b_eq=np.array(eq_rhs),
            lb=lb,
            ub=ub,
            integer=integer,
            names=[v.name for v in self.variables],
        )
