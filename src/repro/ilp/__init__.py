"""Integer linear programming substrate.

A small modeling layer (:class:`Model`) with two interchangeable engines:

* ``"bundled"`` — the from-scratch two-phase simplex + branch-and-bound
  (the reproduction's substitute for the paper's CPLEX 7.0),
* ``"scipy"`` — HiGHS via ``scipy.optimize.milp``, used for large models
  and as an independent cross-check.

``"auto"`` picks bundled for small models and scipy above
:data:`AUTO_VAR_THRESHOLD` variables.
"""

from __future__ import annotations

from repro.errors import SolverError
from repro.ilp.branchbound import solve_branch_and_bound
from repro.ilp.model import INF, LinExpr, Model, Sense, VarKind, Variable
from repro.ilp.result import LPResult, SolveResult, SolveStatus
from repro.ilp.scipy_backend import solve_scipy, solve_scipy_lp
from repro.ilp.simplex import solve_lp
from repro.obs.trace import TracerLike

#: "auto" switches from the bundled engine to scipy above this many variables.
#: Calibrated on harvested per-tile ILP-II instances: below ~100 variables the
#: bundled branch-and-bound solves in milliseconds; above it HiGHS pulls ahead.
AUTO_VAR_THRESHOLD = 100


def solve(
    model: Model,
    backend: str = "auto",
    max_nodes: int = 100000,
    time_limit: float | None = None,
    tracer: TracerLike | None = None,
) -> SolveResult:
    """Solve ``model`` with the selected backend.

    Args:
        model: the model to solve.
        backend: ``"bundled"``, ``"scipy"``, or ``"auto"``.
        max_nodes: branch-and-bound node limit (bundled engine only).
        time_limit: wall-clock budget in seconds for the solve; exceeded
            deadlines surface as :attr:`SolveStatus.TIME_LIMIT` on either
            backend.
        tracer: optional telemetry tracer; each backend opens a span
            recording status and solver effort.
    """
    if backend == "auto":
        backend = "bundled" if len(model.variables) <= AUTO_VAR_THRESHOLD else "scipy"
    if backend == "bundled":
        return solve_branch_and_bound(
            model, max_nodes=max_nodes, time_limit=time_limit, tracer=tracer
        )
    if backend == "scipy":
        return solve_scipy(model, time_limit=time_limit, tracer=tracer)
    raise SolverError(f"unknown backend {backend!r}; expected bundled/scipy/auto")


__all__ = [
    "INF",
    "AUTO_VAR_THRESHOLD",
    "LinExpr",
    "Model",
    "Sense",
    "VarKind",
    "Variable",
    "LPResult",
    "SolveResult",
    "SolveStatus",
    "solve",
    "solve_branch_and_bound",
    "solve_lp",
    "solve_scipy",
    "solve_scipy_lp",
]
