"""scipy/HiGHS backend for :class:`repro.ilp.model.Model`.

Used for large instances (the Min-Var budget LP over all tiles) and as an
independent cross-check of the bundled branch-and-bound solver in tests.
"""

from __future__ import annotations

import math
from types import MappingProxyType

import numpy as np
from scipy.optimize import LinearConstraint, milp
from scipy.optimize import linprog

from repro.errors import SolverError
from repro.ilp.model import Model
from repro.ilp.result import SolveResult, SolveStatus
from repro.obs.trace import NULL_TRACER, TracerLike

# HiGHS milp/linprog status codes. Code 1 means "iteration or time limit";
# we disambiguate in :func:`_classify` using whether a time limit was set
# (HiGHS does not tell us which one fired, but we never set an iteration
# limit, so with a deadline configured code 1 can only be the clock).
_SCIPY_STATUS = MappingProxyType(
    {
        0: SolveStatus.OPTIMAL,
        2: SolveStatus.INFEASIBLE,
        3: SolveStatus.UNBOUNDED,
        4: SolveStatus.NUMERICAL,
    }
)


def _classify(raw_status: int, time_limited: bool) -> SolveStatus:
    if raw_status == 1:
        return SolveStatus.TIME_LIMIT if time_limited else SolveStatus.ITERATION_LIMIT
    return _SCIPY_STATUS.get(raw_status, SolveStatus.FAILED)


def solve_scipy(
    model: Model,
    time_limit: float | None = None,
    tracer: TracerLike | None = None,
) -> SolveResult:
    """Solve via ``scipy.optimize.milp`` (HiGHS). Continuous models go to
    HiGHS too (milp handles them).

    ``time_limit`` is a wall-clock budget in seconds; when it fires the
    result status is :attr:`SolveStatus.TIME_LIMIT` (with the incumbent, if
    HiGHS found one). ``tracer``, when given, records an ``ilp.scipy``
    span with the variable count and final status.
    """
    trc = tracer if tracer is not None else NULL_TRACER
    compiled = model.compile()
    n = compiled.c.shape[0]

    constraints = []
    if compiled.a_ub.size:
        constraints.append(LinearConstraint(compiled.a_ub, -np.inf, compiled.b_ub))
    if compiled.a_eq.size:
        constraints.append(LinearConstraint(compiled.a_eq, compiled.b_eq, compiled.b_eq))

    from scipy.optimize import Bounds

    bounds = Bounds(compiled.lb, compiled.ub)
    integrality = compiled.integer.astype(np.int64)
    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    with trc.span("ilp.scipy", vars=n) as span:
        res = milp(
            c=compiled.c,
            constraints=constraints,
            bounds=bounds,
            integrality=integrality,
            options=options,
        )
        status = _classify(res.status, time_limit is not None)
        span.set("status", status.name)
        if res.x is None:
            if status is SolveStatus.OPTIMAL:
                # HiGHS claims success but returned no point — never hand NaN
                # to a caller that just checked is_optimal.
                raise SolverError("scipy milp reported success without a solution vector")
            return SolveResult(status, {}, math.nan, 0, 0)
        x = np.asarray(res.x)
        values = {
            name: (round(v) if compiled.integer[i] else float(v))
            for i, (name, v) in enumerate(zip(compiled.names, x))
        }
        objective = float(compiled.c @ x + compiled.c0)
        if model.is_maximization:
            objective = -objective
        return SolveResult(status, values, objective, 0, 0)


def solve_scipy_lp(model: Model) -> SolveResult:
    """Solve the continuous relaxation via ``scipy.optimize.linprog``."""
    compiled = model.compile()
    res = linprog(
        c=compiled.c,
        A_ub=compiled.a_ub if compiled.a_ub.size else None,
        b_ub=compiled.b_ub if compiled.b_ub.size else None,
        A_eq=compiled.a_eq if compiled.a_eq.size else None,
        b_eq=compiled.b_eq if compiled.b_eq.size else None,
        bounds=list(zip(compiled.lb, compiled.ub)),
        method="highs",
    )
    status = _classify(res.status, time_limited=False)
    if res.x is None:
        if status is SolveStatus.OPTIMAL:
            raise SolverError("scipy linprog reported success without a solution vector")
        return SolveResult(status, {}, math.nan, 0, 0)
    values = {name: float(v) for name, v in zip(compiled.names, res.x)}
    objective = float(compiled.c @ res.x + compiled.c0)
    if model.is_maximization:
        objective = -objective
    return SolveResult(status, values, objective, 0, int(getattr(res, "nit", 0)))
