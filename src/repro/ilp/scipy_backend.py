"""scipy/HiGHS backend for :class:`repro.ilp.model.Model`.

Used for large instances (the Min-Var budget LP over all tiles) and as an
independent cross-check of the bundled branch-and-bound solver in tests.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import LinearConstraint, milp
from scipy.optimize import linprog

from repro.ilp.model import Model
from repro.ilp.result import SolveResult, SolveStatus

_MILP_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ITERATION_LIMIT,  # iteration/time limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ITERATION_LIMIT,  # numerical trouble: surface as limit
}


def solve_scipy(model: Model) -> SolveResult:
    """Solve via ``scipy.optimize.milp`` (HiGHS). Continuous models go to
    HiGHS too (milp handles them)."""
    compiled = model.compile()
    n = compiled.c.shape[0]

    constraints = []
    if compiled.a_ub.size:
        constraints.append(LinearConstraint(compiled.a_ub, -np.inf, compiled.b_ub))
    if compiled.a_eq.size:
        constraints.append(LinearConstraint(compiled.a_eq, compiled.b_eq, compiled.b_eq))

    from scipy.optimize import Bounds

    bounds = Bounds(compiled.lb, compiled.ub)
    integrality = compiled.integer.astype(np.int64)
    res = milp(
        c=compiled.c,
        constraints=constraints,
        bounds=bounds,
        integrality=integrality,
    )
    status = _MILP_STATUS.get(res.status, SolveStatus.ITERATION_LIMIT)
    if res.x is None:
        return SolveResult(status, {}, math.nan, 0, 0)
    x = np.asarray(res.x)
    values = {
        name: (round(v) if compiled.integer[i] else float(v))
        for i, (name, v) in enumerate(zip(compiled.names, x))
    }
    objective = float(compiled.c @ x + compiled.c0)
    if model.is_maximization:
        objective = -objective
    return SolveResult(status, values, objective, 0, 0)


def solve_scipy_lp(model: Model) -> SolveResult:
    """Solve the continuous relaxation via ``scipy.optimize.linprog``."""
    compiled = model.compile()
    res = linprog(
        c=compiled.c,
        A_ub=compiled.a_ub if compiled.a_ub.size else None,
        b_ub=compiled.b_ub if compiled.b_ub.size else None,
        A_eq=compiled.a_eq if compiled.a_eq.size else None,
        b_eq=compiled.b_eq if compiled.b_eq.size else None,
        bounds=list(zip(compiled.lb, compiled.ub)),
        method="highs",
    )
    status = {
        0: SolveStatus.OPTIMAL,
        1: SolveStatus.ITERATION_LIMIT,
        2: SolveStatus.INFEASIBLE,
        3: SolveStatus.UNBOUNDED,
        4: SolveStatus.ITERATION_LIMIT,
    }.get(res.status, SolveStatus.ITERATION_LIMIT)
    if res.x is None:
        return SolveResult(status, {}, math.nan, 0, 0)
    values = {name: float(v) for name, v in zip(compiled.names, res.x)}
    objective = float(compiled.c @ res.x + compiled.c0)
    if model.is_maximization:
        objective = -objective
    return SolveResult(status, values, objective, 0, int(getattr(res, "nit", 0)))
