"""Injectable monotonic clocks for the telemetry layer.

Every span duration in :mod:`repro.obs.trace` comes from a ``Clock``
passed in at tracer construction, so this module is the *only* place in
the observability package that reads the real wall clock — it is the
sole ``repro.obs`` entry on the D102 wall-clock allowlist, which keeps
the lint rule honest: tracing code elsewhere cannot quietly call
``time.perf_counter()`` and escape review.

``ManualClock`` gives tests fully deterministic span timings.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """Monotonic time source: ``now()`` returns seconds from an arbitrary origin."""

    def now(self) -> float:
        """Return the current monotonic time in seconds."""
        ...


class MonotonicClock:
    """The real monotonic clock (``time.perf_counter``)."""

    __slots__ = ()

    def now(self) -> float:
        return time.perf_counter()


class ManualClock:
    """A hand-advanced clock for deterministic tests."""

    __slots__ = ("_now_s",)

    def __init__(self, start_s: float = 0.0) -> None:
        self._now_s = start_s

    def now(self) -> float:
        return self._now_s

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance a monotonic clock backwards ({seconds})")
        self._now_s += seconds


#: Shared default clock: stateless, safe to reuse across tracers.
SYSTEM_CLOCK = MonotonicClock()
