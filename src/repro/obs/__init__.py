"""Observability: tracing spans, metrics registry, run-report export.

Telemetry is opt-in (``EngineConfig.telemetry=True`` or the CLI's
``--trace-out`` / ``--metrics-out``); when off, the engine holds the
shared :data:`NULL_TRACER` / :data:`NULL_METRICS` singletons whose
methods are no-ops, so instrumented code pays only an attribute lookup.
Nothing here may perturb solver results — telemetry observes the run,
it never participates in it.
"""

from repro.obs.clock import SYSTEM_CLOCK, Clock, ManualClock, MonotonicClock
from repro.obs.metrics import (
    EMPTY_SNAPSHOT,
    NULL_METRICS,
    Metrics,
    MetricsLike,
    MetricsSnapshot,
    NullMetrics,
    TimerStat,
)
from repro.obs.report import (
    REPORT_SCHEMA,
    config_dict,
    run_report,
    solve_report_dict,
    write_report,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    TracerLike,
    span_tree,
)

__all__ = [
    "Clock",
    "EMPTY_SNAPSHOT",
    "ManualClock",
    "Metrics",
    "MetricsLike",
    "MetricsSnapshot",
    "MonotonicClock",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "REPORT_SCHEMA",
    "SYSTEM_CLOCK",
    "SpanRecord",
    "Telemetry",
    "TimerStat",
    "Tracer",
    "TracerLike",
    "config_dict",
    "run_report",
    "solve_report_dict",
    "span_tree",
    "write_report",
]
