"""Lightweight tracing: nested spans with an injected monotonic clock.

A :class:`Tracer` records :class:`SpanRecord` rows — flat, picklable,
index-parented — so per-tile traces produced inside process-pool
workers can ship back through ``TileOutcome`` and be grafted into the
run-level tracer with :meth:`Tracer.absorb`.  Span timestamps come from
the :class:`~repro.obs.clock.Clock` given at construction; this module
never reads the wall clock itself (see :mod:`repro.obs.clock`).

Tracers are deliberately lock-free: each tracer has a single owner (the
engine's run loop, or one worker solving one tile) and cross-thread
results are merged by the owner, never written concurrently.

When telemetry is off, callers hold :data:`NULL_TRACER`, whose ``span``
returns a shared no-op context manager — the disabled fast path is two
attribute lookups and no allocation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from types import TracebackType
from typing import Any

from repro.obs.clock import SYSTEM_CLOCK, Clock


@dataclass(frozen=True)
class SpanRecord:
    """One closed span: flat row, parented by index into the record list.

    ``start_s`` is relative to the owning tracer's construction time
    (worker spans absorbed into a run tracer keep their worker-relative
    start; only durations are comparable across process boundaries).
    """

    name: str
    start_s: float
    duration_s: float
    parent: int = -1
    attrs: tuple[tuple[str, str], ...] = ()

    def as_dict(self) -> dict[str, object]:
        """JSON-ready dict (used by the run-report exporter)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }


class SpanHandle:
    """Mutable attribute sink for one open span; no-op when detached."""

    __slots__ = ("_attrs",)

    def __init__(self, attrs: dict[str, str] | None) -> None:
        self._attrs = attrs

    def set(self, key: str, value: object) -> None:
        """Attach ``key=value`` to the span (stringified); no-op when null."""
        if self._attrs is not None:
            self._attrs[key] = str(value)


_NULL_HANDLE = SpanHandle(None)


class _NullSpan:
    """Shared no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> SpanHandle:
        return _NULL_HANDLE

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager for one live span on a real :class:`Tracer`."""

    __slots__ = ("_tracer", "_index", "_attrs")

    def __init__(self, tracer: Tracer, index: int, attrs: dict[str, str]) -> None:
        self._tracer = tracer
        self._index = index
        self._attrs = attrs

    def __enter__(self) -> SpanHandle:
        return SpanHandle(self._attrs)

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc is not None and "error" not in self._attrs:
            self._attrs["error"] = f"{type(exc).__name__}: {exc}"
        self._tracer._close(self._index, self._attrs)
        return None


class Tracer:
    """Records nested spans; single-owner, not thread-safe by design."""

    __slots__ = ("_clock", "_records", "_stack", "_t0")

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock: Clock = clock if clock is not None else SYSTEM_CLOCK
        self._records: list[SpanRecord] = []
        self._stack: list[int] = []
        self._t0 = self._clock.now()

    def span(self, name: str, **attrs: object) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("solve", tile=key) as s:``."""
        index = len(self._records)
        parent = self._stack[-1] if self._stack else -1
        self._records.append(
            SpanRecord(name=name, start_s=self._clock.now() - self._t0, duration_s=0.0, parent=parent)
        )
        self._stack.append(index)
        return _ActiveSpan(self, index, {k: str(v) for k, v in attrs.items()})

    def _close(self, index: int, attrs: dict[str, str]) -> None:
        if self._stack and self._stack[-1] == index:
            self._stack.pop()
        placeholder = self._records[index]
        self._records[index] = dataclasses.replace(
            placeholder,
            duration_s=self._clock.now() - self._t0 - placeholder.start_s,
            attrs=tuple(sorted(attrs.items())),
        )

    def records(self) -> tuple[SpanRecord, ...]:
        """All closed (and still-open placeholder) spans, in open order."""
        return tuple(self._records)

    def absorb(self, records: tuple[SpanRecord, ...]) -> None:
        """Graft a worker tracer's records under the current open span.

        Parent indices are re-based onto this tracer's record list; the
        grafted roots are parented to whatever span is currently open.
        Worker ``start_s`` values stay worker-relative (documented on
        :class:`SpanRecord`) — only durations survive the boundary.
        """
        offset = len(self._records)
        graft_parent = self._stack[-1] if self._stack else -1
        for rec in records:
            parent = rec.parent + offset if rec.parent >= 0 else graft_parent
            self._records.append(dataclasses.replace(rec, parent=parent))

    def tree(self) -> list[dict[str, Any]]:
        """Nested span tree of everything recorded so far."""
        return span_tree(self.records())


def span_tree(records: tuple[SpanRecord, ...]) -> list[dict[str, Any]]:
    """Nest flat index-parented records into a JSON-ready forest."""
    nodes: list[dict[str, Any]] = []
    kids: list[list[dict[str, Any]]] = []
    roots: list[dict[str, Any]] = []
    for i, rec in enumerate(records):
        node = rec.as_dict()
        children: list[dict[str, Any]] = []
        node["children"] = children
        nodes.append(node)
        kids.append(children)
        if 0 <= rec.parent < i:
            kids[rec.parent].append(node)
        else:
            roots.append(node)
    return roots


class NullTracer:
    """Disabled-telemetry tracer: every call is a no-op."""

    __slots__ = ()

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def records(self) -> tuple[SpanRecord, ...]:
        return ()

    def absorb(self, records: tuple[SpanRecord, ...]) -> None:
        return None

    def tree(self) -> list[dict[str, Any]]:
        return []


NULL_TRACER = NullTracer()

#: Either a live tracer or the shared null tracer (PEP 604 runtime alias).
TracerLike = Tracer | NullTracer
