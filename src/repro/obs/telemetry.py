"""One-stop telemetry bundle: a tracer plus a metrics registry."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.clock import Clock
from repro.obs.metrics import Metrics
from repro.obs.trace import Tracer


@dataclass
class Telemetry:
    """A live tracer + metrics pair with a shared lifetime.

    Used both run-scoped (owned by ``PILFillEngine.run`` and attached to
    the ``FillResult``) and tile-scoped (built inside a pool worker and
    marshalled back as snapshot/records through ``TileOutcome``).
    """

    tracer: Tracer = field(default_factory=Tracer)
    metrics: Metrics = field(default_factory=Metrics)

    @classmethod
    def create(cls, clock: Clock | None = None) -> Telemetry:
        """Build a bundle whose tracer uses ``clock`` (default: system)."""
        return cls(tracer=Tracer(clock=clock), metrics=Metrics())
