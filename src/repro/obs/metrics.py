"""Counters and timer histograms with a picklable snapshot for pool workers.

A :class:`Metrics` registry is single-owner, like the tracer: each
process-pool worker builds its own registry per tile, snapshots it into
the frozen :class:`MetricsSnapshot` (picklable by construction — it is
on the C202 payload registry), ships it back inside ``TileOutcome``,
and the dispatcher merges snapshots into the run-level registry.

:data:`NULL_METRICS` is the disabled fast path — every method is a
no-op and ``snapshot()`` returns the shared :data:`EMPTY_SNAPSHOT`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimerStat:
    """Aggregate of one timer series: count / total / min / max seconds."""

    count: int
    total_s: float
    min_s: float
    max_s: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "mean_s": self.total_s / self.count if self.count else 0.0,
        }


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen, picklable view of a registry (sorted for determinism)."""

    counters: tuple[tuple[str, int], ...] = ()
    timers: tuple[tuple[str, TimerStat], ...] = ()

    def as_dict(self) -> dict[str, object]:
        return {
            "counters": dict(self.counters),
            "timers": {name: stat.as_dict() for name, stat in self.timers},
        }


EMPTY_SNAPSHOT = MetricsSnapshot()


class Metrics:
    """Mutable counter/timer registry; single-owner, not thread-safe."""

    __slots__ = ("_counters", "_timers")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._timers: dict[str, list[float]] = {}  # [count, total, min, max]

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration sample into timer ``name``."""
        cell = self._timers.get(name)
        if cell is None:
            self._timers[name] = [1.0, seconds, seconds, seconds]
        else:
            cell[0] += 1.0
            cell[1] += seconds
            cell[2] = min(cell[2], seconds)
            cell[3] = max(cell[3], seconds)

    def snapshot(self) -> MetricsSnapshot:
        """Frozen, sorted view suitable for pickling and JSON export."""
        return MetricsSnapshot(
            counters=tuple(sorted(self._counters.items())),
            timers=tuple(
                (name, TimerStat(int(c[0]), c[1], c[2], c[3]))
                for name, c in sorted(self._timers.items())
            ),
        )

    def merge(self, snap: MetricsSnapshot | None) -> None:
        """Fold a (worker) snapshot into this registry; ``None`` is a no-op."""
        if snap is None:
            return
        for name, n in snap.counters:
            self.count(name, n)
        for name, stat in snap.timers:
            cell = self._timers.get(name)
            if cell is None:
                self._timers[name] = [float(stat.count), stat.total_s, stat.min_s, stat.max_s]
            else:
                cell[0] += stat.count
                cell[1] += stat.total_s
                cell[2] = min(cell[2], stat.min_s)
                cell[3] = max(cell[3], stat.max_s)


class NullMetrics:
    """Disabled-telemetry registry: every call is a no-op."""

    __slots__ = ()

    def count(self, name: str, n: int = 1) -> None:
        return None

    def observe(self, name: str, seconds: float) -> None:
        return None

    def snapshot(self) -> MetricsSnapshot:
        return EMPTY_SNAPSHOT

    def merge(self, snap: MetricsSnapshot | None) -> None:
        return None


NULL_METRICS = NullMetrics()

#: Either a live registry or the shared null registry.
MetricsLike = Metrics | NullMetrics
