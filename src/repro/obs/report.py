"""Run-report exporter: engine results + telemetry → one JSON document.

The report schema (``pilfill-run-report/v1``) bundles everything a
post-mortem needs: the engine configuration, per-tile budgets, every
:class:`~repro.pilfill.robust.SolveReport` (including the rung error
history of degraded/failed tiles), the merged metrics snapshot, and the
nested span tree.  ``FillResult.to_report()`` and the CLI's
``--trace-out`` / ``--metrics-out`` flags are thin wrappers over
:func:`run_report` / :func:`write_report`.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.io.atomic import atomic_write_json
from repro.obs.trace import span_tree

if TYPE_CHECKING:  # engine types only for annotations — no runtime cycle
    from repro.pilfill.engine import EngineConfig, FillResult
    from repro.pilfill.robust import SolveReport

#: Version tag embedded in every exported report.
REPORT_SCHEMA = "pilfill-run-report/v1"


def config_dict(config: EngineConfig) -> dict[str, Any]:
    """JSON-ready summary of the run configuration."""
    return {
        "method": config.method,
        "weighted": config.weighted,
        "column_def": config.column_def.name,
        "budget_mode": config.budget_mode,
        "backend": config.backend,
        "seed": config.seed,
        "workers": config.workers,
        "parallel_backend": config.parallel_backend,
        "tile_deadline_s": config.tile_deadline_s,
        "run_deadline_s": config.run_deadline_s,
        "fallback": config.fallback,
        "telemetry": config.telemetry,
        "solution_cache": config.solution_cache is not None,
    }


def solve_report_dict(report: SolveReport) -> dict[str, Any]:
    """JSON-ready view of one tile's solve report."""
    status = "failed" if report.failed else ("degraded" if report.degraded else "ok")
    return {
        "tile": list(report.key),
        "requested_method": report.requested_method,
        "used_method": report.used_method,
        "retries": report.retries,
        "errors": list(report.errors),
        "status": status,
    }


def run_report(result: FillResult, config: EngineConfig | None = None) -> dict[str, Any]:
    """Assemble the full ``pilfill-run-report/v1`` document."""
    telemetry = result.telemetry
    return {
        "schema": REPORT_SCHEMA,
        "config": config_dict(config) if config is not None else None,
        "totals": {
            "features": result.total_features,
            "shortfall": result.shortfall,
            "model_objective_ps": result.model_objective_ps,
            "tiles_solved": len(result.tile_solutions),
            "degraded_tiles": len(result.degraded_tiles),
            "failed_tiles": len(result.failed_tiles),
            "retried_tiles": len(result.retried_tiles),
            "clean": result.clean,
        },
        "budgets": {
            "requested": sum(result.requested_budget.values()),
            "effective": sum(result.effective_budget.values()),
        },
        "phase_seconds": dict(result.phase_seconds),
        "solve_reports": [
            solve_report_dict(result.solve_reports[key])
            for key in sorted(result.solve_reports)
        ],
        "tile_seconds": {
            f"{key[0]},{key[1]}": seconds
            for key, seconds in sorted(result.tile_seconds.items())
        },
        "cache": dict(result.cache_stats) if result.cache_stats is not None else None,
        "metrics": telemetry.metrics.snapshot().as_dict() if telemetry is not None else None,
        "spans": span_tree(telemetry.tracer.records()) if telemetry is not None else None,
    }


def write_report(path: str | Path, payload: dict[str, Any]) -> None:
    """Write a report dict as pretty-printed JSON, creating parent dirs.

    Atomic (temp file + rename): CI artifact collectors and warm-cache
    consumers never observe a torn report.
    """
    atomic_write_json(Path(path), payload)
