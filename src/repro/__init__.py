"""PIL-Fill: Performance-Impact Limited Area Fill Synthesis.

A from-scratch reproduction of Chen, Gupta, Kahng — "Performance-Impact
Limited Area Fill Synthesis" (DAC 2003): the first timing-aware dummy-fill
formulation. The package contains the full stack the paper depends on:

* ``repro.geometry`` / ``repro.tech`` / ``repro.layout`` — layout model,
* ``repro.dissection`` — the fixed r-dissection density framework,
* ``repro.fillsynth`` — the density-control ("normal fill") baseline,
* ``repro.cap`` / ``repro.timing`` — capacitance and Elmore delay models,
* ``repro.ilp`` — a bundled simplex + branch-and-bound MILP solver,
* ``repro.pilfill`` — the core MDFC methods (ILP-I, ILP-II, Greedy, ...),
* ``repro.synth`` — synthetic testcases standing in for the paper's T1/T2,
* ``repro.experiments`` — the Table 1 / Table 2 harness,
* ``repro.io`` — LEF-lite / DEF-lite text formats.

Quickstart::

    from repro import (EngineConfig, PILFillEngine, evaluate_impact,
                       default_fill_rules, density_rules_for, make_t1)

    layout = make_t1()
    rules = default_fill_rules(layout.stack)
    config = EngineConfig(fill_rules=rules,
                          density_rules=density_rules_for(32, 2, layout.stack),
                          method="ilp2")
    result = PILFillEngine(layout, "metal3", config).run()
    impact = evaluate_impact(layout, "metal3", result.features, rules)
    print(impact.weighted_total_ps)
"""

from repro.errors import (
    DissectionError,
    FillError,
    GeometryError,
    InfeasibleError,
    LayoutError,
    ParseError,
    ReproError,
    SolverError,
    SolveTimeoutError,
    TechError,
    UnboundedError,
    WorkerDeathError,
)
from repro.geometry import GridBinIndex, Interval, IntervalSet, Point, Rect, SiteGrid
from repro.tech import (
    DensityRules,
    FillRules,
    ProcessLayer,
    ProcessStack,
    STANDARD_CORNERS,
    Corner,
    corner_stacks,
    default_stack,
    derate_stack,
)
from repro.layout import (
    FillFeature,
    LineTiming,
    Net,
    Pin,
    RCTree,
    RoutedLayout,
    WireSegment,
    validate_fill,
    validate_layout,
)
from repro.dissection import (
    DensityMap,
    DensityStats,
    FixedDissection,
    SmoothnessReport,
    check_density,
    smoothness,
)
from repro.fillsynth import (
    SiteLegality,
    hybrid_budget,
    lp_minvar_budget,
    montecarlo_budget,
    place_normal,
)
from repro.pilfill import (
    EngineConfig,
    FillResult,
    ImpactModel,
    ImpactReport,
    METHODS,
    PILFillEngine,
    PreparedInstance,
    SlackColumn,
    SlackColumnDef,
    SolveReport,
    evaluate_impact,
    fallback_chain,
    prepare,
    refine_placement,
    run_all_layers,
)
from repro.testing.faults import FaultRule, FaultSpec, sample_tiles
from repro.rulefill import run_rule_fill, select_rule
from repro.synth import (
    GeneratorSpec,
    default_fill_rules,
    density_rules_for,
    generate_layout,
    make_t1,
    make_t2,
)
from repro.experiments import generate_report, run_config, run_study, run_table1, run_table2
from repro.io import parse_def, parse_lef, write_def, write_lef
from repro.timing import (
    baseline_sink_delays,
    cap_budgets_from_slack,
    slack_report,
    timing_report,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError", "GeometryError", "LayoutError", "TechError", "DissectionError",
    "ParseError", "SolverError", "SolveTimeoutError", "WorkerDeathError",
    "InfeasibleError", "UnboundedError", "FillError",
    # geometry
    "Point", "Rect", "Interval", "IntervalSet", "SiteGrid", "GridBinIndex",
    # tech
    "ProcessLayer", "ProcessStack", "default_stack", "FillRules", "DensityRules",
    "Corner", "STANDARD_CORNERS", "corner_stacks", "derate_stack",
    # layout
    "Net", "Pin", "WireSegment", "RoutedLayout", "RCTree", "LineTiming",
    "FillFeature", "validate_layout", "validate_fill",
    # dissection
    "FixedDissection", "DensityMap", "DensityStats", "SmoothnessReport",
    "check_density", "smoothness",
    # fillsynth
    "SiteLegality", "hybrid_budget", "lp_minvar_budget", "montecarlo_budget",
    "place_normal",
    # pilfill
    "METHODS", "EngineConfig", "PILFillEngine", "FillResult", "ImpactReport",
    "ImpactModel", "SlackColumn", "SlackColumnDef", "evaluate_impact",
    "PreparedInstance", "prepare", "refine_placement", "run_all_layers",
    "SolveReport", "fallback_chain",
    # testing / fault injection
    "FaultRule", "FaultSpec", "sample_tiles",
    # rulefill
    "run_rule_fill", "select_rule",
    # synth
    "GeneratorSpec", "generate_layout", "make_t1", "make_t2",
    "default_fill_rules", "density_rules_for",
    # experiments
    "run_config", "run_table1", "run_table2", "run_study", "generate_report",
    # io
    "parse_lef", "write_lef", "parse_def", "write_def",
    # timing
    "baseline_sink_delays", "timing_report", "slack_report",
    "cap_budgets_from_slack",
]
