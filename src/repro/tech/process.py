"""Process stack description: metal layers with electrical parameters.

The capacitance model of the paper (Section 3) needs, per routing layer:

* relative permittivity ``eps_r`` of the inter-metal dielectric,
* metal thickness (the "overlapping area" ``a`` per unit length between two
  parallel lines on the same layer is thickness × 1),
* sheet resistance, from which per-unit-length wire resistance follows as
  ``rho_sheet / width``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TechError
from repro.units import DEFAULT_DBU_PER_MICRON, EPS0_FF_PER_UM


@dataclass(frozen=True)
class ProcessLayer:
    """Electrical and geometric description of one routing layer.

    Attributes:
        name: layer name, e.g. ``"metal3"``.
        direction: preferred routing direction, ``"h"`` or ``"v"``.
        thickness_um: metal thickness in microns.
        eps_r: relative permittivity of the same-layer dielectric.
        sheet_res_ohm: sheet resistance in Ω/square.
        min_width_dbu: minimum wire width in DBU.
        min_space_dbu: minimum same-layer spacing in DBU.
        ground_cap_ff_per_um: area+fringe capacitance to the reference plane
            per micron of wire length (used for baseline Elmore delays; fill
            insertion does not change it — paper Section 3).
    """

    name: str
    direction: str
    thickness_um: float
    eps_r: float
    sheet_res_ohm: float
    min_width_dbu: int
    min_space_dbu: int
    ground_cap_ff_per_um: float = 0.2

    def __post_init__(self) -> None:
        if self.direction not in ("h", "v"):
            raise TechError(f"layer {self.name}: direction must be 'h' or 'v', got {self.direction!r}")
        if self.thickness_um <= 0:
            raise TechError(f"layer {self.name}: thickness must be positive")
        if self.eps_r <= 0:
            raise TechError(f"layer {self.name}: eps_r must be positive")
        if self.sheet_res_ohm <= 0:
            raise TechError(f"layer {self.name}: sheet resistance must be positive")
        if self.ground_cap_ff_per_um < 0:
            raise TechError(f"layer {self.name}: ground capacitance must be non-negative")
        if self.min_width_dbu <= 0 or self.min_space_dbu <= 0:
            raise TechError(f"layer {self.name}: min width/space must be positive")

    def unit_resistance(self, width_dbu: int, dbu_per_micron: int = DEFAULT_DBU_PER_MICRON) -> float:
        """Resistance per micron of wire length for a wire of given width, Ω/µm."""
        if width_dbu <= 0:
            raise TechError(f"wire width must be positive, got {width_dbu}")
        width_um = width_dbu / dbu_per_micron
        return self.sheet_res_ohm / width_um

    def coupling_cap_per_um(self, spacing_dbu: int, dbu_per_micron: int = DEFAULT_DBU_PER_MICRON) -> float:
        """Parallel-plate lateral coupling capacitance per micron of overlap
        length between two parallel wires at the given edge-to-edge spacing,
        in fF/µm (paper Eq. 3 with ``a`` = thickness × unit length)."""
        if spacing_dbu <= 0:
            raise TechError(f"spacing must be positive, got {spacing_dbu}")
        spacing_um = spacing_dbu / dbu_per_micron
        return EPS0_FF_PER_UM * self.eps_r * self.thickness_um / spacing_um


@dataclass(frozen=True)
class ProcessStack:
    """An ordered collection of :class:`ProcessLayer`, plus the database
    resolution shared by all geometry.

    ``via_res_ohm`` is the lumped resistance charged whenever a net's
    routing changes layer (a via). Zero by default: the experiment tables
    are published with ideal vias; set it per-stack for via-aware timing.
    """

    layers: tuple[ProcessLayer, ...]
    dbu_per_micron: int = DEFAULT_DBU_PER_MICRON
    name: str = "generic"
    via_res_ohm: float = 0.0
    _by_name: dict = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if not self.layers:
            raise TechError("ProcessStack requires at least one layer")
        if self.dbu_per_micron <= 0:
            raise TechError("dbu_per_micron must be positive")
        if self.via_res_ohm < 0:
            raise TechError("via resistance must be non-negative")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise TechError(f"duplicate layer names in stack: {names}")
        object.__setattr__(self, "_by_name", {layer.name: layer for layer in self.layers})

    def layer(self, name: str) -> ProcessLayer:
        """Look a layer up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise TechError(f"unknown layer {name!r}; stack has {sorted(self._by_name)}") from None

    def has_layer(self, name: str) -> bool:
        """True when the stack defines ``name``."""
        return name in self._by_name

    @property
    def layer_names(self) -> tuple[str, ...]:
        """Names in stack order."""
        return tuple(layer.name for layer in self.layers)


def default_stack(dbu_per_micron: int = DEFAULT_DBU_PER_MICRON) -> ProcessStack:
    """A representative 180 nm-class back-end stack (the technology node of
    the paper's 2001-2003 era industry testcases). Numbers follow published
    ITRS-1999 interconnect parameters; they set realistic R/C magnitudes but
    none of the algorithms depend on the exact values."""
    make = lambda i, direction: ProcessLayer(  # noqa: E731 - tight local factory
        name=f"metal{i}",
        direction=direction,
        thickness_um=0.5,
        eps_r=3.9,
        sheet_res_ohm=0.08,
        min_width_dbu=round(0.28 * dbu_per_micron),
        min_space_dbu=round(0.28 * dbu_per_micron),
    )
    layers = tuple(make(i, "h" if i % 2 == 1 else "v") for i in range(1, 7))
    return ProcessStack(layers=layers, dbu_per_micron=dbu_per_micron, name="gsc180")
