"""Process corners: derated views of a :class:`ProcessStack`.

Interconnect R and C move with process/temperature; a fill flow signed off
only at the typical corner can surprise at slow corners where every ps of
fill-induced delay is multiplied. Corners here are simple multiplicative
derates (the standard black-box abstraction): R×, C× on every layer, plus
the via resistance.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import TechError
from repro.tech.process import ProcessLayer, ProcessStack


@dataclass(frozen=True)
class Corner:
    """One derate point."""

    name: str
    r_factor: float
    c_factor: float

    def __post_init__(self) -> None:
        if self.r_factor <= 0 or self.c_factor <= 0:
            raise TechError(f"corner {self.name}: derate factors must be positive")


#: Conventional three-corner set.
TYPICAL = Corner("typical", 1.0, 1.0)
SLOW = Corner("slow", 1.35, 1.15)
FAST = Corner("fast", 0.75, 0.9)
STANDARD_CORNERS = (FAST, TYPICAL, SLOW)


def derate_layer(layer: ProcessLayer, corner: Corner) -> ProcessLayer:
    """A layer with R/C scaled to ``corner``.

    Capacitance scaling is applied through the effective permittivity
    (coupling) and the ground capacitance; geometry is unchanged.
    """
    return replace(
        layer,
        sheet_res_ohm=layer.sheet_res_ohm * corner.r_factor,
        eps_r=layer.eps_r * corner.c_factor,
        ground_cap_ff_per_um=layer.ground_cap_ff_per_um * corner.c_factor,
    )


def derate_stack(stack: ProcessStack, corner: Corner) -> ProcessStack:
    """The whole stack at ``corner`` (named ``<stack>@<corner>``)."""
    return ProcessStack(
        layers=tuple(derate_layer(layer, corner) for layer in stack.layers),
        dbu_per_micron=stack.dbu_per_micron,
        name=f"{stack.name}@{corner.name}",
        via_res_ohm=stack.via_res_ohm * corner.r_factor,
    )


def corner_stacks(stack: ProcessStack, corners: tuple[Corner, ...] = STANDARD_CORNERS) -> dict[str, ProcessStack]:
    """All corner views keyed by corner name."""
    return {corner.name: derate_stack(stack, corner) for corner in corners}
