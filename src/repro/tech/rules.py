"""Foundry rules: fill-pattern rules and density (CMP) rules.

These encode the "leftmost column of Table 1" parameters of the paper:
window size ``w``, dissection value ``r``, fill feature size, gap between
fill features, and buffer distance from interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TechError


@dataclass(frozen=True)
class FillRules:
    """Design rules for floating square fill features.

    Attributes:
        fill_size: side of the square fill feature, DBU.
        fill_gap: minimum spacing between fill features, DBU.
        buffer_distance: minimum spacing between any fill feature and any
            active (signal) geometry, DBU.
    """

    fill_size: int
    fill_gap: int
    buffer_distance: int

    def __post_init__(self) -> None:
        if self.fill_size <= 0:
            raise TechError(f"fill_size must be positive, got {self.fill_size}")
        if self.fill_gap < 0:
            raise TechError(f"fill_gap must be non-negative, got {self.fill_gap}")
        if self.buffer_distance < 0:
            raise TechError(f"buffer_distance must be non-negative, got {self.buffer_distance}")

    @property
    def pitch(self) -> int:
        """Fill placement pitch."""
        return self.fill_size + self.fill_gap

    @property
    def fill_area(self) -> int:
        """Area of one fill feature, DBU²."""
        return self.fill_size * self.fill_size


@dataclass(frozen=True)
class DensityRules:
    """CMP density-control rules in the fixed r-dissection framework.

    Attributes:
        window_size: side ``w`` of the density window in DBU.
        r: dissection value; tiles have side ``w / r`` and windows are
            offset from each other by ``w / r``.
        min_density: lower bound on window feature density (0..1).
        max_density: upper bound on window feature density (0..1).
    """

    window_size: int
    r: int
    min_density: float = 0.0
    max_density: float = 1.0

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise TechError(f"window_size must be positive, got {self.window_size}")
        if self.r <= 0:
            raise TechError(f"r must be positive, got {self.r}")
        if self.window_size % self.r != 0:
            raise TechError(
                f"window_size {self.window_size} must be divisible by r {self.r} "
                "so tiles have integral size"
            )
        if not 0.0 <= self.min_density <= 1.0:
            raise TechError(f"min_density must be in [0, 1], got {self.min_density}")
        if not 0.0 <= self.max_density <= 1.0:
            raise TechError(f"max_density must be in [0, 1], got {self.max_density}")
        if self.min_density > self.max_density:
            raise TechError(
                f"min_density {self.min_density} exceeds max_density {self.max_density}"
            )

    @property
    def tile_size(self) -> int:
        """Side of one tile: ``window_size / r``."""
        return self.window_size // self.r
