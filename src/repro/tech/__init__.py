"""Technology description: process stack (R/C parameters per layer) and
foundry rules (fill pattern rules, CMP density rules)."""

from repro.tech.process import ProcessLayer, ProcessStack, default_stack
from repro.tech.rules import DensityRules, FillRules
from repro.tech.corners import (
    FAST,
    SLOW,
    STANDARD_CORNERS,
    TYPICAL,
    Corner,
    corner_stacks,
    derate_layer,
    derate_stack,
)

__all__ = [
    "ProcessLayer",
    "ProcessStack",
    "default_stack",
    "DensityRules",
    "FillRules",
    "Corner",
    "TYPICAL",
    "SLOW",
    "FAST",
    "STANDARD_CORNERS",
    "corner_stacks",
    "derate_layer",
    "derate_stack",
]
