"""Units and physical constants.

The library works in integer *database units* (DBU) for geometry, and in
SI-derived engineering units for electrical quantities:

* geometry: DBU, with a layout-defined ``dbu_per_micron`` scale,
* capacitance: femtofarads (fF),
* resistance: ohms (Ω),
* delay: picoseconds (ps) internally; the experiment tables report
  nanoseconds (ns) to match the paper.

Keeping geometry integral makes scan-line events, site grids and density
accounting exact; electrical math is floating point.
"""

from __future__ import annotations

#: Vacuum permittivity in fF/µm (8.854e-12 F/m == 8.854e-3 fF/µm).
EPS0_FF_PER_UM = 8.854e-3

#: Default database resolution: DBU per micron.
DEFAULT_DBU_PER_MICRON = 1000

#: Picoseconds per nanosecond.
PS_PER_NS = 1000.0


def dbu_to_um(value_dbu: float, dbu_per_micron: int = DEFAULT_DBU_PER_MICRON) -> float:
    """Convert a length in DBU to microns."""
    if dbu_per_micron <= 0:
        raise ValueError(f"dbu_per_micron must be positive, got {dbu_per_micron}")
    return value_dbu / dbu_per_micron


def um_to_dbu(value_um: float, dbu_per_micron: int = DEFAULT_DBU_PER_MICRON) -> int:
    """Convert a length in microns to the nearest integer DBU."""
    if dbu_per_micron <= 0:
        raise ValueError(f"dbu_per_micron must be positive, got {dbu_per_micron}")
    return round(value_um * dbu_per_micron)


def ps_to_ns(value_ps: float) -> float:
    """Convert picoseconds to nanoseconds."""
    return value_ps / PS_PER_NS


def ns_to_ps(value_ns: float) -> float:
    """Convert nanoseconds to picoseconds."""
    return value_ns * PS_PER_NS


def format_si(value: float, unit: str, digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(1.2e-5, 's')``.

    Supports prefixes from femto to giga; values outside that range fall
    back to scientific notation.
    """
    prefixes = [
        (1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, ""),
        (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"), (1e-15, "f"),
    ]
    if value == 0:
        return f"0 {unit}"
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}"
    return f"{value:.{digits}e} {unit}"
