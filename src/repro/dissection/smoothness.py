"""Smoothness metrics for filled layouts.

The paper's companion work (ref [4]: Chen-Kahng-Robins-Zelikovsky,
"Smoothness and Uniformity of Filled Layout for VDSM Manufacturability",
ISPD 2002) argues that min/max window density alone under-characterizes
CMP quality: how *abruptly* density changes between overlapping windows
matters too. This module implements those metrics over a
:class:`~repro.dissection.density.DensityMap`:

* **type-I smoothness** — maximum density difference between any two
  windows that overlap (share at least one tile),
* **type-II smoothness** — maximum difference between a window and the
  union of its overlapping neighbors' densities (local "spikiness"),
* **gradient** — maximum density difference between edge-adjacent windows
  of the same dissection phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dissection.density import DensityMap


@dataclass(frozen=True)
class SmoothnessReport:
    """The three smoothness figures plus the classic min/max variation."""

    variation: float
    smoothness_type1: float
    smoothness_type2: float
    gradient: float

    def __str__(self) -> str:
        return (
            f"variation={self.variation:.4f} "
            f"type-I={self.smoothness_type1:.4f} "
            f"type-II={self.smoothness_type2:.4f} "
            f"gradient={self.gradient:.4f}"
        )


def smoothness(density: DensityMap) -> SmoothnessReport:
    """Compute all smoothness metrics for one layer's density map."""
    dissection = density.dissection
    r = dissection.rules.r
    dens = density.window_density()
    if dens.size == 0:
        return SmoothnessReport(0.0, 0.0, 0.0, 0.0)
    wx, wy = dens.shape

    stats = density.stats()
    variation = stats.variation

    # Type-I: windows overlap iff their lower-left tiles are within r-1 in
    # both axes. The max overlapping difference is found by scanning each
    # window's (2r-1)² neighborhood.
    type1 = 0.0
    type2 = 0.0
    for i in range(wx):
        for j in range(wy):
            i0, i1 = max(0, i - r + 1), min(wx, i + r)
            j0, j1 = max(0, j - r + 1), min(wy, j + r)
            patch = dens[i0:i1, j0:j1]
            center = dens[i, j]
            diff = float(np.abs(patch - center).max())
            type1 = max(type1, diff)
            # Type-II: center vs the mean of its overlapping neighbors
            # (excluding itself).
            if patch.size > 1:
                neighbor_mean = (patch.sum() - center) / (patch.size - 1)
                type2 = max(type2, abs(center - float(neighbor_mean)))

    # Gradient: same-phase windows sit r apart in the sliding index.
    gradient = 0.0
    if wx > r:
        gradient = max(gradient, float(np.abs(dens[r:, :] - dens[:-r, :]).max()))
    if wy > r:
        gradient = max(gradient, float(np.abs(dens[:, r:] - dens[:, :-r]).max()))

    return SmoothnessReport(
        variation=variation,
        smoothness_type1=type1,
        smoothness_type2=type2,
        gradient=gradient,
    )
