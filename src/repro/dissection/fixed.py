"""The fixed r-dissection framework (paper Fig. 1).

An ``n × n`` layout is partitioned into square tiles of side ``w / r``
(``w`` = window size, ``r`` = dissection value). Density windows of side
``w`` slide with phase shift ``w / r``: window ``W(i, j)`` covers the
``r × r`` block of tiles with lower-left tile ``T(i, j)``. This realizes
the ``r²`` overlapping fixed dissections that foundry density rules
enforce.

Tiles are addressed column-major as ``(ix, iy)`` with ``T(0, 0)`` at the
die's lower-left corner. Edge tiles may be smaller when the die side is
not a multiple of the tile size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import DissectionError
from repro.geometry import Point, Rect
from repro.tech.rules import DensityRules


@dataclass(frozen=True)
class Tile:
    """One dissection tile."""

    ix: int
    iy: int
    rect: Rect

    @property
    def key(self) -> tuple[int, int]:
        """Grid address ``(ix, iy)``."""
        return (self.ix, self.iy)


@dataclass(frozen=True)
class Window:
    """One density window: an ``r × r`` block of tiles."""

    ix: int
    iy: int
    rect: Rect
    tile_keys: tuple[tuple[int, int], ...]

    @property
    def key(self) -> tuple[int, int]:
        """Lower-left tile address of the window."""
        return (self.ix, self.iy)


class FixedDissection:
    """Tiles and overlapping windows of a fixed r-dissection over a die."""

    def __init__(self, die: Rect, rules: DensityRules):
        if die.is_empty():
            raise DissectionError(f"die must have positive extent, got {die}")
        tile = rules.tile_size
        if tile > die.width or tile > die.height:
            raise DissectionError(
                f"tile size {tile} exceeds die extent {die.width}x{die.height}"
            )
        self.die = die
        self.rules = rules
        self.tile_size = tile
        self.nx = -(-die.width // tile)   # ceil division
        self.ny = -(-die.height // tile)
        self._tiles: dict[tuple[int, int], Tile] = {}
        for ix in range(self.nx):
            for iy in range(self.ny):
                rect = Rect(
                    die.xlo + ix * tile,
                    die.ylo + iy * tile,
                    min(die.xlo + (ix + 1) * tile, die.xhi),
                    min(die.ylo + (iy + 1) * tile, die.yhi),
                )
                self._tiles[(ix, iy)] = Tile(ix, iy, rect)

    # -- tiles ---------------------------------------------------------------

    def tile(self, ix: int, iy: int) -> Tile:
        """Tile at grid address ``(ix, iy)``."""
        try:
            return self._tiles[(ix, iy)]
        except KeyError:
            raise DissectionError(
                f"tile ({ix},{iy}) outside grid {self.nx}x{self.ny}"
            ) from None

    def tiles(self) -> Iterator[Tile]:
        """All tiles, column-major order."""
        for ix in range(self.nx):
            for iy in range(self.ny):
                yield self._tiles[(ix, iy)]

    @property
    def tile_count(self) -> int:
        """Total number of tiles."""
        return self.nx * self.ny

    def tile_at_point(self, x: int, y: int) -> Tile:
        """Tile containing DBU point ``(x, y)``."""
        if not self.die.contains_point(Point(x, y)):
            raise DissectionError(f"point ({x},{y}) outside die {self.die}")
        ix = min((x - self.die.xlo) // self.tile_size, self.nx - 1)
        iy = min((y - self.die.ylo) // self.tile_size, self.ny - 1)
        return self._tiles[(ix, iy)]

    def tiles_overlapping(self, region: Rect) -> list[Tile]:
        """Tiles whose rects overlap ``region`` (open-interior)."""
        clipped = region.intersection(self.die)
        if clipped is None:
            return []
        ix0 = (clipped.xlo - self.die.xlo) // self.tile_size
        iy0 = (clipped.ylo - self.die.ylo) // self.tile_size
        ix1 = min((clipped.xhi - 1 - self.die.xlo) // self.tile_size, self.nx - 1)
        iy1 = min((clipped.yhi - 1 - self.die.ylo) // self.tile_size, self.ny - 1)
        return [
            self._tiles[(ix, iy)]
            for ix in range(ix0, ix1 + 1)
            for iy in range(iy0, iy1 + 1)
        ]

    # -- windows ---------------------------------------------------------------

    def windows(self) -> Iterator[Window]:
        """All r×r-tile windows, sliding by one tile in each direction.

        Follows the paper's convention: windows are the ``nr/w - 1`` × ``nr/w - 1``
        (here: ``nx - r + 1`` × ``ny - r + 1``) positions fully inside the die.
        """
        r = self.rules.r
        for ix in range(max(0, self.nx - r + 1)):
            for iy in range(max(0, self.ny - r + 1)):
                keys = tuple(
                    (ix + dx, iy + dy) for dx in range(r) for dy in range(r)
                )
                rect = Rect.bounding([self._tiles[k].rect for k in keys])
                yield Window(ix, iy, rect, keys)

    @property
    def window_count(self) -> int:
        """Number of sliding windows."""
        r = self.rules.r
        return max(0, self.nx - r + 1) * max(0, self.ny - r + 1)

    def windows_containing_tile(self, ix: int, iy: int) -> list[tuple[int, int]]:
        """Window keys of all windows that include tile ``(ix, iy)``."""
        r = self.rules.r
        out = []
        for wx in range(max(0, ix - r + 1), min(ix, self.nx - r) + 1):
            for wy in range(max(0, iy - r + 1), min(iy, self.ny - r) + 1):
                out.append((wx, wy))
        return out
