"""Density-rule sign-off checker.

Verifies a (filled) layout against :class:`~repro.tech.rules.DensityRules`
the way a physical-verification deck would: every sliding window's feature
density must lie within [min_density, max_density]. Produces a violation
report in the same spirit as :mod:`repro.layout.validate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dissection.density import DensityMap
from repro.dissection.fixed import FixedDissection
from repro.layout.layout import RoutedLayout
from repro.tech.rules import DensityRules


@dataclass(frozen=True)
class DensityViolation:
    """One window out of bounds."""

    window: tuple[int, int]
    density: float
    bound: float
    kind: str  # "min" or "max"

    def __str__(self) -> str:
        relation = "<" if self.kind == "min" else ">"
        return (
            f"window {self.window}: density {self.density:.4f} {relation} "
            f"{self.kind} bound {self.bound:.4f}"
        )


@dataclass
class DensityCheckReport:
    """All window violations of one layer."""

    layer: str
    violations: list[DensityViolation] = field(default_factory=list)
    windows_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        if self.ok:
            return f"{self.layer}: OK ({self.windows_checked} windows)"
        body = "\n".join(str(v) for v in self.violations[:20])
        more = len(self.violations) - 20
        if more > 0:
            body += f"\n... and {more} more"
        return f"{self.layer}: {len(self.violations)} violations\n{body}"


def check_density(
    layout: RoutedLayout,
    layer: str,
    rules: DensityRules,
    include_fill: bool = True,
) -> DensityCheckReport:
    """Check every window of ``layer`` against the density bounds."""
    dissection = FixedDissection(layout.die, rules)
    density = DensityMap.from_layout(dissection, layout, layer, include_fill=include_fill)
    dens = density.window_density()
    report = DensityCheckReport(layer=layer, windows_checked=int(dens.size))
    for win in dissection.windows():
        value = float(dens[win.ix, win.iy])
        if value < rules.min_density - 1e-12:
            report.violations.append(
                DensityViolation(win.key, value, rules.min_density, "min")
            )
        elif value > rules.max_density + 1e-12:
            report.violations.append(
                DensityViolation(win.key, value, rules.max_density, "max")
            )
    return report
