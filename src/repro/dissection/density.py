"""Layout density analysis over a fixed dissection.

Computes per-tile feature area (union-exact, clipped to tiles) and derives
per-window densities, the quantities that CMP density rules constrain and
the Min-Var fill-budget LP consumes.

Two window-aggregation backends share one contract:

* ``direct`` — a summed-area table walked window by window in Python.
  Exact by construction (tile areas from integer-coordinate rects are
  integers well below 2**53, so every float64 partial sum is exact).
  This is the scalar oracle.
* ``fft`` — one full 2-D FFT convolution with an ``r x r`` ones kernel
  (the FFTPL trick, arXiv 1312.4587), then a canonical rounding step:
  when the tile-area map is integer-valued — as every map derived from
  drawn geometry is — the convolution output is snapped with
  ``np.rint`` to the exact integer window sums, making the backend
  *bit-identical* to ``direct`` and therefore to every downstream
  budget. Non-integer maps (synthetic tests) skip the snap and agree
  within FFT round-off only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dissection.fixed import FixedDissection
from repro.geometry import Rect, total_area
from repro.layout.layout import RoutedLayout

#: Window-aggregation backends accepted by :class:`DensityMap`.
DENSITY_BACKENDS = ("direct", "fft")

#: Largest integer magnitude float64 represents exactly; tile-area maps
#: below this bound can be snapped back to exact integers after the FFT.
_EXACT_INT_LIMIT = float(2**53)


@dataclass(frozen=True)
class DensityStats:
    """Summary of window densities on one layer."""

    min_density: float
    max_density: float
    mean_density: float

    @property
    def variation(self) -> float:
        """Max minus min window density — the quantity Min-Var fill drives
        down."""
        return self.max_density - self.min_density


class DensityMap:
    """Per-tile feature area and per-window density for one layer.

    ``tile_area[ix, iy]`` holds drawn feature area (DBU²) clipped to tile
    ``(ix, iy)``; ``window_density()`` aggregates tiles into the sliding
    windows of the dissection using the selected ``backend``.
    """

    def __init__(
        self,
        dissection: FixedDissection,
        tile_area: np.ndarray,
        backend: str = "direct",
    ):
        if tile_area.shape != (dissection.nx, dissection.ny):
            raise ValueError(
                f"tile_area shape {tile_area.shape} != grid "
                f"({dissection.nx},{dissection.ny})"
            )
        if backend not in DENSITY_BACKENDS:
            raise ValueError(
                f"unknown density backend {backend!r}; expected one of "
                f"{DENSITY_BACKENDS}"
            )
        self.dissection = dissection
        self.tile_area = tile_area
        self.backend = backend

    @staticmethod
    def from_rects(
        dissection: FixedDissection,
        rects: list[Rect],
        backend: str = "direct",
    ) -> "DensityMap":
        """Build from drawn rectangles (overlaps are not double counted)."""
        area = np.zeros((dissection.nx, dissection.ny), dtype=np.float64)
        by_tile: dict[tuple[int, int], list[Rect]] = {}
        for rect in rects:
            for tile in dissection.tiles_overlapping(rect):
                clipped = rect.intersection(tile.rect)
                if clipped is not None:
                    by_tile.setdefault(tile.key, []).append(clipped)
        for key, clips in by_tile.items():
            area[key] = total_area(clips)
        return DensityMap(dissection, area, backend)

    @staticmethod
    def from_layout(
        dissection: FixedDissection,
        layout: RoutedLayout,
        layer: str,
        include_fill: bool = False,
        backend: str = "direct",
    ) -> "DensityMap":
        """Build from one layout layer."""
        return DensityMap.from_rects(
            dissection,
            layout.feature_rects(layer, include_fill=include_fill),
            backend,
        )

    # -- derived quantities ---------------------------------------------------

    def tile_density(self, ix: int, iy: int) -> float:
        """Feature density of one tile (0..1)."""
        tile = self.dissection.tile(ix, iy)
        return float(self.tile_area[ix, iy]) / tile.rect.area

    def window_area(self) -> np.ndarray:
        """Feature area per window, shape (wx, wy), via ``self.backend``."""
        if self.backend == "fft":
            return self._window_area_fft()
        return self._window_area_direct()

    def _window_area_direct(self) -> np.ndarray:
        """Summed-area table walked per window — the scalar oracle."""
        r = self.dissection.rules.r
        nx, ny = self.dissection.nx, self.dissection.ny
        wx, wy = max(0, nx - r + 1), max(0, ny - r + 1)
        # 2-D summed-area table for O(1) window sums.
        summed = self.tile_area.cumsum(axis=0).cumsum(axis=1)
        padded = np.zeros((nx + 1, ny + 1))
        padded[1:, 1:] = summed
        out = np.zeros((wx, wy))
        for i in range(wx):
            for j in range(wy):
                out[i, j] = (
                    padded[i + r, j + r]
                    - padded[i, j + r]
                    - padded[i + r, j]
                    + padded[i, j]
                )
        return out

    def _window_area_fft(self) -> np.ndarray:
        """All window sums from one FFT convolution pass.

        Convolving the tile-area map with an ``r x r`` ones kernel makes
        every output cell a sum of an ``r x r`` block; slicing the full
        convolution at offset ``r - 1`` selects exactly the in-grid
        window positions the direct path enumerates. Integer-valued maps
        are snapped back to exact integers (the canonical rounding step
        that restores bit-identity with the oracle).
        """
        r = self.dissection.rules.r
        nx, ny = self.dissection.nx, self.dissection.ny
        wx, wy = max(0, nx - r + 1), max(0, ny - r + 1)
        if wx == 0 or wy == 0:
            return np.zeros((wx, wy))
        fx, fy = nx + r - 1, ny + r - 1
        spec = np.fft.rfft2(self.tile_area, s=(fx, fy))
        kernel = np.fft.rfft2(np.ones((r, r)), s=(fx, fy))
        conv = np.fft.irfft2(spec * kernel, s=(fx, fy))
        out = np.ascontiguousarray(conv[r - 1 : r - 1 + wx, r - 1 : r - 1 + wy])
        tile_area = self.tile_area
        integral = bool(
            np.all(np.abs(tile_area) < _EXACT_INT_LIMIT)
            and np.all(tile_area == np.floor(tile_area))
        )
        if integral:
            np.rint(out, out=out)
        return out

    def _window_geometry_area(self) -> np.ndarray:
        """Geometric area per window, shape (wx, wy).

        Windows are separable: a window's rect spans ``r`` tiles per
        axis, clipped to the die exactly like
        :meth:`FixedDissection.windows` builds them — this vectorized
        form reproduces those integers bit for bit without materializing
        ``wx * wy`` ``Window`` objects.
        """
        d = self.dissection
        die, tile, r = d.die, d.tile_size, d.rules.r
        wx, wy = max(0, d.nx - r + 1), max(0, d.ny - r + 1)
        ix = np.arange(wx, dtype=np.int64)
        iy = np.arange(wy, dtype=np.int64)
        spans_x = np.minimum(die.xlo + (ix + r) * tile, die.xhi) - (die.xlo + ix * tile)
        spans_y = np.minimum(die.ylo + (iy + r) * tile, die.yhi) - (die.ylo + iy * tile)
        return spans_x[:, None].astype(np.float64) * spans_y[None, :].astype(np.float64)

    def window_density(self) -> np.ndarray:
        """Feature density per window (0..1), shape (wx, wy)."""
        areas = self.window_area()
        if self.backend == "fft":
            window_geo = self._window_geometry_area()
        else:
            window_geo = np.zeros_like(areas)
            for win in self.dissection.windows():
                window_geo[win.ix, win.iy] = win.rect.area
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(window_geo > 0, areas / window_geo, 0.0)

    def stats(self) -> DensityStats:
        """Min/max/mean window density."""
        dens = self.window_density()
        if dens.size == 0:
            return DensityStats(0.0, 0.0, 0.0)
        return DensityStats(
            min_density=float(dens.min()),
            max_density=float(dens.max()),
            mean_density=float(dens.mean()),
        )

    def added(self, extra_tile_area: np.ndarray) -> "DensityMap":
        """A new map with per-tile area increased by ``extra_tile_area``
        (e.g. planned fill)."""
        return DensityMap(self.dissection, self.tile_area + extra_tile_area, self.backend)
