"""Layout density analysis over a fixed dissection.

Computes per-tile feature area (union-exact, clipped to tiles) and derives
per-window densities, the quantities that CMP density rules constrain and
the Min-Var fill-budget LP consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dissection.fixed import FixedDissection
from repro.geometry import Rect, total_area
from repro.layout.layout import RoutedLayout


@dataclass(frozen=True)
class DensityStats:
    """Summary of window densities on one layer."""

    min_density: float
    max_density: float
    mean_density: float

    @property
    def variation(self) -> float:
        """Max minus min window density — the quantity Min-Var fill drives
        down."""
        return self.max_density - self.min_density


class DensityMap:
    """Per-tile feature area and per-window density for one layer.

    ``tile_area[ix, iy]`` holds drawn feature area (DBU²) clipped to tile
    ``(ix, iy)``; ``window_density()`` aggregates tiles into the sliding
    windows of the dissection.
    """

    def __init__(self, dissection: FixedDissection, tile_area: np.ndarray):
        if tile_area.shape != (dissection.nx, dissection.ny):
            raise ValueError(
                f"tile_area shape {tile_area.shape} != grid "
                f"({dissection.nx},{dissection.ny})"
            )
        self.dissection = dissection
        self.tile_area = tile_area

    @staticmethod
    def from_rects(dissection: FixedDissection, rects: list[Rect]) -> "DensityMap":
        """Build from drawn rectangles (overlaps are not double counted)."""
        area = np.zeros((dissection.nx, dissection.ny), dtype=np.float64)
        by_tile: dict[tuple[int, int], list[Rect]] = {}
        for rect in rects:
            for tile in dissection.tiles_overlapping(rect):
                clipped = rect.intersection(tile.rect)
                if clipped is not None:
                    by_tile.setdefault(tile.key, []).append(clipped)
        for key, clips in by_tile.items():
            area[key] = total_area(clips)
        return DensityMap(dissection, area)

    @staticmethod
    def from_layout(
        dissection: FixedDissection,
        layout: RoutedLayout,
        layer: str,
        include_fill: bool = False,
    ) -> "DensityMap":
        """Build from one layout layer."""
        return DensityMap.from_rects(
            dissection, layout.feature_rects(layer, include_fill=include_fill)
        )

    # -- derived quantities ---------------------------------------------------

    def tile_density(self, ix: int, iy: int) -> float:
        """Feature density of one tile (0..1)."""
        tile = self.dissection.tile(ix, iy)
        return float(self.tile_area[ix, iy]) / tile.rect.area

    def window_area(self) -> np.ndarray:
        """Feature area per window, shape (wx, wy)."""
        r = self.dissection.rules.r
        nx, ny = self.dissection.nx, self.dissection.ny
        wx, wy = max(0, nx - r + 1), max(0, ny - r + 1)
        # 2-D summed-area table for O(1) window sums.
        summed = self.tile_area.cumsum(axis=0).cumsum(axis=1)
        padded = np.zeros((nx + 1, ny + 1))
        padded[1:, 1:] = summed
        out = np.zeros((wx, wy))
        for i in range(wx):
            for j in range(wy):
                out[i, j] = (
                    padded[i + r, j + r]
                    - padded[i, j + r]
                    - padded[i + r, j]
                    + padded[i, j]
                )
        return out

    def window_density(self) -> np.ndarray:
        """Feature density per window (0..1), shape (wx, wy)."""
        areas = self.window_area()
        window_geo = np.zeros_like(areas)
        for win in self.dissection.windows():
            window_geo[win.ix, win.iy] = win.rect.area
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(window_geo > 0, areas / window_geo, 0.0)

    def stats(self) -> DensityStats:
        """Min/max/mean window density."""
        dens = self.window_density()
        if dens.size == 0:
            return DensityStats(0.0, 0.0, 0.0)
        return DensityStats(
            min_density=float(dens.min()),
            max_density=float(dens.max()),
            mean_density=float(dens.mean()),
        )

    def added(self, extra_tile_area: np.ndarray) -> "DensityMap":
        """A new map with per-tile area increased by ``extra_tile_area``
        (e.g. planned fill)."""
        return DensityMap(self.dissection, self.tile_area + extra_tile_area)
