"""Fixed r-dissection framework (paper Fig. 1) and density analysis."""

from repro.dissection.fixed import FixedDissection, Tile, Window
from repro.dissection.density import DENSITY_BACKENDS, DensityMap, DensityStats
from repro.dissection.smoothness import SmoothnessReport, smoothness
from repro.dissection.checker import (
    DensityCheckReport,
    DensityViolation,
    check_density,
)

__all__ = [
    "DensityCheckReport",
    "DensityViolation",
    "check_density",
    "FixedDissection",
    "Tile",
    "Window",
    "DENSITY_BACKENDS",
    "DensityMap",
    "DensityStats",
    "SmoothnessReport",
    "smoothness",
]
