"""Static-timing aggregation: Elmore sink delays per net and before/after
fill comparisons."""

from repro.timing.sta import (
    NetTiming,
    TimingReport,
    baseline_sink_delays,
    timing_report,
)
from repro.timing.slacks import (
    NetSlack,
    SlackReport,
    cap_budgets_from_slack,
    post_fill_slack_report,
    slack_report,
)

__all__ = [
    "NetTiming",
    "TimingReport",
    "baseline_sink_delays",
    "timing_report",
    "NetSlack",
    "SlackReport",
    "cap_budgets_from_slack",
    "post_fill_slack_report",
    "slack_report",
]
