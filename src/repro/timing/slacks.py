"""Slack computation against a clock period.

The paper's future-work direction (Section 7) presumes "budgeted slacks
(translated to budgeted capacitances), which are typically available
within synthesis, place and route tools". This module provides the slack
side: given a clock period (required arrival time at every sink), compute
per-sink and per-net slacks before and after fill, and translate slack
into per-net capacitance budgets more faithfully than the heuristic in
:func:`repro.pilfill.budgeted.derive_net_cap_budgets`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.layout.layout import FillFeature, RoutedLayout
from repro.layout.rctree import OHM_FF_TO_PS
from repro.pilfill.evaluate import evaluate_impact
from repro.tech.rules import FillRules


@dataclass(frozen=True)
class NetSlack:
    """Slack picture of one net against the clock."""

    net: str
    worst_sink: str
    worst_delay_ps: float
    slack_ps: float

    @property
    def is_violating(self) -> bool:
        return self.slack_ps < 0


@dataclass
class SlackReport:
    """Per-net slacks plus summary accessors."""

    clock_ps: float
    nets: dict[str, NetSlack] = field(default_factory=dict)

    @property
    def worst_slack_ps(self) -> float:
        if not self.nets:
            return self.clock_ps
        return min(n.slack_ps for n in self.nets.values())

    @property
    def violations(self) -> list[NetSlack]:
        """Nets with negative slack, worst first."""
        return sorted(
            (n for n in self.nets.values() if n.is_violating),
            key=lambda n: n.slack_ps,
        )

    @property
    def total_negative_slack_ps(self) -> float:
        """Sum of negative slacks (TNS), ≤ 0."""
        return sum(min(n.slack_ps, 0.0) for n in self.nets.values())


def slack_report(layout: RoutedLayout, clock_ps: float) -> SlackReport:
    """Baseline (pre-fill) slacks of every net against ``clock_ps``."""
    if clock_ps <= 0:
        raise ReproError(f"clock period must be positive, got {clock_ps}")
    report = SlackReport(clock_ps=clock_ps)
    for tree in layout.trees():
        delays = tree.elmore_delays()
        if not delays:
            continue
        worst_sink = max(delays, key=delays.get)
        worst = delays[worst_sink]
        report.nets[tree.net.name] = NetSlack(
            net=tree.net.name,
            worst_sink=worst_sink,
            worst_delay_ps=worst,
            slack_ps=clock_ps - worst,
        )
    return report


def post_fill_slack_report(
    layout: RoutedLayout,
    layer: str,
    features: list[FillFeature],
    rules: FillRules,
    clock_ps: float,
) -> SlackReport:
    """Slacks after accounting for the fill's per-net weighted delay
    increments (the increments land on the worst path conservatively)."""
    base = slack_report(layout, clock_ps)
    impact = evaluate_impact(layout, layer, features, rules)
    out = SlackReport(clock_ps=clock_ps)
    for name, net_slack in base.nets.items():
        increment = impact.per_net_weighted_ps.get(name, 0.0)
        out.nets[name] = NetSlack(
            net=name,
            worst_sink=net_slack.worst_sink,
            worst_delay_ps=net_slack.worst_delay_ps + increment,
            slack_ps=net_slack.slack_ps - increment,
        )
    return out


def cap_budgets_from_slack(
    layout: RoutedLayout,
    clock_ps: float,
    consume_fraction: float = 0.5,
) -> dict[str, float]:
    """Per-net capacitance budgets that provably preserve positive slack.

    Each net may spend ``consume_fraction`` of its positive slack on fill.
    The conversion is conservative: the capacitance is charged at the
    net's *maximum* upstream resistance (any actual fill position has less
    or equal delay impact per fF), so keeping ΔC within the budget keeps
    the net's slack non-negative. Nets with no positive slack get 0.
    """
    if not 0.0 <= consume_fraction <= 1.0:
        raise ReproError(f"consume_fraction must be in [0, 1], got {consume_fraction}")
    base = slack_report(layout, clock_ps)
    budgets: dict[str, float] = {}
    for tree in layout.trees():
        name = tree.net.name
        net_slack = base.nets.get(name)
        if net_slack is None or net_slack.slack_ps <= 0:
            budgets[name] = 0.0
            continue
        max_res = max(
            (line.resistance_at(line.segment.high_coord) for line in tree.lines),
            default=0.0,
        )
        if max_res <= 0:
            budgets[name] = 0.0
            continue
        spendable_ps = net_slack.slack_ps * consume_fraction
        # Weighted increments multiply by sink count; bound with the worst.
        worst_weight = max((line.downstream_sinks for line in tree.lines), default=1)
        budgets[name] = spendable_ps / (max_res * OHM_FF_TO_PS * max(worst_weight, 1))
    return budgets
