"""Lightweight static timing views over a routed layout.

The Elmore machinery lives in :class:`repro.layout.rctree.RCTree`; this
module aggregates it across nets and combines baseline sink delays with
fill-induced increments from the impact evaluator, giving the "before vs
after fill" picture a timing-closure flow cares about (paper Section 1's
motivation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.layout.layout import FillFeature, RoutedLayout
from repro.pilfill.evaluate import evaluate_impact
from repro.tech.rules import FillRules


@dataclass
class NetTiming:
    """Baseline and post-fill timing of one net."""

    net: str
    sink_delays_ps: dict[str, float]
    fill_increment_ps: float = 0.0

    @property
    def worst_sink_ps(self) -> float:
        """Largest baseline sink delay."""
        return max(self.sink_delays_ps.values()) if self.sink_delays_ps else 0.0

    @property
    def relative_increase(self) -> float:
        """Fill increment relative to the worst baseline sink delay."""
        worst = self.worst_sink_ps
        return self.fill_increment_ps / worst if worst > 0 else 0.0


@dataclass
class TimingReport:
    """Per-net timing with fill increments, plus totals."""

    nets: dict[str, NetTiming] = field(default_factory=dict)

    @property
    def worst_net(self) -> NetTiming | None:
        """Net with the largest baseline worst-sink delay."""
        if not self.nets:
            return None
        return max(self.nets.values(), key=lambda n: n.worst_sink_ps)

    @property
    def total_increment_ps(self) -> float:
        """Sum of fill increments over all nets (the paper's weighted τ
        when increments are sink-weighted)."""
        return sum(n.fill_increment_ps for n in self.nets.values())

    def worst_relative_increase(self) -> tuple[str, float]:
        """Net name and value of the largest relative delay increase."""
        if not self.nets:
            return ("", 0.0)
        worst = max(self.nets.values(), key=lambda n: n.relative_increase)
        return (worst.net, worst.relative_increase)


def baseline_sink_delays(layout: RoutedLayout) -> dict[str, dict[str, float]]:
    """Elmore sink delays (ps) for every net, before fill."""
    return {tree.net.name: tree.elmore_delays() for tree in layout.trees()}


def timing_report(
    layout: RoutedLayout,
    layer: str,
    features: list[FillFeature],
    rules: FillRules,
    weighted: bool = True,
) -> TimingReport:
    """Baseline timing plus the per-net fill increment of a placement.

    Args:
        weighted: attribute sink-weighted increments (total sink delay
            change) rather than per-segment increments.
    """
    report = TimingReport()
    impact = evaluate_impact(layout, layer, features, rules)
    per_net = impact.per_net_weighted_ps if weighted else impact.per_net_ps
    for tree in layout.trees():
        name = tree.net.name
        report.nets[name] = NetTiming(
            net=name,
            sink_delays_ps=tree.elmore_delays(),
            fill_increment_ps=per_net.get(name, 0.0),
        )
    return report
