"""LEF-lite: a small LEF-inspired dialect for process stacks.

Not full LEF — just the fields this library consumes, in LEF-flavoured
syntax, so testcases and stacks can live in version-controlled text files::

    VERSION 1.0 ;
    UNITS DATABASE MICRONS 1000 ;
    LAYER metal3
      TYPE ROUTING ;
      DIRECTION HORIZONTAL ;
      WIDTH 0.28 ;
      SPACING 0.28 ;
      THICKNESS 0.5 ;
      RESISTANCE RPERSQ 0.08 ;
      EPSR 3.9 ;
      GROUNDCAP 0.2 ;
    END metal3
    END LIBRARY

Widths/spacings in microns (converted to DBU against the UNITS line);
THICKNESS in µm, RESISTANCE in Ω/sq, GROUNDCAP in fF/µm.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.tech.process import ProcessLayer, ProcessStack
from repro.units import um_to_dbu


def write_lef(stack: ProcessStack) -> str:
    """Serialize a stack to LEF-lite text."""
    dbu = stack.dbu_per_micron
    lines = [
        "VERSION 1.0 ;",
        f"UNITS DATABASE MICRONS {dbu} ;",
    ]
    for layer in stack.layers:
        direction = "HORIZONTAL" if layer.direction == "h" else "VERTICAL"
        lines += [
            f"LAYER {layer.name}",
            "  TYPE ROUTING ;",
            f"  DIRECTION {direction} ;",
            f"  WIDTH {layer.min_width_dbu / dbu:g} ;",
            f"  SPACING {layer.min_space_dbu / dbu:g} ;",
            f"  THICKNESS {layer.thickness_um:g} ;",
            f"  RESISTANCE RPERSQ {layer.sheet_res_ohm:g} ;",
            f"  EPSR {layer.eps_r:g} ;",
            f"  GROUNDCAP {layer.ground_cap_ff_per_um:g} ;",
            f"END {layer.name}",
        ]
    lines.append("END LIBRARY")
    return "\n".join(lines) + "\n"


def parse_lef(text: str, name: str = "lef") -> ProcessStack:
    """Parse LEF-lite text into a :class:`ProcessStack`."""
    dbu: int | None = None
    layers: list[ProcessLayer] = []
    current: dict | None = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        tokens = raw.replace(";", " ").split()
        if not tokens or tokens[0].startswith("#"):
            continue
        head = tokens[0].upper()
        try:
            if head == "VERSION":
                continue
            if head == "UNITS":
                if len(tokens) < 4 or tokens[1].upper() != "DATABASE":
                    raise ParseError("expected 'UNITS DATABASE MICRONS <n>'", line_no)
                dbu = int(tokens[3])
            elif head == "LAYER":
                if current is not None:
                    raise ParseError("nested LAYER", line_no)
                current = {"name": tokens[1]}
            elif head == "END":
                if len(tokens) > 1 and tokens[1].upper() == "LIBRARY":
                    break
                if current is None:
                    raise ParseError("END outside LAYER", line_no)
                if dbu is None:
                    raise ParseError("UNITS must precede LAYER blocks", line_no)
                layers.append(_finish_layer(current, dbu, line_no))
                current = None
            elif current is not None:
                _layer_field(current, head, tokens, line_no)
            else:
                raise ParseError(f"unexpected token {tokens[0]!r}", line_no)
        except (ValueError, IndexError) as exc:
            raise ParseError(f"malformed statement: {exc}", line_no) from exc

    if current is not None:
        raise ParseError("unterminated LAYER block")
    if dbu is None:
        raise ParseError("missing UNITS statement")
    if not layers:
        raise ParseError("no LAYER blocks found")
    return ProcessStack(layers=tuple(layers), dbu_per_micron=dbu, name=name)


def _layer_field(current: dict, head: str, tokens: list[str], line_no: int) -> None:
    if head == "TYPE":
        if tokens[1].upper() != "ROUTING":
            raise ParseError(f"unsupported layer type {tokens[1]!r}", line_no)
    elif head == "DIRECTION":
        value = tokens[1].upper()
        if value not in ("HORIZONTAL", "VERTICAL"):
            raise ParseError(f"bad DIRECTION {tokens[1]!r}", line_no)
        current["direction"] = "h" if value == "HORIZONTAL" else "v"
    elif head == "WIDTH":
        current["width_um"] = float(tokens[1])
    elif head == "SPACING":
        current["space_um"] = float(tokens[1])
    elif head == "THICKNESS":
        current["thickness_um"] = float(tokens[1])
    elif head == "RESISTANCE":
        if tokens[1].upper() != "RPERSQ":
            raise ParseError("expected 'RESISTANCE RPERSQ <ohm>'", line_no)
        current["sheet_res_ohm"] = float(tokens[2])
    elif head == "EPSR":
        current["eps_r"] = float(tokens[1])
    elif head == "GROUNDCAP":
        current["ground_cap"] = float(tokens[1])
    else:
        raise ParseError(f"unknown layer field {head!r}", line_no)


def _finish_layer(current: dict, dbu: int, line_no: int) -> ProcessLayer:
    required = ("direction", "width_um", "space_um", "thickness_um", "sheet_res_ohm", "eps_r")
    missing = [k for k in required if k not in current]
    if missing:
        raise ParseError(f"layer {current['name']}: missing fields {missing}", line_no)
    return ProcessLayer(
        name=current["name"],
        direction=current["direction"],
        thickness_um=current["thickness_um"],
        eps_r=current["eps_r"],
        sheet_res_ohm=current["sheet_res_ohm"],
        min_width_dbu=um_to_dbu(current["width_um"], dbu),
        min_space_dbu=um_to_dbu(current["space_um"], dbu),
        ground_cap_ff_per_um=current.get("ground_cap", 0.2),
    )
