"""Atomic file writes for JSON artifacts.

Bench trajectory files, run reports, the lint result cache, and the
solution store are all read back by later runs (or by CI artifact
consumers). A plain ``write_text`` interrupted mid-write leaves a torn
file that poisons that later read — the classic failure mode being a
half-written JSON document that parses as garbage or not at all.

Every artifact writer routes through :func:`atomic_write_text` instead:
the payload lands in a temporary file *in the target directory* (same
filesystem, so the final rename cannot degrade to a copy) and is moved
into place with ``os.replace``, which POSIX guarantees to be atomic.
Readers therefore see either the previous complete file or the new
complete file, never a prefix.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically, creating parent directories.

    The temporary file is created next to the target (never in a shared
    tmpdir) so ``os.replace`` stays a same-filesystem rename; on any
    failure the temporary is removed and the target is left untouched.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str | Path,
    payload: Any,
    *,
    indent: int | None = 2,
    sort_keys: bool = False,
) -> None:
    """Serialize ``payload`` as JSON and write it atomically.

    A trailing newline is always appended so artifacts stay friendly to
    line-oriented tooling (``cat``, ``diff``, CI log tails).
    """
    atomic_write_text(path, json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n")
