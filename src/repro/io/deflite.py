"""DEF-lite: a small DEF-inspired dialect for routed layouts.

Covers exactly what the library models — die area, routed signal nets with
driver/sink pins, and fill features — in DEF-flavoured syntax::

    VERSION 1.0 ;
    DESIGN t1 ;
    UNITS DISTANCE MICRONS 1000 ;
    DIEAREA ( 0 0 ) ( 128000 128000 ) ;
    NETS 2 ;
    - net0
      + PIN drv ( 1000 5000 ) LAYER metal3 DRIVER RES 120
      + PIN s0 ( 90000 5000 ) LAYER metal3 CAP 5
      + ROUTED metal3 ( 1000 5000 ) ( 90000 5000 ) WIDTH 400
      + ROUTED metal4 ( 50000 5000 ) ( 50000 20000 ) WIDTH 400
    ;
    END NETS
    FILLS 1 ;
    - LAYER metal3 RECT ( 10000 10000 10500 10500 ) ;
    END FILLS
    END DESIGN

All coordinates in DBU. Segment order within a net is free; the RC-tree
builder re-orients by signal flow.

Two readers share one line-fed statement machine (:class:`_DefMachine`):

* :func:`parse_def` materializes the whole layout from a text string —
  the historical API.
* :func:`parse_def_streaming` consumes any line source (string, open
  file, iterator) and hands each net to a callback the moment its
  terminating ``;`` arrives, so a chip-scale DEF never has to be held
  in memory at once. :class:`DefWindowStream` / :func:`iter_def_windows`
  build on it to group nets into horizontal bands for window-by-window
  processing with bounded peak memory on band-sorted input.

Both readers attribute *every* error to a physical input line — including
net-level validation failures (unknown layer, geometry leaving the die),
which the materialized reader used to raise long after the parse loop
with no line information at all.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import IO, Callable, Iterable, Iterator

from repro.errors import FillError, LayoutError, ParseError
from repro.geometry import Point, Rect
from repro.layout import FillFeature, Net, Pin, RoutedLayout, WireSegment
from repro.tech.process import ProcessStack

_PAREN = re.compile(r"[()]")


# ---------------------------------------------------------------------------
# writing


def write_def_lines(
    name: str,
    die: Rect,
    dbu_per_micron: int,
    nets: Iterable[Net],
    fills: Iterable[FillFeature] = (),
    *,
    net_count: int | None = None,
    fill_count: int | None = None,
) -> Iterator[str]:
    """Yield DEF-lite lines one at a time.

    The streaming dual of :func:`write_def`: ``nets`` may be a lazy
    iterator (pass ``net_count`` so the ``NETS n ;`` header can be
    emitted before the first net is realized — the readers never check
    the declared count, but round-trips should still be faithful).
    When counts are omitted the iterables are materialized to count them.
    """
    if net_count is None:
        nets = list(nets)
        net_count = len(nets)
    if fill_count is None:
        fills = list(fills)
        fill_count = len(fills)
    yield "VERSION 1.0 ;"
    yield f"DESIGN {name} ;"
    yield f"UNITS DISTANCE MICRONS {dbu_per_micron} ;"
    yield f"DIEAREA ( {die.xlo} {die.ylo} ) ( {die.xhi} {die.yhi} ) ;"
    yield f"NETS {net_count} ;"
    for net in nets:
        yield f"- {net.name}"
        for pin in net.pins:
            if pin.is_driver:
                yield (
                    f"  + PIN {pin.name} ( {pin.point.x} {pin.point.y} ) "
                    f"LAYER {pin.layer} DRIVER RES {pin.driver_res_ohm:g}"
                )
            else:
                yield (
                    f"  + PIN {pin.name} ( {pin.point.x} {pin.point.y} ) "
                    f"LAYER {pin.layer} CAP {pin.load_cap_ff:g}"
                )
        for seg in net.segments:
            yield (
                f"  + ROUTED {seg.layer} ( {seg.start.x} {seg.start.y} ) "
                f"( {seg.end.x} {seg.end.y} ) WIDTH {seg.width}"
            )
        yield ";"
    yield "END NETS"
    yield f"FILLS {fill_count} ;"
    for fill in fills:
        r = fill.rect
        yield f"- LAYER {fill.layer} RECT ( {r.xlo} {r.ylo} {r.xhi} {r.yhi} ) ;"
    yield "END FILLS"
    yield "END DESIGN"


def write_def(layout: RoutedLayout) -> str:
    """Serialize a layout to DEF-lite text."""
    lines = write_def_lines(
        layout.name,
        layout.die,
        layout.stack.dbu_per_micron,
        layout.nets.values(),
        layout.fills,
        net_count=len(layout.nets),
        fill_count=len(layout.fills),
    )
    return "\n".join(lines) + "\n"


def layout_digest(layout: RoutedLayout) -> str:
    """sha256 of the layout's canonical DEF-lite serialization.

    Streamed line by line, so digesting a chip-scale layout never builds
    the full text. Two layouts digest equal iff :func:`write_def` would
    produce identical text — the equivalence oracle for the streaming
    reader and for ECO round-trips.
    """
    h = hashlib.sha256()
    lines = write_def_lines(
        layout.name,
        layout.die,
        layout.stack.dbu_per_micron,
        layout.nets.values(),
        layout.fills,
        net_count=len(layout.nets),
        fill_count=len(layout.fills),
    )
    for line in lines:
        h.update(line.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


# ---------------------------------------------------------------------------
# parsing


class _DefMachine:
    """Line-fed DEF-lite statement machine.

    Feed physical lines in order via :meth:`feed`; terminated nets and
    fill records are handed to the callbacks as soon as they complete.
    The machine never retains nets, so the caller decides what survives.
    """

    def __init__(
        self,
        stack: ProcessStack,
        on_net: Callable[[Net, int], None],
        on_fill: Callable[[FillFeature, int], None],
    ):
        self.stack = stack
        self.on_net = on_net
        self.on_fill = on_fill
        self.name = "design"
        self.die: Rect | None = None
        self.done = False
        self._section: str | None = None  # None | "nets" | "fills"
        self._net: Net | None = None
        self._net_start_line = 0

    def _close_net(self) -> None:
        if self._net is not None:
            self.on_net(self._net, self._net_start_line)
            self._net = None

    def feed(self, line_no: int, raw: str) -> bool:
        """Process one physical line; True once ``END DESIGN`` was seen."""
        if self.done:
            return True
        tokens = _PAREN.sub(" ", raw).replace(";", " ; ").split()
        if not tokens or tokens[0].startswith("#"):
            return False
        tokens = [t for t in tokens if t != ";"] or ["_SEMI_ONLY_"]
        head = tokens[0].upper()
        try:
            if head == "_SEMI_ONLY_":
                # bare ';' — terminates the current net
                if self._section == "nets":
                    self._close_net()
            elif head == "VERSION":
                pass
            elif head == "DESIGN":
                self.name = tokens[1]
            elif head == "UNITS":
                declared_dbu = int(tokens[3])
                if declared_dbu != self.stack.dbu_per_micron:
                    raise ParseError(
                        f"DEF units {declared_dbu} do not match stack "
                        f"units {self.stack.dbu_per_micron}",
                        line_no,
                    )
            elif head == "DIEAREA":
                x1, y1, x2, y2 = (int(t) for t in tokens[1:5])
                self.die = Rect(x1, y1, x2, y2)
            elif head == "NETS":
                self._section = "nets"
            elif head == "FILLS":
                self._section = "fills"
            elif head == "END":
                what = tokens[1].upper() if len(tokens) > 1 else ""
                if what in ("NETS", "FILLS"):
                    self._close_net()
                    self._section = None
                elif what == "DESIGN":
                    self._close_net()
                    self.done = True
                    return True
            elif head == "-":
                if self._section == "nets":
                    self._close_net()
                    self._net = Net(tokens[1])
                    self._net_start_line = line_no
                elif self._section == "fills":
                    self.on_fill(_parse_fill(tokens, line_no), line_no)
                else:
                    raise ParseError("'-' outside NETS/FILLS section", line_no)
            elif head == "+":
                if self._section != "nets" or self._net is None:
                    raise ParseError("'+' outside a net statement", line_no)
                _parse_net_item(tokens, self._net, line_no)
            else:
                raise ParseError(f"unexpected token {tokens[0]!r}", line_no)
        except (ValueError, IndexError) as exc:
            raise ParseError(f"malformed statement: {exc}", line_no) from exc
        return False

    def finish(self) -> None:
        """Flush an unterminated trailing net (missing ';' at EOF)."""
        self._close_net()


def _iter_lines(source: "str | IO[str] | Iterable[str]") -> Iterator[str]:
    """Physical lines of any line source, newline characters stripped."""
    if isinstance(source, str):
        yield from source.splitlines()
    else:
        for raw in source:
            yield raw.rstrip("\r\n")


def parse_def_streaming(
    source: "str | IO[str] | Iterable[str]",
    stack: ProcessStack,
    *,
    on_die: Callable[[Rect], None] | None = None,
    on_net: Callable[[Net, int], None] | None = None,
    keep_nets: bool = True,
) -> RoutedLayout:
    """Parse DEF-lite from any line source, streaming nets as they close.

    ``on_die(rect)`` fires once, as soon as the ``DIEAREA`` statement is
    read — streaming consumers (the streaming preprocessor, window
    banding) need the die before the first net arrives.
    ``on_net(net, start_line)`` fires as soon as a net's terminating
    ``;`` is read — the net's start line lets callers attribute their own
    validation errors to the input. With ``keep_nets=False`` the returned
    layout is a *shell* (die, stack, fills — no nets), so peak memory is
    bounded by one net plus whatever the callback retains. With the
    default ``keep_nets=True`` the result is identical to
    :func:`parse_def`.

    Net-level validation (unknown layer, geometry leaving the die) is
    performed here per net and raises :class:`ParseError` carrying the
    net's opening line.
    """
    collected: list[tuple[Net, int]] = []

    def _collect(net: Net, start_line: int) -> None:
        if on_net is not None:
            on_net(net, start_line)
        if keep_nets:
            collected.append((net, start_line))

    fills: list[tuple[FillFeature, int]] = []

    def _fill(fill: FillFeature, line_no: int) -> None:
        fills.append((fill, line_no))

    machine = _DefMachine(stack, _collect, _fill)
    for line_no, raw in enumerate(_iter_lines(source), start=1):
        done = machine.feed(line_no, raw)
        if on_die is not None and machine.die is not None:
            on_die(machine.die)
            on_die = None
        if done:
            break
    machine.finish()

    if machine.die is None:
        raise ParseError("missing DIEAREA statement")
    layout = RoutedLayout(machine.name, machine.die, stack)
    for net, start_line in collected:
        _add_net_checked(layout, net, start_line)
    for fill, line_no in fills:
        try:
            layout.add_fill(fill)
        except LayoutError as exc:
            raise ParseError(str(exc), line_no) from exc
    return layout


def parse_def(text: str, stack: ProcessStack) -> RoutedLayout:
    """Parse DEF-lite text against a process stack."""
    return parse_def_streaming(text, stack)


def _add_net_checked(layout: RoutedLayout, net: Net, start_line: int) -> None:
    """Add a parsed net, converting validation failures to ParseError.

    The historical reader batch-added nets after the parse loop, so a
    net whose geometry left the die surfaced as a bare ``LayoutError``
    with no line reference (and naive wrapping at the terminator blamed
    the ``;`` line, one past the offending statement). Attributing to
    the net's opening ``-`` line is stable however many continuation
    lines the net spans.
    """
    try:
        layout.add_net(net)
    except LayoutError as exc:
        raise ParseError(str(exc), start_line) from exc


# ---------------------------------------------------------------------------
# window streaming


@dataclass
class DefWindow:
    """One horizontal band of nets from a streamed DEF.

    ``index`` is the band number (``y_lo = die.ylo + index * band_dbu``);
    nets are assigned by the y-low of their bounding box and appear in
    file order within the band.
    """

    index: int
    y_lo: int
    y_hi: int
    nets: list[Net] = field(default_factory=list)


def net_ylo(net: Net) -> int:
    """Bounding-box y-low of a net's geometry (segments and pins) —
    the banding key for window streaming and the streaming preprocessor's
    sweep-watermark contract."""
    coords = [seg.rect.ylo for seg in net.segments]
    coords.extend(pin.point.y for pin in net.pins)
    if not coords:
        raise LayoutError(f"net {net.name}: no geometry to band")
    return min(coords)


class DefWindowStream:
    """Stream a DEF-lite source as horizontal bands of nets.

    Iterate :meth:`windows` to receive :class:`DefWindow` partitions.
    While the input's nets arrive sorted by band (ascending bounding-box
    y-low, as :func:`repro.synth.testcases.iter_t3_def_lines` emits
    them), each band is yielded as soon as the first net of a later band
    arrives, so peak memory holds roughly one band. Out-of-order input
    *above* the yield watermark flips ``sorted_input`` and degrades to
    buffering — remaining bands are held and yielded in index order at
    EOF, still exactly once per index. A net landing in a band that was
    **already yielded** is unrecoverable for a streaming consumer (the
    partition it belongs to is gone), so it raises
    :class:`~repro.errors.FillError` rather than silently re-emitting a
    duplicate band index with a partial net list. Every yielded window
    is therefore an exclusive partition: one window per band index,
    carrying all of that band's nets.

    ``die``, ``name`` and ``fills`` are populated as parsing proceeds;
    ``die`` is guaranteed set before the first window is yielded.
    """

    def __init__(
        self,
        source: "str | IO[str] | Iterable[str]",
        stack: ProcessStack,
        band_dbu: int,
    ):
        if band_dbu <= 0:
            raise ValueError(f"band_dbu must be positive, got {band_dbu}")
        self.stack = stack
        self.band_dbu = band_dbu
        self.name = "design"
        self.die: Rect | None = None
        self.fills: list[FillFeature] = []
        self.sorted_input = True
        self._source = source
        self._bands: dict[int, DefWindow] = {}
        self._max_band = -1
        self._yielded_max = -1

    def _band_of(self, net: Net) -> int:
        assert self.die is not None
        return max(0, (net_ylo(net) - self.die.ylo) // self.band_dbu)

    def _window(self, index: int) -> DefWindow:
        win = self._bands.get(index)
        if win is None:
            assert self.die is not None
            win = DefWindow(
                index=index,
                y_lo=self.die.ylo + index * self.band_dbu,
                y_hi=self.die.ylo + (index + 1) * self.band_dbu,
            )
            self._bands[index] = win
        return win

    def windows(self) -> Iterator[DefWindow]:
        """Parse lazily, yielding each completed band exactly once."""
        pending: list[Net] = []

        def _on_net(net: Net, _start_line: int) -> None:
            pending.append(net)

        def _on_fill(fill: FillFeature, _line_no: int) -> None:
            self.fills.append(fill)

        machine = _DefMachine(self.stack, _on_net, _on_fill)
        for line_no, raw in enumerate(_iter_lines(self._source), start=1):
            done = machine.feed(line_no, raw)
            if machine.die is not None and self.die is None:
                self.die = machine.die
                self.name = machine.name
            while pending:
                net = pending.pop(0)
                band = self._band_of(net)
                if band <= self._yielded_max:
                    raise FillError(
                        f"line {line_no}: net {net.name!r} lands in band "
                        f"{band}, already yielded (watermark "
                        f"{self._yielded_max}); windows emitted so far are "
                        "invalid for this input — re-stream it sorted or "
                        "use read_def_lite"
                    )
                if band < self._max_band:
                    self.sorted_input = False
                self._max_band = max(self._max_band, band)
                self._window(band).nets.append(net)
                if self.sorted_input:
                    # Every band strictly below the newest net's band is
                    # complete: later nets can only land at `band` or above.
                    for idx in sorted(self._bands):
                        if idx >= band:
                            break
                        self._yielded_max = max(self._yielded_max, idx)
                        yield self._bands.pop(idx)
            if done:
                break
        machine.finish()
        if machine.die is None:
            raise ParseError("missing DIEAREA statement")
        self.name = machine.name
        for idx in sorted(self._bands):
            yield self._bands.pop(idx)


def iter_def_windows(
    source: "str | IO[str] | Iterable[str]",
    stack: ProcessStack,
    band_dbu: int,
) -> Iterator[DefWindow]:
    """Convenience wrapper: yield :class:`DefWindow` bands from a source.

    Use :class:`DefWindowStream` directly when the die rect, design name
    or fill records are needed alongside the windows.
    """
    yield from DefWindowStream(source, stack, band_dbu).windows()


# ---------------------------------------------------------------------------
# statement parsers (shared by both readers)


def _parse_net_item(tokens: list[str], net: Net, line_no: int) -> None:
    kind = tokens[1].upper()
    if kind == "PIN":
        pin_name = tokens[2]
        x, y = int(tokens[3]), int(tokens[4])
        if tokens[5].upper() != "LAYER":
            raise ParseError("expected LAYER after pin coordinates", line_no)
        layer = tokens[6]
        rest = [t.upper() for t in tokens[7:]]
        if rest[:1] == ["DRIVER"]:
            if len(tokens) < 10 or rest[1] != "RES":
                raise ParseError("driver pin needs 'DRIVER RES <ohm>'", line_no)
            net.add_pin(
                Pin(pin_name, Point(x, y), layer, is_driver=True,
                    driver_res_ohm=float(tokens[9]))
            )
        elif rest[:1] == ["CAP"]:
            if len(tokens) < 9:
                raise ParseError("sink pin needs 'CAP <ff>'", line_no)
            net.add_pin(
                Pin(pin_name, Point(x, y), layer, load_cap_ff=float(tokens[8]))
            )
        else:
            raise ParseError("pin needs 'DRIVER RES <ohm>' or 'CAP <ff>'", line_no)
    elif kind == "ROUTED":
        layer = tokens[2]
        x1, y1, x2, y2 = (int(t) for t in tokens[3:7])
        if tokens[7].upper() != "WIDTH":
            raise ParseError("expected WIDTH after segment coordinates", line_no)
        width = int(tokens[8])
        net.add_segment(
            WireSegment(net.name, len(net.segments), layer, Point(x1, y1), Point(x2, y2), width)
        )
    else:
        raise ParseError(f"unknown net item {tokens[1]!r}", line_no)


def _parse_fill(tokens: list[str], line_no: int) -> FillFeature:
    if len(tokens) < 8:
        raise ParseError(
            "truncated fill record: expected '- LAYER <name> RECT ( x1 y1 x2 y2 )'",
            line_no,
        )
    if tokens[1].upper() != "LAYER" or tokens[3].upper() != "RECT":
        raise ParseError("expected '- LAYER <name> RECT ( x1 y1 x2 y2 )'", line_no)
    layer = tokens[2]
    x1, y1, x2, y2 = (int(t) for t in tokens[4:8])
    return FillFeature(layer=layer, rect=Rect(x1, y1, x2, y2))
