"""DEF-lite: a small DEF-inspired dialect for routed layouts.

Covers exactly what the library models — die area, routed signal nets with
driver/sink pins, and fill features — in DEF-flavoured syntax::

    VERSION 1.0 ;
    DESIGN t1 ;
    UNITS DISTANCE MICRONS 1000 ;
    DIEAREA ( 0 0 ) ( 128000 128000 ) ;
    NETS 2 ;
    - net0
      + PIN drv ( 1000 5000 ) LAYER metal3 DRIVER RES 120
      + PIN s0 ( 90000 5000 ) LAYER metal3 CAP 5
      + ROUTED metal3 ( 1000 5000 ) ( 90000 5000 ) WIDTH 400
      + ROUTED metal4 ( 50000 5000 ) ( 50000 20000 ) WIDTH 400
    ;
    END NETS
    FILLS 1 ;
    - LAYER metal3 RECT ( 10000 10000 10500 10500 ) ;
    END FILLS
    END DESIGN

All coordinates in DBU. Segment order within a net is free; the RC-tree
builder re-orients by signal flow.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.geometry import Point, Rect
from repro.layout import FillFeature, Net, Pin, RoutedLayout, WireSegment
from repro.tech.process import ProcessStack

_PAREN = re.compile(r"[()]")


def write_def(layout: RoutedLayout) -> str:
    """Serialize a layout to DEF-lite text."""
    die = layout.die
    out = [
        "VERSION 1.0 ;",
        f"DESIGN {layout.name} ;",
        f"UNITS DISTANCE MICRONS {layout.stack.dbu_per_micron} ;",
        f"DIEAREA ( {die.xlo} {die.ylo} ) ( {die.xhi} {die.yhi} ) ;",
        f"NETS {len(layout.nets)} ;",
    ]
    for net in layout.nets.values():
        out.append(f"- {net.name}")
        for pin in net.pins:
            if pin.is_driver:
                out.append(
                    f"  + PIN {pin.name} ( {pin.point.x} {pin.point.y} ) "
                    f"LAYER {pin.layer} DRIVER RES {pin.driver_res_ohm:g}"
                )
            else:
                out.append(
                    f"  + PIN {pin.name} ( {pin.point.x} {pin.point.y} ) "
                    f"LAYER {pin.layer} CAP {pin.load_cap_ff:g}"
                )
        for seg in net.segments:
            out.append(
                f"  + ROUTED {seg.layer} ( {seg.start.x} {seg.start.y} ) "
                f"( {seg.end.x} {seg.end.y} ) WIDTH {seg.width}"
            )
        out.append(";")
    out.append("END NETS")
    out.append(f"FILLS {len(layout.fills)} ;")
    for fill in layout.fills:
        r = fill.rect
        out.append(f"- LAYER {fill.layer} RECT ( {r.xlo} {r.ylo} {r.xhi} {r.yhi} ) ;")
    out.append("END FILLS")
    out.append("END DESIGN")
    return "\n".join(out) + "\n"


def parse_def(text: str, stack: ProcessStack) -> RoutedLayout:
    """Parse DEF-lite text against a process stack."""
    name = "design"
    die: Rect | None = None
    layout: RoutedLayout | None = None
    current_net: Net | None = None
    pending_nets: list[Net] = []
    fills: list[FillFeature] = []
    section = None  # None | "nets" | "fills"
    declared_dbu: int | None = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        tokens = _PAREN.sub(" ", raw).replace(";", " ; ").split()
        if not tokens or tokens[0].startswith("#"):
            continue
        tokens = [t for t in tokens if t != ";"] or ["_SEMI_ONLY_"]
        head = tokens[0].upper()
        try:
            if head == "_SEMI_ONLY_":
                # bare ';' — terminates the current net
                if section == "nets" and current_net is not None:
                    pending_nets.append(current_net)
                    current_net = None
            elif head == "VERSION":
                continue
            elif head == "DESIGN":
                name = tokens[1]
            elif head == "UNITS":
                declared_dbu = int(tokens[3])
                if declared_dbu != stack.dbu_per_micron:
                    raise ParseError(
                        f"DEF units {declared_dbu} do not match stack "
                        f"units {stack.dbu_per_micron}",
                        line_no,
                    )
            elif head == "DIEAREA":
                x1, y1, x2, y2 = (int(t) for t in tokens[1:5])
                die = Rect(x1, y1, x2, y2)
                layout = RoutedLayout(name, die, stack)
            elif head == "NETS":
                section = "nets"
            elif head == "FILLS":
                section = "fills"
            elif head == "END":
                what = tokens[1].upper() if len(tokens) > 1 else ""
                if what in ("NETS", "FILLS"):
                    section = None
                elif what == "DESIGN":
                    break
            elif head == "-":
                if section == "nets":
                    if current_net is not None:
                        pending_nets.append(current_net)
                    current_net = Net(tokens[1])
                elif section == "fills":
                    _parse_fill(tokens, fills, line_no)
                else:
                    raise ParseError("'-' outside NETS/FILLS section", line_no)
            elif head == "+":
                if section != "nets" or current_net is None:
                    raise ParseError("'+' outside a net statement", line_no)
                _parse_net_item(tokens, current_net, line_no)
            else:
                raise ParseError(f"unexpected token {tokens[0]!r}", line_no)
        except (ValueError, IndexError) as exc:
            raise ParseError(f"malformed statement: {exc}", line_no) from exc

    if layout is None:
        raise ParseError("missing DIEAREA statement")
    if current_net is not None:
        pending_nets.append(current_net)
    for net in pending_nets:
        layout.add_net(net)
    for fill in fills:
        layout.add_fill(fill)
    return layout


def _parse_net_item(tokens: list[str], net: Net, line_no: int) -> None:
    kind = tokens[1].upper()
    if kind == "PIN":
        pin_name = tokens[2]
        x, y = int(tokens[3]), int(tokens[4])
        if tokens[5].upper() != "LAYER":
            raise ParseError("expected LAYER after pin coordinates", line_no)
        layer = tokens[6]
        rest = [t.upper() for t in tokens[7:]]
        if rest[:1] == ["DRIVER"]:
            if len(tokens) < 10 or rest[1] != "RES":
                raise ParseError("driver pin needs 'DRIVER RES <ohm>'", line_no)
            net.add_pin(
                Pin(pin_name, Point(x, y), layer, is_driver=True,
                    driver_res_ohm=float(tokens[9]))
            )
        elif rest[:1] == ["CAP"]:
            net.add_pin(
                Pin(pin_name, Point(x, y), layer, load_cap_ff=float(tokens[8]))
            )
        else:
            raise ParseError("pin needs 'DRIVER RES <ohm>' or 'CAP <ff>'", line_no)
    elif kind == "ROUTED":
        layer = tokens[2]
        x1, y1, x2, y2 = (int(t) for t in tokens[3:7])
        if tokens[7].upper() != "WIDTH":
            raise ParseError("expected WIDTH after segment coordinates", line_no)
        width = int(tokens[8])
        net.add_segment(
            WireSegment(net.name, len(net.segments), layer, Point(x1, y1), Point(x2, y2), width)
        )
    else:
        raise ParseError(f"unknown net item {tokens[1]!r}", line_no)


def _parse_fill(tokens: list[str], fills: list[FillFeature], line_no: int) -> None:
    if tokens[1].upper() != "LAYER" or tokens[3].upper() != "RECT":
        raise ParseError("expected '- LAYER <name> RECT ( x1 y1 x2 y2 )'", line_no)
    layer = tokens[2]
    x1, y1, x2, y2 = (int(t) for t in tokens[4:8])
    fills.append(FillFeature(layer=layer, rect=Rect(x1, y1, x2, y2)))
