"""Layout and technology I/O: LEF-lite and DEF-lite text dialects."""

from repro.io.deflite import (
    DefWindow,
    DefWindowStream,
    iter_def_windows,
    layout_digest,
    parse_def,
    parse_def_streaming,
    write_def,
    write_def_lines,
)
from repro.io.leflite import parse_lef, write_lef

__all__ = [
    "DefWindow",
    "DefWindowStream",
    "iter_def_windows",
    "layout_digest",
    "parse_def",
    "parse_def_streaming",
    "parse_lef",
    "write_def",
    "write_def_lines",
    "write_lef",
]
