"""Layout and technology I/O: LEF-lite and DEF-lite text dialects."""

from repro.io.leflite import parse_lef, write_lef
from repro.io.deflite import parse_def, write_def

__all__ = ["parse_lef", "write_lef", "parse_def", "write_def"]
