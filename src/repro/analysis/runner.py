"""Lint driver: collect files, run rules, apply suppressions, cache.

:func:`lint_paths` is what the CLI subcommand and the pytest self-check
gate call; :func:`lint_source` / :func:`lint_modules` are the
fixture-test entry points (analyze snippets under a forced module name /
reachability, no filesystem).

Two rule tiers run per invocation:

* **per-file rules** (:func:`~repro.analysis.registry.all_rules`) plus
  the findings of ``scope="file"`` program rules (X101, X202) — cached
  per file under a key that folds in the file's **import-closure
  digest**, so a taint chain through a dependency invalidates the moment
  the dependency edits;
* **program-scoped rules** (``scope="program"``: X201, X301) — facts
  that live outside any one closure; cached once under a whole-program
  source digest.

On a fully warm cache neither tier builds the function-level call graph
— the closure digests come from the (always-built, cheap) import graph.
"""

from __future__ import annotations

import ast
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.cache import LintCache, context_digest, entry_digest, program_digest
from repro.analysis.callgraph import ModuleUnit, ProgramContext, build_program
from repro.analysis.changed import changed_paths
from repro.analysis.findings import Finding
from repro.analysis.modgraph import ModuleGraph, module_name_for
from repro.analysis.policy import DEFAULT_POLICY, LintPolicy
from repro.analysis.registry import (
    FileContext,
    all_program_rules,
    all_rules,
    known_rule_ids,
)
from repro.analysis.suppress import (
    apply_suppressions,
    filter_suppressed,
    parse_suppressions,
)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    cache_hits: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def collect_files(paths: list[str]) -> list[Path]:
    """The .py files named by ``paths`` (directories recurse), sorted."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def _file_rule_findings(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    for rule in all_rules():
        findings.extend(rule.check(ctx))
    return findings


def _program_findings_by_path(
    program: ProgramContext, scope: str
) -> dict[str, list[Finding]]:
    """Findings of every program rule of ``scope``, grouped by path and
    filtered against each anchor file's own suppression comments."""
    raw: list[Finding] = []
    for rule in all_program_rules():
        if rule.scope == scope:
            raw.extend(rule.check_program(program))
    sups_by_path: dict[str, list] = {}
    for unit in program.units.values():
        sups_by_path[unit.path] = parse_suppressions(unit.source)
    grouped: dict[str, list[Finding]] = {}
    for finding in sorted(raw):
        sups = sups_by_path.get(finding.path, [])
        if filter_suppressed([finding], sups):
            grouped.setdefault(finding.path, []).append(finding)
    return grouped


def lint_source(
    source: str,
    path: str = "<string>",
    module: str = "",
    policy: LintPolicy | None = None,
    worker_reachable: bool = False,
) -> list[Finding]:
    """Lint a source snippet (fixture tests force module/reachability).

    Program rules run over the snippet as a one-module program, so
    intra-module taint/lock/purity findings appear alongside the
    per-file families.
    """
    policy = policy if policy is not None else DEFAULT_POLICY
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule_id="E000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=path,
        module=module,
        source=source,
        tree=tree,
        policy=policy,
        worker_reachable=worker_reachable,
    )
    findings = _file_rule_findings(ctx)
    program = ProgramContext(
        {module or "snippet": ModuleUnit(module or "snippet", path, source, tree)},
        policy,
    )
    for rule in all_program_rules():
        findings.extend(rule.check_program(program))
    return apply_suppressions(
        path, findings, parse_suppressions(source), known_rule_ids()
    )


def lint_modules(
    sources: dict[str, str], policy: LintPolicy | None = None
) -> list[Finding]:
    """Lint several in-memory modules as one program (cross-module
    fixture entry point). Paths are synthesized as ``mod/ule.py``."""
    policy = policy if policy is not None else DEFAULT_POLICY
    findings: list[Finding] = []
    units: dict[str, ModuleUnit] = {}
    for module in sorted(sources):
        source = sources[module]
        path = module.replace(".", "/") + ".py"
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    rule_id="E000",
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        units[module] = ModuleUnit(module, path, source, tree)
        ctx = FileContext(
            path=path, module=module, source=source, tree=tree, policy=policy
        )
        findings.extend(
            apply_suppressions(
                path,
                _file_rule_findings(ctx),
                parse_suppressions(source),
                known_rule_ids(),
            )
        )
    program = ProgramContext(units, policy)
    for scope in ("file", "program"):
        for per_path in _program_findings_by_path(program, scope).values():
            findings.extend(per_path)
    return sorted(findings)


def _graph_root(files: list[Path]) -> Path | None:
    """Topmost package directory containing the first package file —
    the root the worker-reachability graph is built over."""
    for file in files:
        if module_name_for(file):
            current = file.parent
            while (current.parent / "__init__.py").exists():
                current = current.parent
            return current.parent
    return None


def _build_whole_program(
    graph: ModuleGraph, policy: LintPolicy, path_overrides: dict[Path, str]
) -> ProgramContext:
    """Program context over every module under the graph root. Modules
    that are also being linted report under their as-given path string
    so findings line up with the per-file pass and the cache."""
    sources: dict[str, tuple[str, str]] = {}
    for module in graph.modules():
        mod_path = graph.path_of(module)
        source = graph.source_of(module)
        if mod_path is None or source is None:
            continue
        path_str = path_overrides.get(mod_path.resolve(), str(mod_path))
        sources[module] = (path_str, source)
    return build_program(sources, policy)


def _select_changed(
    files: list[Path], graph: ModuleGraph | None
) -> list[Path] | None:
    """Subset of ``files`` needing a re-lint per git state: changed
    files plus every module whose import closure touches a changed
    module. None when git state is unavailable (caller lints all)."""
    changed = changed_paths(Path.cwd())
    if changed is None:
        return None
    changed_modules: set[str] = set()
    if graph is not None:
        for module in graph.modules():
            mod_path = graph.path_of(module)
            if mod_path is not None and mod_path.resolve() in changed:
                changed_modules.add(module)
    dirty = (
        graph.dependents_of(frozenset(changed_modules))
        if graph is not None and changed_modules
        else frozenset()
    )
    selected: list[Path] = []
    for file in files:
        if file.resolve() in changed:
            selected.append(file)
            continue
        module = module_name_for(file)
        if module and module in dirty:
            selected.append(file)
    return selected


@dataclass
class _FileTask:
    """One file queued for the per-file pass."""

    file: Path
    module: str
    source: str
    digest: str
    worker_reachable: bool


def lint_paths(
    paths: list[str],
    policy: LintPolicy | None = None,
    cache_path: Path | None = None,
    jobs: int = 1,
    changed_only: bool = False,
) -> LintReport:
    """Lint every file under ``paths`` with the full rule catalog.

    ``cache_path`` enables the result cache (content-digest keyed; safe
    to commit to CI cache storage). ``jobs > 1`` scans cache-missed
    files on a thread pool — findings are merged in sorted file order,
    so output is byte-identical to a serial run. ``changed_only``
    restricts the run to files changed per git plus their import-closure
    dependents (full lint when git state is unavailable).
    """
    policy = policy if policy is not None else DEFAULT_POLICY
    files = collect_files(paths)

    graph: ModuleGraph | None = None
    reachable: frozenset[str] = frozenset()
    root = _graph_root(files)
    if root is not None:
        graph = ModuleGraph(root)
        reachable = graph.reachable_from(policy.worker_entry_modules)

    if changed_only:
        selected = _select_changed(files, graph)
        if selected is not None:
            files = selected

    report = LintReport(files_checked=len(files))
    rule_ids = tuple(rule.rule_id for rule in all_rules()) + tuple(
        rule.rule_id for rule in all_program_rules() if rule.scope == "file"
    )
    cache = LintCache(cache_path)

    path_overrides: dict[Path, str] = {}
    tasks: list[_FileTask] = []
    findings_by_file: dict[Path, list[Finding]] = {}
    for file in files:
        module = module_name_for(file)
        if module:
            path_overrides[file.resolve()] = str(file)
        worker_reachable = module in reachable
        closure = (
            graph.closure_digest(module) if graph is not None and module else ""
        )
        ctx_digest = context_digest(
            rule_ids, policy.fingerprint(), worker_reachable, closure
        )
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as exc:
            findings_by_file[file] = [
                Finding(
                    path=str(file),
                    line=1,
                    col=0,
                    rule_id="E000",
                    message=f"cannot read file: {exc}",
                )
            ]
            continue
        digest = entry_digest(source, ctx_digest)
        cached = cache.get(str(file), digest)
        if cached is not None:
            report.cache_hits += 1
            findings_by_file[file] = cached
            continue
        tasks.append(
            _FileTask(
                file=file,
                module=module,
                source=source,
                digest=digest,
                worker_reachable=worker_reachable,
            )
        )

    program: ProgramContext | None = None
    file_scope_by_path: dict[str, list[Finding]] = {}
    if tasks and graph is not None:
        program = _build_whole_program(graph, policy, path_overrides)
        file_scope_by_path = _program_findings_by_path(program, "file")

    def run_task(task: _FileTask) -> list[Finding]:
        try:
            tree = ast.parse(task.source)
        except SyntaxError as exc:
            return [
                Finding(
                    path=str(task.file),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    rule_id="E000",
                    message=f"syntax error: {exc.msg}",
                )
            ]
        ctx = FileContext(
            path=str(task.file),
            module=task.module,
            source=task.source,
            tree=tree,
            policy=policy,
            worker_reachable=task.worker_reachable,
        )
        findings = _file_rule_findings(ctx)
        findings.extend(file_scope_by_path.get(str(task.file), []))
        return apply_suppressions(
            str(task.file), findings, parse_suppressions(task.source), known_rule_ids()
        )

    if jobs > 1 and len(tasks) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(run_task, tasks))
    else:
        results = [run_task(task) for task in tasks]
    # Cache writes and merging stay in the main thread, in sorted file
    # order — parallelism must not leak into output or cache layout.
    for task, findings in zip(tasks, results):
        cache.put(str(task.file), task.digest, findings)
        findings_by_file[task.file] = findings

    for file in files:
        report.findings.extend(findings_by_file.get(file, []))

    # Program-scoped rules (lock-order cycles, worker purity): facts
    # outside any one file's closure, cached under a whole-program digest.
    if graph is not None:
        prog_rule_ids = tuple(
            rule.rule_id for rule in all_program_rules() if rule.scope == "program"
        )
        if prog_rule_ids:
            prog_digest = program_digest(
                prog_rule_ids, policy.fingerprint(), graph.program_source_digest()
            )
            prog_findings = cache.get_program(prog_digest)
            if prog_findings is None:
                if program is None:
                    program = _build_whole_program(graph, policy, path_overrides)
                prog_findings = []
                for per_path in _program_findings_by_path(program, "program").values():
                    prog_findings.extend(per_path)
                prog_findings.sort()
                cache.put_program(prog_digest, prog_findings)
            else:
                report.cache_hits += 1
            linted = {str(file) for file in files}
            report.findings.extend(
                f for f in prog_findings if f.path in linted
            )

    cache.save()
    report.findings.sort()
    return report
