"""Lint driver: collect files, run rules, apply suppressions, cache.

:func:`lint_paths` is what the CLI subcommand and the pytest self-check
gate call; :func:`lint_source` is the fixture-test entry point (analyze
a snippet under a forced module name / reachability, no filesystem).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.cache import LintCache, context_digest, entry_digest
from repro.analysis.findings import Finding
from repro.analysis.modgraph import ModuleGraph, module_name_for
from repro.analysis.policy import DEFAULT_POLICY, LintPolicy
from repro.analysis.registry import FileContext, all_rules, known_rule_ids
from repro.analysis.suppress import apply_suppressions, parse_suppressions


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    cache_hits: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def collect_files(paths: list[str]) -> list[Path]:
    """The .py files named by ``paths`` (directories recurse), sorted."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def _check_tree(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    for rule in all_rules():
        findings.extend(rule.check(ctx))
    return apply_suppressions(
        ctx.path, findings, parse_suppressions(ctx.source), known_rule_ids()
    )


def lint_source(
    source: str,
    path: str = "<string>",
    module: str = "",
    policy: LintPolicy | None = None,
    worker_reachable: bool = False,
) -> list[Finding]:
    """Lint a source snippet (fixture tests force module/reachability)."""
    policy = policy if policy is not None else DEFAULT_POLICY
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule_id="E000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=path,
        module=module,
        source=source,
        tree=tree,
        policy=policy,
        worker_reachable=worker_reachable,
    )
    return _check_tree(ctx)


def _graph_root(files: list[Path]) -> Path | None:
    """Topmost package directory containing the first package file —
    the root the worker-reachability graph is built over."""
    for file in files:
        if module_name_for(file):
            current = file.parent
            while (current.parent / "__init__.py").exists():
                current = current.parent
            return current.parent
    return None


def lint_paths(
    paths: list[str],
    policy: LintPolicy | None = None,
    cache_path: Path | None = None,
) -> LintReport:
    """Lint every file under ``paths`` with the full rule catalog.

    ``cache_path`` enables the per-file result cache (content-digest
    keyed; safe to commit to CI cache storage).
    """
    policy = policy if policy is not None else DEFAULT_POLICY
    files = collect_files(paths)
    report = LintReport(files_checked=len(files))

    reachable: frozenset[str] = frozenset()
    root = _graph_root(files)
    if root is not None:
        graph = ModuleGraph(root)
        reachable = graph.reachable_from(policy.worker_entry_modules)

    rule_ids = tuple(rule.rule_id for rule in all_rules())
    cache = LintCache(cache_path)
    for file in files:
        module = module_name_for(file)
        worker_reachable = module in reachable
        ctx_digest = context_digest(
            rule_ids, policy.fingerprint(), worker_reachable
        )
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as exc:
            report.findings.append(
                Finding(
                    path=str(file),
                    line=1,
                    col=0,
                    rule_id="E000",
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        digest = entry_digest(source, ctx_digest)
        cached = cache.get(str(file), digest)
        if cached is not None:
            report.cache_hits += 1
            report.findings.extend(cached)
            continue
        findings = lint_source(
            source,
            path=str(file),
            module=module,
            policy=policy,
            worker_reachable=worker_reachable,
        )
        cache.put(str(file), digest, findings)
        report.findings.extend(findings)
    cache.save()
    report.findings.sort()
    return report
