"""SARIF 2.1.0 reporter over a finding list.

SARIF is the interchange format GitHub code scanning ingests, so the CI
lint job can publish findings as repository annotations instead of a
log to scrape. One ``run`` per report; every registered rule appears in
``tool.driver.rules`` (so rule metadata is browsable even on a clean
run), and interprocedural findings carry their source→sink chain as a
``codeFlows`` thread flow — the standard SARIF rendering of a taint
trace.
"""

from __future__ import annotations

import json

from repro.analysis.findings import Finding
from repro.analysis.registry import all_program_rules, all_rules

SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _location(path: str, line: int, col: int, message: str | None = None) -> dict[str, object]:
    physical: dict[str, object] = {
        "artifactLocation": {"uri": path},
        "region": {"startLine": max(line, 1), "startColumn": col + 1},
    }
    out: dict[str, object] = {"physicalLocation": physical}
    if message is not None:
        out["message"] = {"text": message}
    return out


def _rule_catalog() -> list[dict[str, object]]:
    rules: list[dict[str, object]] = []
    catalog = [(r.rule_id, r.summary) for r in all_rules()]
    catalog += [(r.rule_id, r.summary) for r in all_program_rules()]
    for rule_id, summary in sorted(catalog):
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {"text": summary},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return rules


def _result(finding: Finding) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line, finding.col)],
    }
    if finding.trace:
        result["codeFlows"] = [
            {
                "threadFlows": [
                    {
                        "locations": [
                            {
                                "location": _location(
                                    step.path, step.line, 0, step.note
                                )
                            }
                            for step in finding.trace
                        ]
                    }
                ]
            }
        ]
    return result


def render_sarif(findings: list[Finding], files_checked: int) -> str:
    """SARIF 2.1.0 document for ``findings`` (sorted, stable output)."""
    document = {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "pilfill-lint",
                        "informationUri": "https://example.invalid/pilfill",
                        "rules": _rule_catalog(),
                    }
                },
                "properties": {"filesChecked": files_checked},
                "results": [_result(f) for f in sorted(findings)],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
