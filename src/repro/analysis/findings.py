"""Finding model shared by every analysis rule and reporter.

A :class:`Finding` is one rule violation at one source location. Findings
are plain, ordered, JSON-serializable values so the text reporter, the
JSON reporter, the SARIF reporter, the per-file cache, and the pytest
self-check gate all speak the same currency.

Interprocedural rules (the X families) attach a :class:`TraceStep`
chain — source location, intermediate call sites, sink location — so a
cross-module taint report carries the whole path, not just its endpoint.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass(frozen=True, order=True)
class TraceStep:
    """One hop of an interprocedural finding's call chain.

    Attributes:
        path: file the hop is in.
        line: 1-based source line of the hop.
        note: what happens at this hop (``"source: ..."``, ``"call ..."``,
            ``"sink: ..."``).
    """

    path: str
    line: int
    note: str

    def format(self) -> str:
        """``path:line: note`` — one indented line under the finding."""
        return f"{self.path}:{self.line}: {self.note}"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    Attributes:
        path: file the finding is in (as given to the linter).
        line: 1-based source line.
        col: 0-based column offset.
        rule_id: the violated rule (e.g. ``"D104"``).
        message: human-readable description of the violation.
        trace: optional interprocedural call chain, ordered source →
            intermediate calls → sink (empty for single-location rules).
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    trace: tuple[TraceStep, ...] = field(default=())

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping (inverse of :meth:`from_dict`)."""
        data = asdict(self)
        if not self.trace:
            del data["trace"]
        return data

    @staticmethod
    def from_dict(data: dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        raw_trace = data.get("trace", ())
        if not isinstance(raw_trace, (list, tuple)):
            raise ValueError(f"trace must be a list, got {type(raw_trace).__name__}")
        trace = tuple(
            TraceStep(
                path=str(step["path"]),
                line=int(step["line"]),  # type: ignore[call-overload]
                note=str(step["note"]),
            )
            for step in raw_trace
        )
        return Finding(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            col=int(data["col"]),  # type: ignore[call-overload]
            rule_id=str(data["rule_id"]),
            message=str(data["message"]),
            trace=trace,
        )

    def format(self) -> str:
        """``path:line:col: RULE message`` plus indented trace lines."""
        head = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if not self.trace:
            return head
        steps = "\n".join(f"    {step.format()}" for step in self.trace)
        return f"{head}\n{steps}"
