"""Finding model shared by every analysis rule and reporter.

A :class:`Finding` is one rule violation at one source location. Findings
are plain, ordered, JSON-serializable values so the text reporter, the
JSON reporter, the per-file cache, and the pytest self-check gate all
speak the same currency.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    Attributes:
        path: file the finding is in (as given to the linter).
        line: 1-based source line.
        col: 0-based column offset.
        rule_id: the violated rule (e.g. ``"D104"``).
        message: human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @staticmethod
    def from_dict(data: dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return Finding(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            col=int(data["col"]),  # type: ignore[call-overload]
            rule_id=str(data["rule_id"]),
            message=str(data["message"]),
        )

    def format(self) -> str:
        """``path:line:col: RULE message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
