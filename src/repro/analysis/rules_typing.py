"""T-family rule: the strict-typing gate, mirrored locally.

CI runs ``mypy --strict``-grade checking (``disallow_untyped_defs``) on
the packages named in the policy; T301 is the in-repo mirror of that
gate, so ``pilfill lint`` and the pytest self-check catch an unannotated
def without needing mypy installed.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register


def _missing_annotations(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    missing: list[str] = []
    if node.returns is None and node.name != "__init__":
        missing.append("return")
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    return missing


@register
class UntypedDefRule(Rule):
    """T301: every def in a strict package is fully annotated."""

    rule_id = "T301"
    summary = (
        "function in a strict-typing package missing parameter or return "
        "annotations (local mirror of mypy disallow_untyped_defs)"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        if not ctx.policy.in_strict_typing_scope(ctx.module):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing = _missing_annotations(node)
            if missing:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"def {node.name} missing annotations: {', '.join(missing)}",
                    )
                )
        return findings
