"""Project policy consumed by the analysis rules.

The rules themselves are generic AST walkers; everything repo-specific —
which packages forbid float equality, which modules may read the wall
clock, which classes cross the process-pool boundary — lives here so the
fixture tests can swap in a custom policy and the rule catalog stays
data-driven.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _default_taint_sinks() -> tuple[str, ...]:
    return (
        # Content-digest helpers: anything nondeterministic reaching one
        # of these poisons a cache key / store digest far from its source.
        "repro.pilfill.incremental._sha256",
        "repro.pilfill.incremental.run_context_digest",
        "repro.pilfill.incremental.tile_digest",
        "repro.analysis.cache.context_digest",
        "repro.analysis.cache.entry_digest",
        "repro.analysis.cache.program_digest",
        "repro.io.deflite.layout_digest",
    )


def _default_worker_entry_functions() -> tuple[str, ...]:
    return (
        # Everything a pool worker actually executes hangs off these.
        "repro.pilfill.executor.solve_tile_batch",
        "repro.pilfill.executor._worker_init",
        "repro.pilfill.parallel.solve_tile_payload",
        "repro.pilfill.parallel._solve_payload_isolated",
        # The sharded dispatch's pool entry (a solve_tile_batch wrapper):
        # anchoring it keeps the purity walk live over the shard cone.
        "repro.pilfill.shard.solve_shard_batch",
    )


def _default_payload_registry() -> tuple[str, ...]:
    return (
        # Shipped to pool workers (the request side of the boundary).
        "repro.pilfill.parallel.TilePayload",
        "repro.pilfill.parallel.PayloadColumnCosts",
        "repro.pilfill.parallel.PayloadColumn",
        "repro.pilfill.columns.ColumnNeighbor",
        "repro.testing.faults.FaultSpec",
        "repro.testing.faults.FaultRule",
        # Batched dispatch + shared-memory store (executor boundary).
        "repro.pilfill.executor.TileBatch",
        "repro.pilfill.executor.SharedStoreHandle",
        "repro.pilfill.executor.SharedStoreData",
        "repro.cap.lut.LUTSnapshot",
        "repro.cap.lut.CapacitanceLUT",
        # Returned from pool workers (the response side).
        "repro.pilfill.parallel.TileOutcome",
        "repro.pilfill.solution.TileSolution",
        "repro.pilfill.robust.SolveReport",
        "repro.pilfill.robust.RobustSolve",
        # Solution-cache entries (a future pilfill serve ships hits
        # across the same boundary).
        "repro.pilfill.store.CachedEntry",
        # Telemetry buffers marshalled back inside TileOutcome/RobustSolve.
        "repro.obs.trace.SpanRecord",
        "repro.obs.metrics.MetricsSnapshot",
        "repro.obs.metrics.TimerStat",
    )


@dataclass(frozen=True)
class LintPolicy:
    """Repo-specific scopes and allowlists for the rule families.

    Attributes:
        float_eq_packages: dotted package prefixes where ``==`` / ``!=``
            against floats is forbidden (D104).
        wall_clock_allowlist: modules allowed to read the wall clock
            (D102) — deadline enforcement and phase timing live here.
        worker_entry_modules: roots of the worker-payload import graph;
            every module transitively imported from these runs inside
            pool workers, so C201 (module-level mutable state) applies.
        payload_registry: dotted class names that cross the process-pool
            pickle boundary; C202 requires each to be a dataclass with
            picklable-by-construction field types.
        picklable_type_names: type names C202 accepts in payload field
            annotations, beyond the registry classes themselves.
        strict_typing_packages: dotted package prefixes where every
            function must be fully annotated (T301 — the local mirror of
            mypy's ``disallow_untyped_defs`` gate).
        rng_factory_names: callables D101 accepts as *seeded* RNG
            constructors (their first positional argument is the seed).
        taint_sink_functions: dotted function names whose inputs feed a
            content digest; the X101 interprocedural taint pass reports
            any call chain from a nondeterminism source into one of
            these (payload-registry constructors are sinks too).
        pool_dispatch_functions: dotted function names that hand work to
            a process pool; X202 reports any lock held across a call
            that (transitively) reaches one, alongside the built-in
            ``<pool>.submit(...)`` detection.
        worker_entry_functions: dotted function names pool workers
            execute directly; X301 walks the call graph from these and
            reports module-state writes that bypass the shared-memory
            store protocol.
        worker_state_allowlist: dotted module-level names reachable
            worker code may legitimately mutate (the content-hash-keyed
            shared-store resolver cache — the sanctioned shipping path).
    """

    float_eq_packages: tuple[str, ...] = ("repro.pilfill", "repro.ilp", "repro.cap")
    wall_clock_allowlist: tuple[str, ...] = (
        "repro.pilfill.engine",
        "repro.pilfill.robust",
        "repro.pilfill.parallel",
        "repro.pilfill.prepare",
        "repro.pilfill.shard",
        "repro.ilp.branchbound",
        "repro.experiments.harness",
        # The telemetry clock: the single sanctioned wall-clock read for
        # repro.obs — spans take time via an injected Clock, never directly.
        "repro.obs.clock",
    )
    worker_entry_modules: tuple[str, ...] = (
        "repro.pilfill.parallel",
        "repro.pilfill.executor",
        # Unpickling the sharded batch solver imports this module (and
        # its closure) inside every pool worker.
        "repro.pilfill.shard",
    )
    payload_registry: tuple[str, ...] = field(default_factory=_default_payload_registry)
    picklable_type_names: tuple[str, ...] = (
        "int",
        "float",
        "str",
        "bool",
        "bytes",
        "None",
        "tuple",
        "list",
        "dict",
        "set",
        "frozenset",
        "Optional",
        "Union",
        "TileKey",  # alias of tuple[int, int]
    )
    strict_typing_packages: tuple[str, ...] = (
        "repro.pilfill",
        "repro.cap",
        "repro.ilp",
        "repro.analysis",
        "repro.obs",
    )
    rng_factory_names: tuple[str, ...] = ("Random", "SystemRandom", "default_rng", "SeedSequence")
    taint_sink_functions: tuple[str, ...] = field(default_factory=_default_taint_sinks)
    pool_dispatch_functions: tuple[str, ...] = (
        "repro.pilfill.executor.dispatch_batches",
        "repro.pilfill.parallel.dispatch_tile_payloads",
    )
    worker_entry_functions: tuple[str, ...] = field(
        default_factory=_default_worker_entry_functions
    )
    worker_state_allowlist: tuple[str, ...] = (
        # The per-process shared-store resolver cache: mutation *is* the
        # sanctioned re-sync mechanism (content-hash handshake, PR 6).
        "repro.pilfill.executor._STORE_CACHE",
    )

    def in_float_eq_scope(self, module: str) -> bool:
        """Whether D104 applies to ``module``."""
        return _in_packages(module, self.float_eq_packages)

    def wall_clock_allowed(self, module: str) -> bool:
        """Whether ``module`` may read the wall clock (D102)."""
        return module in self.wall_clock_allowlist

    def in_strict_typing_scope(self, module: str) -> bool:
        """Whether T301 applies to ``module``."""
        return _in_packages(module, self.strict_typing_packages)

    def payload_classes_in(self, module: str) -> tuple[str, ...]:
        """Registered payload class base names defined in ``module``."""
        names = []
        for dotted in self.payload_registry:
            mod, _, cls = dotted.rpartition(".")
            if mod == module:
                names.append(cls)
        return tuple(names)

    def payload_base_names(self) -> frozenset[str]:
        """Base names of every registered payload class."""
        return frozenset(dotted.rpartition(".")[2] for dotted in self.payload_registry)

    def fingerprint(self) -> str:
        """Stable digest input for the per-file cache key."""
        return repr(self)


def _in_packages(module: str, packages: tuple[str, ...]) -> bool:
    return any(module == pkg or module.startswith(pkg + ".") for pkg in packages)


#: The policy `pilfill lint` uses unless a caller overrides it.
DEFAULT_POLICY = LintPolicy()
