"""C-family rules: the parallel-solve contract, checked statically.

These protect the PR-2/3 pool contracts — compact picklable payloads,
no shared mutable state between tiles, lock-guarded shared caches:

* C201 — no mutable module-level state in modules that run inside pool
  workers (anything reachable from ``repro.pilfill.parallel``).
* C202 — classes in the pool-payload registry must be dataclasses whose
  fields are picklable by construction.
* C203 — a class that owns a lock must mutate its private dict/set
  stores only under ``with self._lock``.
* C204 — a ``*cache*``-named store on a class with no lock at all.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register

#: Calls whose results are mutable containers (module-level bindings of
#: these are shared state).
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
)

#: Method calls that mutate a dict/set/list store in place.
_MUTATOR_METHODS = frozenset(
    {
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "add",
        "discard",
        "remove",
        "append",
        "extend",
        "insert",
    }
)


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_FACTORIES
    return False


@register
class ModuleStateRule(Rule):
    """C201: worker-reachable modules hold no mutable module state."""

    rule_id = "C201"
    summary = (
        "mutable module-level state (container binding, `global` rebinding) "
        "in a module that runs inside pool workers"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        if not ctx.worker_reachable:
            return []
        findings: list[Finding] = []
        for stmt in ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            elif isinstance(stmt, ast.AugAssign):
                findings.append(
                    self.finding(ctx, stmt, "module-level augmented assignment")
                )
                continue
            if value is None or not _is_mutable_value(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and not target.id.startswith("__"):
                    findings.append(
                        self.finding(
                            ctx,
                            stmt,
                            f"module-level mutable container {target.id!r}; use an "
                            "immutable value (tuple/frozenset/MappingProxyType) or "
                            "move it into per-call state",
                        )
                    )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                names = ", ".join(node.names)
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"`global {names}` rebinds module state from a function; "
                        "worker processes will not see (or share) the rebinding",
                    )
                )
        return findings


def _annotation_names(node: ast.expr) -> list[tuple[ast.expr, str]]:
    """(node, name) for every type name referenced by an annotation.

    String annotations (forward references) are parsed recursively;
    subscripts, unions, and tuples are walked structurally.
    """
    out: list[tuple[ast.expr, str]] = []
    if isinstance(node, ast.Constant):
        if node.value is None or node.value is Ellipsis:
            return out
        if isinstance(node.value, str):
            try:
                inner = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return [(node, node.value)]
            return _annotation_names(inner)
        return out
    if isinstance(node, ast.Name):
        return [(node, node.id)]
    if isinstance(node, ast.Attribute):
        return [(node, node.attr)]
    if isinstance(node, ast.Subscript):
        out.extend(_annotation_names(node.value))
        out.extend(_annotation_names(node.slice))
        return out
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        out.extend(_annotation_names(node.left))
        out.extend(_annotation_names(node.right))
        return out
    if isinstance(node, ast.Tuple):
        for elt in node.elts:
            out.extend(_annotation_names(elt))
        return out
    return out


def _is_dataclass_decorated(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
        if name == "dataclass":
            return True
    return False


@register
class PayloadRegistryRule(Rule):
    """C202: pool-payload classes are dataclasses with picklable fields."""

    rule_id = "C202"
    summary = (
        "pool-payload registry class is not a dataclass, or declares a "
        "field type that is not picklable by construction"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        wanted = set(ctx.policy.payload_classes_in(ctx.module))
        if not wanted:
            return []
        allowed = set(ctx.policy.picklable_type_names) | set(
            ctx.policy.payload_base_names()
        )
        findings: list[Finding] = []
        seen: set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or node.name not in wanted:
                continue
            seen.add(node.name)
            if not _is_dataclass_decorated(node):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"payload class {node.name} must be a @dataclass "
                        "(pool workers rebuild it from pickled fields)",
                    )
                )
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                    stmt.target, ast.Name
                ):
                    continue
                if stmt.target.id.startswith("_"):
                    continue
                bad = sorted(
                    {
                        name
                        for _, name in _annotation_names(stmt.annotation)
                        if name not in allowed
                    }
                )
                if bad:
                    findings.append(
                        self.finding(
                            ctx,
                            stmt,
                            f"payload field {node.name}.{stmt.target.id} uses "
                            f"non-registered type(s) {', '.join(bad)}; register the "
                            "type or narrow the annotation",
                        )
                    )
        for missing in sorted(wanted - seen):
            findings.append(
                Finding(
                    path=ctx.path,
                    line=1,
                    col=0,
                    rule_id=self.rule_id,
                    message=(
                        f"registered payload class {missing} not found in "
                        f"{ctx.module or ctx.path}"
                    ),
                )
            )
        return findings


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass
class _ClassStores:
    """Lock attrs and private container stores found in ``__init__``."""

    locks: set[str]
    stores: set[str]


def _scan_init(cls: ast.ClassDef) -> _ClassStores:
    locks: set[str] = set()
    stores: set[str] = set()
    for item in cls.body:
        if not (isinstance(item, ast.FunctionDef) and item.name == "__init__"):
            continue
        for node in ast.walk(item):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr in ("Lock", "RLock")
                ):
                    locks.add(attr)
                elif attr.startswith("_") and _is_mutable_value(value):
                    stores.add(attr)
    return _ClassStores(locks=locks, stores=stores)


def _store_mutations(
    body: list[ast.stmt], stores: set[str], locks: set[str], under_lock: bool
) -> list[tuple[ast.stmt, str]]:
    """(statement, store attr) for every store mutation outside a lock."""
    out: list[tuple[ast.stmt, str]] = []
    for stmt in body:
        if isinstance(stmt, ast.With):
            holds = any(
                _self_attr(item.context_expr) in locks for item in stmt.items
            )
            out.extend(
                _store_mutations(stmt.body, stores, locks, under_lock or holds)
            )
            continue
        for child_body in _sub_bodies(stmt):
            out.extend(_store_mutations(child_body, stores, locks, under_lock))
        if under_lock:
            continue
        attr = _mutated_store(stmt, stores)
        if attr is not None:
            out.append((stmt, attr))
    return out


def _sub_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for fieldname in ("body", "orelse", "finalbody"):
        value = getattr(stmt, fieldname, None)
        if isinstance(value, list) and not isinstance(stmt, ast.With):
            bodies.append(value)
    for handler in getattr(stmt, "handlers", []):
        bodies.append(handler.body)
    return bodies


def _mutated_store(stmt: ast.stmt, stores: set[str]) -> str | None:
    """The store attr this single statement mutates, if any."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for target in targets:
        if isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
            if attr in stores:
                return attr
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
            attr = _self_attr(func.value)
            if attr in stores:
                return attr
    return None


@register
class UnlockedStoreRule(Rule):
    """C203: lock-owning classes mutate their stores under the lock."""

    rule_id = "C203"
    summary = (
        "class owns a lock but mutates a private dict/set store outside "
        "`with self._lock:` — racing workers can corrupt the store"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            info = _scan_init(cls)
            if not info.locks or not info.stores:
                continue
            for item in cls.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name == "__init__":
                    continue  # construction happens-before sharing
                for stmt, attr in _store_mutations(
                    item.body, info.stores, info.locks, under_lock=False
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            stmt,
                            f"{cls.name}.{item.name} mutates self.{attr} outside "
                            f"`with self.{sorted(info.locks)[0]}:`",
                        )
                    )
        return findings


@register
class LockFreeCacheRule(Rule):
    """C204: a cache store on a class that has no lock at all."""

    rule_id = "C204"
    summary = (
        "class mutates a *cache*-named store but owns no lock — shared "
        "caches need a lock (or a justification that they are never shared)"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            info = _scan_init(cls)
            cache_stores = {attr for attr in info.stores if "cache" in attr.lower()}
            if info.locks or not cache_stores:
                continue
            for item in cls.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name == "__init__":
                    continue
                for stmt, attr in _store_mutations(
                    item.body, cache_stores, set(), under_lock=False
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            stmt,
                            f"{cls.name}.{item.name} mutates cache self.{attr} but "
                            f"{cls.name} owns no lock",
                        )
                    )
        return findings
