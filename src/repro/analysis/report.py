"""Text and JSON reporters over a finding list.

The JSON form round-trips (:func:`findings_from_json` inverts
:func:`render_json`) so CI artifacts and the fixture tests can consume
linter output without scraping text.
"""

from __future__ import annotations

import json

from repro.analysis.findings import Finding

#: JSON schema version of the report payload.
REPORT_VERSION = 1


def render_text(findings: list[Finding], files_checked: int) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.format() for f in sorted(findings)]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun} in {files_checked} file(s)")
    return "\n".join(lines)


def render_json(findings: list[Finding], files_checked: int) -> str:
    """Machine-readable report (see :func:`findings_from_json`)."""
    payload = {
        "version": REPORT_VERSION,
        "files_checked": files_checked,
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def findings_from_json(text: str) -> list[Finding]:
    """Rebuild the finding list from :func:`render_json` output."""
    payload = json.loads(text)
    return [Finding.from_dict(item) for item in payload["findings"]]
