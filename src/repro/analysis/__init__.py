"""Static analysis for the repo's determinism & concurrency contracts.

PRs 1-3 established load-bearing invariants — bit-identical results
across the serial/thread/process backends, per-tile seeded RNGs,
picklable pool payloads, lock-guarded shared caches — that dynamic tests
only catch when a test happens to exercise the violating path. This
package checks them *statically*:

* :mod:`repro.analysis.rules_determinism` — D101 (global RNG), D102
  (wall clock), D103 (set-order iteration), D104 (float equality);
* :mod:`repro.analysis.rules_concurrency` — C201 (module state in
  worker-reachable modules), C202 (payload registry picklability),
  C203/C204 (lock-guarded caches);
* :mod:`repro.analysis.rules_typing` — T301 (strict-typing gate);
* interprocedural families over the function-level call graph
  (:mod:`repro.analysis.callgraph`): :mod:`repro.analysis.rules_taint`
  — X101 (determinism source reaching a digest/payload sink, with the
  full source→sink chain); :mod:`repro.analysis.rules_lockorder` —
  X201 (lock-order cycles), X202 (lock held across pool dispatch);
  :mod:`repro.analysis.rules_purity` — X301 (worker-reachable writes to
  unshipped module state);
* suppressions: ``# pilfill: allow[rule-id] -- justification`` (the
  justification is mandatory — A001 flags blanket allows).

Entry points: the ``pilfill lint`` CLI subcommand and
``tests/test_analysis_selfcheck.py``, which fails the suite on any
finding over ``src/repro``.
"""

from __future__ import annotations

from repro.analysis.callgraph import CallGraph, ModuleUnit, ProgramContext
from repro.analysis.findings import Finding, TraceStep
from repro.analysis.policy import DEFAULT_POLICY, LintPolicy
from repro.analysis.registry import (
    FileContext,
    ProgramRule,
    Rule,
    all_program_rules,
    all_rules,
    known_rule_ids,
)
from repro.analysis.report import findings_from_json, render_json, render_text
from repro.analysis.runner import (
    LintReport,
    collect_files,
    lint_modules,
    lint_paths,
    lint_source,
)
from repro.analysis.sarif import render_sarif

__all__ = [
    "CallGraph",
    "DEFAULT_POLICY",
    "FileContext",
    "Finding",
    "LintPolicy",
    "LintReport",
    "ModuleUnit",
    "ProgramContext",
    "ProgramRule",
    "Rule",
    "TraceStep",
    "all_program_rules",
    "all_rules",
    "collect_files",
    "findings_from_json",
    "known_rule_ids",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_sarif",
    "render_text",
]
