"""X1xx: interprocedural determinism taint.

The D-family rules catch a nondeterminism source where it is *used*; the
taint pass catches one where it *matters* — a wall-clock read or
``os.environ`` lookup three calls away from a sha256 digest helper
poisons a cache key just as surely as one inline. X101 walks the call
graph: for every call site whose callee is a policy-listed digest sink
(or a C202 payload-registry constructor), any nondeterminism source in
the calling function or its transitive callees is reported with the full
source → call chain → sink trace.

Approximation: value-flow is not tracked — a source anywhere in the
sink-caller's forward call cone is assumed to be able to reach the sink
arguments. That over-approximates, but the sources are things
deterministic code has no business touching near a digest anyway, and
the same allowlists that scope D101/D102 scope the taint sources here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleUnit,
    ProgramContext,
    owned_statements,
)
from repro.analysis.findings import Finding, TraceStep
from repro.analysis.registry import ProgramRule, register_program
from repro.analysis.rules_determinism import (
    _DATETIME_FNS,
    _NP_GLOBAL_RNG_FNS,
    _RANDOM_MODULE_OK,
    _TIME_FNS,
    _from_imports,
    _is_set_expr,
    _module_aliases,
)


@dataclass(frozen=True)
class TaintSource:
    """One nondeterminism source occurrence inside a function."""

    qualname: str
    path: str
    line: int
    desc: str


@dataclass
class _ModuleSourceTables:
    """Per-module alias tables needed to spot sources."""

    time_aliases: set[str]
    time_fns: set[str]
    datetime_aliases: set[str]
    os_aliases: set[str]
    environ_names: set[str]
    getenv_names: set[str]
    random_aliases: set[str]
    random_fns: set[str]
    numpy_aliases: set[str]
    nprandom_aliases: set[str]


def _tables_for(unit: ModuleUnit) -> _ModuleSourceTables:
    os_imports = _from_imports(unit.tree, "os")
    return _ModuleSourceTables(
        time_aliases=_module_aliases(unit.tree, "time"),
        time_fns={
            local
            for local, orig in _from_imports(unit.tree, "time").items()
            if orig in _TIME_FNS
        },
        datetime_aliases=_module_aliases(unit.tree, "datetime")
        | set(_from_imports(unit.tree, "datetime")),
        os_aliases=_module_aliases(unit.tree, "os"),
        environ_names={
            local for local, orig in os_imports.items() if orig == "environ"
        },
        getenv_names={
            local for local, orig in os_imports.items() if orig == "getenv"
        },
        random_aliases=_module_aliases(unit.tree, "random"),
        random_fns={
            local
            for local, orig in _from_imports(unit.tree, "random").items()
            if orig not in _RANDOM_MODULE_OK
        },
        numpy_aliases=_module_aliases(unit.tree, "numpy"),
        nprandom_aliases=_module_aliases(unit.tree, "numpy.random"),
    )


def _attr_base_name(node: ast.Attribute) -> str | None:
    return node.value.id if isinstance(node.value, ast.Name) else None


def function_sources(
    info: FunctionInfo, unit: ModuleUnit, tables: _ModuleSourceTables, clock_ok: bool
) -> list[TaintSource]:
    """Nondeterminism sources inside one function's owned statements."""
    out: list[TaintSource] = []

    def add(node: ast.AST, desc: str) -> None:
        out.append(
            TaintSource(
                qualname=info.qualname,
                path=info.path,
                line=getattr(node, "lineno", info.lineno),
                desc=desc,
            )
        )

    # ``id()``/``hash()`` inside __hash__ are the identity hash itself —
    # flagging them there flags the language, not the program.
    in_hash_dunder = info.name == "__hash__"
    for root in owned_statements(info):
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name):
                    if func.id in ("id", "hash") and not in_hash_dunder:
                        add(node, f"process-dependent builtin {func.id}()")
                    elif func.id in tables.random_fns:
                        add(node, f"global RNG function {func.id!r}")
                    elif func.id in tables.getenv_names:
                        add(node, "environment read os.getenv(...)")
                elif isinstance(func, ast.Attribute):
                    base = _attr_base_name(func)
                    if base in tables.random_aliases and (
                        func.attr not in _RANDOM_MODULE_OK
                    ):
                        add(node, f"module-global RNG 'random.{func.attr}'")
                    elif base in tables.os_aliases and func.attr == "getenv":
                        add(node, "environment read os.getenv(...)")
                    elif func.attr in _NP_GLOBAL_RNG_FNS and (
                        base in tables.nprandom_aliases
                        or (
                            isinstance(func.value, ast.Attribute)
                            and func.value.attr == "random"
                            and _attr_base_name(func.value) in tables.numpy_aliases
                        )
                    ):
                        add(node, f"legacy global numpy RNG 'np.random.{func.attr}'")
            if isinstance(node, ast.Attribute):
                base = _attr_base_name(node)
                if not clock_ok:
                    if base in tables.time_aliases and node.attr in _TIME_FNS:
                        add(node, f"wall-clock read 'time.{node.attr}'")
                    elif node.attr in _DATETIME_FNS:
                        root_expr: ast.expr = node.value
                        while isinstance(root_expr, ast.Attribute):
                            root_expr = root_expr.value
                        if (
                            isinstance(root_expr, ast.Name)
                            and root_expr.id in tables.datetime_aliases
                        ):
                            add(node, f"wall-clock read 'datetime...{node.attr}'")
                if base in tables.os_aliases and node.attr == "environ":
                    add(node, "environment read os.environ")
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in tables.environ_names:
                    add(node, "environment read os.environ")
                elif node.id in tables.time_fns and not clock_ok:
                    add(node, f"wall-clock read {node.id!r}")
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    add(it, "iteration over a set expression (hash order)")
    return sorted(out, key=lambda s: (s.line, s.desc))


def _chain_trace(
    graph: CallGraph, source: TaintSource, sink_caller: str
) -> list[TraceStep]:
    """Trace ordered source → intermediate call sites → (sink appended
    by the caller). The chain runs from the sink-calling function down
    to the source function, reversed so the taint's journey reads
    source-first."""
    steps = [
        TraceStep(path=source.path, line=source.line, note=f"source: {source.desc}")
    ]
    path = graph.call_path(sink_caller, source.qualname)
    if path:
        for site in reversed(path):
            caller_info = graph.functions[site.caller]
            steps.append(
                TraceStep(
                    path=caller_info.path,
                    line=site.line,
                    note=f"call: {site.caller} -> {site.callee}",
                )
            )
    return steps


@register_program
class DeterminismTaintRule(ProgramRule):
    """X101: no nondeterminism source may reach a digest/payload sink."""

    rule_id = "X101"
    summary = (
        "nondeterminism source (clock, environ, global RNG, id()/hash(), "
        "set-order iteration) reaches a digest or payload sink through the "
        "call graph — the full source→sink chain is attached"
    )
    scope = "file"

    def check_program(self, ctx: ProgramContext) -> list[Finding]:
        graph = ctx.callgraph
        sinks = frozenset(ctx.policy.taint_sink_functions) | frozenset(
            ctx.policy.payload_registry
        )
        tables = {
            module: _tables_for(unit) for module, unit in sorted(ctx.units.items())
        }
        sources: dict[str, list[TaintSource]] = {}
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            unit = ctx.units.get(info.module)
            if unit is None:
                continue
            found = function_sources(
                info,
                unit,
                tables[info.module],
                clock_ok=ctx.policy.wall_clock_allowed(info.module),
            )
            if found:
                sources[qualname] = found
        if not sources:
            return []
        findings: list[Finding] = []
        seen: set[tuple[str, int, str, str]] = set()
        for qualname in sorted(graph.functions):
            sink_sites = [
                site for site in graph.sites_of(qualname) if site.callee in sinks
            ]
            if not sink_sites:
                continue
            cone = graph.reachable_from((qualname,))
            tainted = sorted(fn for fn in cone if fn in sources)
            if not tainted:
                continue
            info = graph.functions[qualname]
            for site in sink_sites:
                for fn in tainted:
                    source = sources[fn][0]
                    key = (info.path, site.line, site.callee, fn)
                    if key in seen:
                        continue
                    seen.add(key)
                    trace = _chain_trace(graph, source, qualname)
                    trace.append(
                        TraceStep(
                            path=info.path,
                            line=site.line,
                            note=f"sink: call of {site.callee}",
                        )
                    )
                    findings.append(
                        Finding(
                            path=info.path,
                            line=site.line,
                            col=site.col,
                            rule_id=self.rule_id,
                            message=(
                                f"nondeterminism source in {fn} "
                                f"({source.desc}) reaches digest sink "
                                f"{site.callee}"
                            ),
                            trace=tuple(trace),
                        )
                    )
        return sorted(findings)
