"""X3xx: shard purity for pool-worker code.

Sharding the fill run (ROADMAP) only works if worker-side code is a pure
function of its payload plus the shared-memory store: any module-level
state a worker mutates is invisible to the other shards and to the
serial baseline, breaking the bit-identity contract in ways no per-file
rule can see (the write usually sits in a helper far from the worker
entry point).

X301 walks the call graph from the policy-listed worker entry functions
and reports, for every reachable function, writes to module-level names:
``global NAME`` rebinding, ``NAME[...] = ...`` / ``NAME[...] += ...``
subscript stores, in-place mutator calls (``NAME.append`` etc.), and
attribute stores on imported modules. The shared-memory resolver cache
(``worker_state_allowlist``) is the sanctioned exception — that mutation
*is* the shipping protocol.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    ModuleUnit,
    ProgramContext,
    owned_statements,
)
from repro.analysis.findings import Finding, TraceStep
from repro.analysis.registry import ProgramRule, register_program

#: In-place container mutators (matches the C201 catalog).
_MUTATOR_METHODS = frozenset(
    {
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "add",
        "discard",
        "remove",
        "append",
        "extend",
        "insert",
    }
)


def module_level_names(unit: ModuleUnit) -> frozenset[str]:
    """Names bound at module top level (assignment targets)."""
    out: set[str] = set()
    for stmt in unit.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                out.add(stmt.target.id)
    return frozenset(out)


def _locally_bound(node: ast.AST) -> frozenset[str]:
    """Names definitely rebound locally inside a function (params plus
    bare-name assignment/loop/with targets), minus ``global`` names."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return frozenset()
    bound: set[str] = set()
    args = node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)
    globals_declared: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            globals_declared.update(sub.names)
        elif isinstance(sub, ast.Assign):
            for target in sub.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        bound.add(name_node.id)
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(sub.target, ast.Name):
                bound.add(sub.target.id)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(sub.target):
                if isinstance(name_node, ast.Name):
                    bound.add(name_node.id)
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if item.optional_vars is not None:
                    for name_node in ast.walk(item.optional_vars):
                        if isinstance(name_node, ast.Name):
                            bound.add(name_node.id)
    return frozenset(bound - globals_declared)


def _module_state_writes(
    info: FunctionInfo, unit: ModuleUnit, module_names: frozenset[str]
) -> list[tuple[ast.AST, str, str]]:
    """(node, dotted state name, description) for each module-state
    write inside ``info``."""
    writes: list[tuple[ast.AST, str, str]] = []
    local = _locally_bound(info.node)

    def is_module_name(name: str) -> bool:
        return name in module_names and name not in local

    for root in owned_statements(info):
        globals_declared: set[str] = set()
        for node in ast.walk(root):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
        for node in ast.walk(root):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in globals_declared
                    ):
                        writes.append(
                            (
                                node,
                                f"{info.module}.{target.id}",
                                f"rebinds module global {target.id!r}",
                            )
                        )
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        if is_module_name(target.value.id):
                            writes.append(
                                (
                                    node,
                                    f"{info.module}.{target.value.id}",
                                    f"stores into module-level {target.value.id!r}",
                                )
                            )
            elif isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Name) and target.id in globals_declared:
                    writes.append(
                        (
                            node,
                            f"{info.module}.{target.id}",
                            f"rebinds module global {target.id!r}",
                        )
                    )
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    if is_module_name(target.value.id):
                        writes.append(
                            (
                                node,
                                f"{info.module}.{target.value.id}",
                                f"stores into module-level {target.value.id!r}",
                            )
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                base = node.func.value
                if (
                    isinstance(base, ast.Name)
                    and node.func.attr in _MUTATOR_METHODS
                    and is_module_name(base.id)
                ):
                    writes.append(
                        (
                            node,
                            f"{info.module}.{base.id}",
                            f"mutates module-level {base.id!r} "
                            f"via .{node.func.attr}(...)",
                        )
                    )
    return writes


@register_program
class ShardPurityRule(ProgramRule):
    """X301: worker-reachable code must not write unshipped module state."""

    rule_id = "X301"
    summary = (
        "function reachable from a pool-worker entry point writes module "
        "state not shipped via the shared-memory store — invisible to "
        "other shards and to the serial baseline"
    )
    scope = "program"

    def check_program(self, ctx: ProgramContext) -> list[Finding]:
        graph = ctx.callgraph
        entries = tuple(
            entry
            for entry in ctx.policy.worker_entry_functions
            if entry in graph.functions
        )
        if not entries:
            return []
        reachable = graph.reachable_from(entries)
        allowlist = frozenset(ctx.policy.worker_state_allowlist)
        module_names = {
            module: module_level_names(unit)
            for module, unit in sorted(ctx.units.items())
        }
        findings: list[Finding] = []
        for qualname in sorted(reachable):
            info = graph.functions[qualname]
            unit = ctx.units.get(info.module)
            if unit is None:
                continue
            for node, state_name, desc in _module_state_writes(
                info, unit, module_names[info.module]
            ):
                if state_name in allowlist:
                    continue
                entry, chain = self._witness(graph, entries, qualname)
                trace = [
                    TraceStep(
                        path=graph.functions[entry].path,
                        line=graph.functions[entry].lineno,
                        note=f"worker entry: {entry}",
                    )
                ]
                for site in chain:
                    caller_info = graph.functions[site.caller]
                    trace.append(
                        TraceStep(
                            path=caller_info.path,
                            line=site.line,
                            note=f"call: {site.caller} -> {site.callee}",
                        )
                    )
                trace.append(
                    TraceStep(
                        path=info.path,
                        line=getattr(node, "lineno", info.lineno),
                        note=f"write: {desc} (in {qualname})",
                    )
                )
                findings.append(
                    Finding(
                        path=info.path,
                        line=getattr(node, "lineno", info.lineno),
                        col=getattr(node, "col_offset", 0),
                        rule_id=self.rule_id,
                        message=(
                            f"worker-reachable {qualname} {desc}; ship state "
                            "through the shared-memory store instead"
                        ),
                        trace=tuple(trace),
                    )
                )
        return sorted(findings)

    @staticmethod
    def _witness(
        graph: CallGraph, entries: tuple[str, ...], target: str
    ) -> tuple[str, list[CallSite]]:
        """Shortest (entry, call chain) witness that reaches ``target``."""
        best: tuple[str, list[CallSite]] | None = None
        for entry in entries:
            chain = graph.call_path(entry, target)
            if chain is None:
                continue
            if best is None or len(chain) < len(best[1]):
                best = (entry, list(chain))
        assert best is not None  # target came from reachable_from(entries)
        return best
