"""X2xx: interprocedural lock-order analysis.

The executor/store/LUT/obs stack each guard their own state with a
private lock; none of them may *nest* in inconsistent order, and none
may be held while work is handed to a process pool (a worker result
callback that wants the same lock deadlocks the dispatcher; at minimum
the pool round-trip serializes under the lock).

* X201 (``scope="program"``) — lock acquisition ordering: an edge
  A → B is recorded when B is acquired (directly, or transitively
  through calls) while A is held. A cycle in the edge graph — including
  a non-reentrant self-cycle — is a potential deadlock.
* X202 (``scope="file"``) — a call made while holding any lock must not
  reach a pool dispatch boundary (a policy-listed dispatch function or a
  literal ``<pool>.submit(...)``).

Locks are identified statically: module-level ``NAME = threading.Lock()``
(→ ``module.NAME``) and ``self.attr = threading.Lock()`` in ``__init__``
(→ ``module.Class.attr``). Acquisition means a ``with`` statement on the
lock (the repo's only idiom); bare ``.acquire()`` calls are not tracked.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleUnit,
    ProgramContext,
    owned_statements,
)
from repro.analysis.findings import Finding, TraceStep
from repro.analysis.registry import ProgramRule, register_program

_LOCK_FACTORIES = frozenset({"Lock", "RLock"})


@dataclass(frozen=True)
class LockDef:
    """One statically-identified lock object.

    ``lock_id`` is ``module.NAME`` or ``module.Class.attr``; ``reentrant``
    is True for ``RLock`` (self-nesting is then legal).
    """

    lock_id: str
    reentrant: bool


@dataclass(frozen=True)
class Acquisition:
    """One ``with <lock>:`` site."""

    lock_id: str
    qualname: str
    path: str
    line: int


def _is_lock_factory_call(node: ast.expr) -> str | None:
    """``"Lock"``/``"RLock"`` when ``node`` constructs one, else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in _LOCK_FACTORIES:
        return func.attr
    return None


def collect_locks(units: dict[str, ModuleUnit]) -> dict[str, LockDef]:
    """Every lock definition in the program, keyed by lock id."""
    out: dict[str, LockDef] = {}

    def record(lock_id: str, factory: str) -> None:
        out[lock_id] = LockDef(lock_id=lock_id, reentrant=factory == "RLock")

    for module in sorted(units):
        unit = units[module]
        for stmt in unit.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                factory = _is_lock_factory_call(stmt.value)
                if factory and isinstance(target, ast.Name):
                    record(f"{module}.{target.id}", factory)
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if not isinstance(item, ast.FunctionDef) or item.name != "__init__":
                        continue
                    for node in ast.walk(item):
                        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                            continue
                        target = node.targets[0]
                        factory = _is_lock_factory_call(node.value)
                        if (
                            factory
                            and isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            record(f"{module}.{stmt.name}.{target.attr}", factory)
    return out


def _lock_id_of(
    expr: ast.expr, info: FunctionInfo, graph: CallGraph, locks: dict[str, LockDef]
) -> str | None:
    """Lock id a with-item expression refers to, or None."""
    if isinstance(expr, ast.Name):
        candidate = f"{info.module}.{expr.id}"
        return candidate if candidate in locks else None
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        if expr.value.id == "self" and info.class_name:
            candidate = f"{info.module}.{info.class_name}.{expr.attr}"
            return candidate if candidate in locks else None
        # ``mod.NAME`` through an import alias.
        dotted = graph.resolve_call(
            info.module, info.class_name, expr
        )  # reuses alias resolution; returns module.NAME for module attrs
        if dotted is not None and dotted in locks:
            return dotted
    return None


@dataclass(frozen=True)
class _HeldEvent:
    """Something observed while a lock is held in one function body."""

    kind: str  # "acquire" | "call" | "submit"
    payload: str  # inner lock id, resolved callee, or pool attr text
    line: int
    col: int


def _is_submit(node: ast.Call) -> bool:
    return isinstance(node.func, ast.Attribute) and node.func.attr == "submit"


def _scan_function(
    info: FunctionInfo, graph: CallGraph, locks: dict[str, LockDef]
) -> tuple[list[Acquisition], dict[str, list[_HeldEvent]], bool]:
    """Acquisitions, per-lock held-region events, and whether the
    function contains a direct ``.submit(...)`` call anywhere."""
    acquisitions: list[Acquisition] = []
    held_events: dict[str, list[_HeldEvent]] = {}

    def record_calls(roots: list[ast.AST], held: tuple[str, ...]) -> None:
        if not held:
            return
        for root in roots:
            for node in ast.walk(root):
                if not isinstance(node, ast.Call):
                    continue
                if _is_submit(node):
                    for lock_id in held:
                        held_events.setdefault(lock_id, []).append(
                            _HeldEvent(
                                kind="submit",
                                payload="submit",
                                line=node.lineno,
                                col=node.col_offset,
                            )
                        )
                    continue
                callee = graph.resolve_call(info.module, info.class_name, node.func)
                if callee is None:
                    continue
                for lock_id in held:
                    held_events.setdefault(lock_id, []).append(
                        _HeldEvent(
                            kind="call",
                            payload=callee,
                            line=node.lineno,
                            col=node.col_offset,
                        )
                    )

    def walk(stmts: list[ast.stmt], held: tuple[str, ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                record_calls([item.context_expr for item in stmt.items], held)
                inner = held
                for item in stmt.items:
                    lock_id = _lock_id_of(item.context_expr, info, graph, locks)
                    if lock_id is None:
                        continue
                    acquisitions.append(
                        Acquisition(
                            lock_id=lock_id,
                            qualname=info.qualname,
                            path=info.path,
                            line=stmt.lineno,
                        )
                    )
                    for outer in inner:
                        held_events.setdefault(outer, []).append(
                            _HeldEvent(
                                kind="acquire",
                                payload=lock_id,
                                line=stmt.lineno,
                                col=stmt.col_offset,
                            )
                        )
                    inner = inner + (lock_id,)
                walk(stmt.body, inner)
            elif isinstance(stmt, (ast.If, ast.While)):
                record_calls([stmt.test], held)
                walk(stmt.body, held)
                walk(stmt.orelse, held)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                record_calls([stmt.iter], held)
                walk(stmt.body, held)
                walk(stmt.orelse, held)
            elif isinstance(stmt, ast.Try):
                walk(stmt.body, held)
                for handler in stmt.handlers:
                    walk(handler.body, held)
                walk(stmt.orelse, held)
                walk(stmt.finalbody, held)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # A def under a lock does not *run* under the lock.
                continue
            else:
                record_calls([stmt], held)

    roots = owned_statements(info)
    for root in roots:
        if isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef)):
            walk(root.body, ())
        else:
            walk([root], ())
    has_submit = any(
        isinstance(node, ast.Call) and _is_submit(node)
        for root in roots
        for node in ast.walk(root)
    )
    return acquisitions, held_events, has_submit


@dataclass
class LockFacts:
    """Program-wide lock facts shared by X201 and X202."""

    locks: dict[str, LockDef]
    acquisitions: dict[str, list[Acquisition]]  # qualname -> sites
    held_events: dict[str, dict[str, list[_HeldEvent]]]  # qualname -> lock -> events
    direct_submit: frozenset[str]  # qualnames with a literal .submit(...)

    @staticmethod
    def build(ctx: ProgramContext) -> "LockFacts":
        graph = ctx.callgraph
        locks = collect_locks(ctx.units)
        acquisitions: dict[str, list[Acquisition]] = {}
        held_events: dict[str, dict[str, list[_HeldEvent]]] = {}
        direct_submit: set[str] = set()
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            acq, events, has_submit = _scan_function(info, graph, locks)
            if acq:
                acquisitions[qualname] = acq
            if events:
                held_events[qualname] = events
            if has_submit:
                direct_submit.add(qualname)
        return LockFacts(
            locks=locks,
            acquisitions=acquisitions,
            held_events=held_events,
            direct_submit=frozenset(direct_submit),
        )


def may_acquire(facts: LockFacts, graph: CallGraph) -> dict[str, frozenset[str]]:
    """Fixpoint: lock ids each function may acquire, transitively."""
    out: dict[str, set[str]] = {
        qual: {a.lock_id for a in acq} for qual, acq in facts.acquisitions.items()
    }
    changed = True
    while changed:
        changed = False
        for qualname in sorted(graph.functions):
            acc = out.setdefault(qualname, set())
            before = len(acc)
            for callee in graph.callees_of(qualname):
                acc |= out.get(callee, set())
            if len(acc) != before:
                changed = True
    return {qual: frozenset(ids) for qual, ids in out.items()}


class _OrderGraph:
    """Lock-ordering edges with witness acquisition sites."""

    def __init__(self) -> None:
        self.edges: dict[str, set[str]] = {}
        self.witness: dict[tuple[str, str], TraceStep] = {}

    def add(self, outer: str, inner: str, step: TraceStep) -> None:
        self.edges.setdefault(outer, set()).add(inner)
        self.witness.setdefault((outer, inner), step)

    def cycles(self) -> list[tuple[str, ...]]:
        """Elementary cycles, canonicalized (rotation-minimal), sorted."""
        found: set[tuple[str, ...]] = set()
        nodes = sorted(self.edges)

        def dfs(start: str, current: str, path: list[str]) -> None:
            for target in sorted(self.edges.get(current, set())):
                if target == start:
                    cycle = tuple(path)
                    pivot = cycle.index(min(cycle))
                    found.add(cycle[pivot:] + cycle[:pivot])
                elif target not in path and target > start:
                    # Only explore nodes >= start: each cycle is found
                    # exactly once, from its smallest node.
                    dfs(start, target, path + [target])

        for node in nodes:
            dfs(node, node, [node])
        return sorted(found)


@register_program
class LockOrderCycleRule(ProgramRule):
    """X201: lock acquisition order must be acyclic."""

    rule_id = "X201"
    summary = (
        "inconsistent lock acquisition order (A taken while holding B and "
        "B while holding A, directly or through calls) — potential deadlock"
    )
    scope = "program"

    def check_program(self, ctx: ProgramContext) -> list[Finding]:
        graph = ctx.callgraph
        facts = LockFacts.build(ctx)
        if not facts.locks:
            return []
        acquires = may_acquire(facts, graph)
        order = _OrderGraph()
        for qualname in sorted(facts.held_events):
            info = graph.functions[qualname]
            for outer in sorted(facts.held_events[qualname]):
                for event in facts.held_events[qualname][outer]:
                    if event.kind == "acquire":
                        order.add(
                            outer,
                            event.payload,
                            TraceStep(
                                path=info.path,
                                line=event.line,
                                note=(
                                    f"{event.payload} acquired while holding "
                                    f"{outer} (in {qualname})"
                                ),
                            ),
                        )
                    elif event.kind == "call":
                        callee = event.payload
                        target = graph.as_function(callee)
                        if target is None:
                            continue
                        for inner in sorted(acquires.get(target, frozenset())):
                            order.add(
                                outer,
                                inner,
                                TraceStep(
                                    path=info.path,
                                    line=event.line,
                                    note=(
                                        f"call {qualname} -> {callee} may acquire "
                                        f"{inner} while holding {outer}"
                                    ),
                                ),
                            )
        findings: list[Finding] = []
        for cycle in order.cycles():
            if len(cycle) == 1:
                lock = facts.locks.get(cycle[0])
                if lock is not None and lock.reentrant:
                    continue  # RLock self-nesting is legal
            steps = []
            for index, outer in enumerate(cycle):
                inner = cycle[(index + 1) % len(cycle)]
                steps.append(order.witness[(outer, inner)])
            anchor = steps[0]
            findings.append(
                Finding(
                    path=anchor.path,
                    line=anchor.line,
                    col=0,
                    rule_id=self.rule_id,
                    message=(
                        "lock-order cycle: " + " -> ".join(cycle + (cycle[0],))
                    ),
                    trace=tuple(steps),
                )
            )
        return sorted(findings)


@register_program
class LockAcrossDispatchRule(ProgramRule):
    """X202: no lock may be held across a pool dispatch boundary."""

    rule_id = "X202"
    summary = (
        "lock held across a pool dispatch (<pool>.submit or a policy "
        "dispatch function, directly or through calls) — deadlock-prone "
        "and serializes the pool round-trip"
    )
    scope = "file"

    def check_program(self, ctx: ProgramContext) -> list[Finding]:
        graph = ctx.callgraph
        facts = LockFacts.build(ctx)
        dispatch_roots = frozenset(ctx.policy.pool_dispatch_functions)
        # Fixpoint: functions that transitively reach a dispatch.
        dispatches: set[str] = set(facts.direct_submit)
        for dotted in dispatch_roots:
            if dotted in graph.functions:
                dispatches.add(dotted)
        changed = True
        while changed:
            changed = False
            for qualname in sorted(graph.functions):
                if qualname in dispatches:
                    continue
                for callee in graph.callees_of(qualname):
                    if callee in dispatches:
                        dispatches.add(qualname)
                        changed = True
                        break
        findings: list[Finding] = []
        for qualname in sorted(facts.held_events):
            info = graph.functions[qualname]
            for lock_id in sorted(facts.held_events[qualname]):
                acq_line = min(
                    (
                        a.line
                        for a in facts.acquisitions.get(qualname, [])
                        if a.lock_id == lock_id
                    ),
                    default=info.lineno,
                )
                for event in facts.held_events[qualname][lock_id]:
                    reason: str | None = None
                    if event.kind == "submit":
                        reason = "pool submit"
                    elif event.kind == "call":
                        target = graph.as_function(event.payload)
                        if event.payload in dispatch_roots or (
                            target is not None and target in dispatches
                        ):
                            reason = f"call of dispatching {event.payload}"
                    if reason is None:
                        continue
                    findings.append(
                        Finding(
                            path=info.path,
                            line=event.line,
                            col=event.col,
                            rule_id=self.rule_id,
                            message=(
                                f"{lock_id} held across pool dispatch ({reason})"
                            ),
                            trace=(
                                TraceStep(
                                    path=info.path,
                                    line=acq_line,
                                    note=f"lock acquired: {lock_id} (in {qualname})",
                                ),
                                TraceStep(
                                    path=info.path,
                                    line=event.line,
                                    note=f"dispatch while held: {reason}",
                                ),
                            ),
                        )
                    )
        return sorted(findings)
