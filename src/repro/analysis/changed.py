"""Git-backed change detection for ``pilfill lint --changed``.

A pre-commit lint does not need the whole tree: only files that differ
from ``HEAD`` (staged, unstaged, or untracked) can introduce new
findings directly — plus, because the X-family facts cross file
boundaries, every file whose import closure touches a changed module.
This module supplies the first half (the git query); the runner combines
it with :meth:`~repro.analysis.modgraph.ModuleGraph.dependents_of` for
the closure half.
"""

from __future__ import annotations

import subprocess
from pathlib import Path


def _git_lines(args: list[str], cwd: Path) -> list[str] | None:
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return [line for line in proc.stdout.splitlines() if line.strip()]


def changed_paths(cwd: Path) -> frozenset[Path] | None:
    """Resolved paths of files that differ from HEAD (tracked changes,
    staged or not, plus untracked files). None when the git state cannot
    be determined — callers should fall back to a full lint, never to an
    empty one."""
    top_lines = _git_lines(["rev-parse", "--show-toplevel"], cwd)
    if not top_lines:
        return None
    top = Path(top_lines[0])
    diff = _git_lines(["diff", "--name-only", "HEAD"], cwd)
    untracked = _git_lines(
        ["ls-files", "--others", "--exclude-standard"], cwd
    )
    if diff is None or untracked is None:
        return None
    out: set[Path] = set()
    for rel in diff + untracked:
        candidate = top / rel
        if candidate.exists():
            out.add(candidate.resolve())
    return frozenset(out)
