"""``# pilfill: allow[rule-id]`` suppression comments.

A finding is suppressed when its line carries an allow comment naming
its rule id::

    if coeff == 0.0:  # pilfill: allow[D104] -- exact-zero sparsity test

The justification after ``--`` is mandatory: an allow comment without
one is itself a finding (A001), so the self-check gate guarantees every
suppression in the tree says *why* the rule does not apply. Unknown rule
ids are findings too (A002) — a typo must not silently disable nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from repro.analysis.findings import Finding

_ALLOW_RE = re.compile(
    r"#\s*pilfill:\s*allow\[(?P<ids>[^\]]*)\]\s*(?:--\s*(?P<why>\S.*))?"
)


@dataclass(frozen=True)
class Suppression:
    """One allow comment.

    Attributes:
        line: 1-based line the comment sits on (suppresses findings
            reported on that line).
        rule_ids: the rule ids it names.
        justification: text after ``--`` (empty = blanket, flagged A001).
    """

    line: int
    rule_ids: tuple[str, ...]
    justification: str

    def covers(self, rule_id: str, line: int) -> bool:
        """Whether this comment suppresses ``rule_id`` at ``line``."""
        return line == self.line and rule_id in self.rule_ids


def parse_suppressions(source: str) -> list[Suppression]:
    """Every allow comment in ``source``, in line order."""
    out: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):  # pragma: no cover - defensive
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(tok.string)
        if match is None:
            continue
        ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        out.append(
            Suppression(
                line=tok.start[0],
                rule_ids=ids,
                justification=(match.group("why") or "").strip(),
            )
        )
    return out


def filter_suppressed(
    findings: list[Finding], suppressions: list[Suppression]
) -> list[Finding]:
    """Findings not covered by any allow comment (order preserved).

    Idempotent — the runner applies it separately to per-file and
    interprocedural findings of the same file without double-counting.
    """
    return [
        f
        for f in findings
        if not any(s.covers(f.rule_id, f.line) for s in suppressions)
    ]


def hygiene_findings(
    path: str,
    suppressions: list[Suppression],
    known_rule_ids: frozenset[str],
) -> list[Finding]:
    """A001/A002 findings for the allow comments themselves.

    A001 fires on an allow comment with no ``--`` justification, A002 on
    an allow naming an unknown rule id. Hygiene findings cannot be
    suppressed (an allow comment must not excuse itself). Emitted once
    per file, by the per-file pass only.
    """
    out: list[Finding] = []
    for sup in suppressions:
        if not sup.justification:
            out.append(
                Finding(
                    path=path,
                    line=sup.line,
                    col=0,
                    rule_id="A001",
                    message=(
                        "blanket suppression: add a justification, e.g. "
                        "`# pilfill: allow[...] -- why the rule does not apply`"
                    ),
                )
            )
        unknown = sorted(set(sup.rule_ids) - known_rule_ids)
        for rule_id in unknown:
            out.append(
                Finding(
                    path=path,
                    line=sup.line,
                    col=0,
                    rule_id="A002",
                    message=f"allow names unknown rule id {rule_id!r}",
                )
            )
    return out


def apply_suppressions(
    path: str,
    findings: list[Finding],
    suppressions: list[Suppression],
    known_rule_ids: frozenset[str],
) -> list[Finding]:
    """Drop suppressed findings and add A001/A002 hygiene findings
    (the one-shot combination of :func:`filter_suppressed` and
    :func:`hygiene_findings`)."""
    kept = filter_suppressed(findings, suppressions)
    kept.extend(hygiene_findings(path, suppressions, known_rule_ids))
    return sorted(kept)
