"""Result cache for the linter.

Re-linting an unchanged tree costs one digest per file instead of a full
AST pass. A per-file cache entry is keyed by a digest of the file
*content* plus the analysis context — linter version, rule ids, policy
fingerprint, worker-reachability, and (since the interprocedural passes)
the file's **import-closure digest**, so a finding explained by a
dependency goes stale the moment that dependency edits. Content hashing,
not mtimes, so the cache is immune to clock skew and checkout timestamp
churn.

Program-scoped rules (lock-order cycles, worker purity) depend on facts
outside any single file's closure, so their findings live in a separate
section keyed by a whole-program digest via :func:`program_digest`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.findings import Finding
from repro.io.atomic import atomic_write_json

#: Bump to invalidate every cache entry when rule semantics change.
LINT_VERSION = 2


def context_digest(
    rule_ids: tuple[str, ...],
    policy_fingerprint: str,
    worker_reachable: bool,
    closure_digest: str = "",
) -> str:
    """Digest of everything besides file content that affects findings."""
    payload = json.dumps(
        {
            "version": LINT_VERSION,
            "rules": sorted(rule_ids),
            "policy": policy_fingerprint,
            "reachable": worker_reachable,
            "closure": closure_digest,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def program_digest(
    rule_ids: tuple[str, ...], policy_fingerprint: str, source_digest: str
) -> str:
    """Cache key for the program-scoped findings of one whole program."""
    payload = json.dumps(
        {
            "version": LINT_VERSION,
            "rules": sorted(rule_ids),
            "policy": policy_fingerprint,
            "sources": source_digest,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def entry_digest(source: str, ctx_digest: str) -> str:
    """Cache key for one file's findings."""
    h = hashlib.sha256()
    h.update(source.encode("utf-8"))
    h.update(ctx_digest.encode("utf-8"))
    return h.hexdigest()


class LintCache:
    """JSON-file-backed map of path -> (digest, findings)."""

    def __init__(self, path: Path | None):
        self.path = path
        self._entries: dict[str, dict[str, object]] = {}
        self._program: dict[str, object] = {}
        self._dirty = False
        if path is not None and path.exists():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                data = {}
            if isinstance(data, dict) and data.get("version") == LINT_VERSION:
                entries = data.get("entries")
                if isinstance(entries, dict):
                    self._entries = entries
                program = data.get("program")
                if isinstance(program, dict):
                    self._program = program

    def get(self, path: str, digest: str) -> list[Finding] | None:
        """Cached findings for ``path`` at ``digest``, else None."""
        entry = self._entries.get(path)
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            return None
        raw = entry.get("findings")
        if not isinstance(raw, list):
            return None
        try:
            return [Finding.from_dict(item) for item in raw]
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, path: str, digest: str, findings: list[Finding]) -> None:
        """Record findings for ``path`` at ``digest``."""
        self._entries[path] = {
            "digest": digest,
            "findings": [f.to_dict() for f in findings],
        }
        self._dirty = True

    def get_program(self, digest: str) -> list[Finding] | None:
        """Cached program-scoped findings at ``digest``, else None."""
        if self._program.get("digest") != digest:
            return None
        raw = self._program.get("findings")
        if not isinstance(raw, list):
            return None
        try:
            return [Finding.from_dict(item) for item in raw]
        except (KeyError, TypeError, ValueError):
            return None

    def put_program(self, digest: str, findings: list[Finding]) -> None:
        """Record the program-scoped findings at ``digest``."""
        self._program = {
            "digest": digest,
            "findings": [f.to_dict() for f in findings],
        }
        self._dirty = True

    def save(self) -> None:
        """Persist to disk (no-op for the in-memory cache or when clean)."""
        if self.path is None or not self._dirty:
            return
        payload = {
            "version": LINT_VERSION,
            "entries": self._entries,
            "program": self._program,
        }
        try:
            # Atomic so a crash mid-save can't leave a torn cache that
            # poisons (and silently un-caches) every later lint run.
            atomic_write_json(self.path, payload, indent=None, sort_keys=True)
        except OSError:  # pragma: no cover - cache is best-effort
            pass
        self._dirty = False
