"""Import graph over the source tree, for cross-module facts.

The C-family rules need to know which modules run inside process-pool
workers: everything transitively imported from the worker entry modules
(``repro.pilfill.parallel``). Imports are collected from the AST —
including function-local imports, which the solve path uses deliberately
— so the reachable set matches what a worker process actually loads.

The interprocedural passes (PR 9) lean on the same graph for cache
soundness: :meth:`ModuleGraph.closure_digest` hashes a module's whole
import closure so per-file cache entries invalidate when *any* imported
module changes, and :meth:`ModuleGraph.dependents_of` inverts the edges
for ``pilfill lint --changed``.
"""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path`` by walking up ``__init__.py``
    packages; ``""`` when the file is not inside a package."""
    path = path.resolve()
    if not (path.parent / "__init__.py").exists():
        return ""
    parts = [path.stem] if path.stem != "__init__" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        current = current.parent
    return ".".join(reversed(parts))


def _imports_of(tree: ast.Module, module: str, is_package: bool) -> set[str]:
    """Dotted modules ``module`` imports (absolute and relative)."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                # Anchor package: the module itself when it is a package
                # __init__, its parent otherwise; each extra level climbs
                # one more package.
                hops = module.split(".") if module else []
                keep = len(hops) - node.level + (1 if is_package else 0)
                prefix = ".".join(hops[: max(keep, 0)])
                base = f"{prefix}.{node.module}" if node.module and prefix else (
                    node.module or prefix
                )
            if base:
                out.add(base)
                # `from pkg import name` may import the submodule pkg.name.
                for alias in node.names:
                    out.add(f"{base}.{alias.name}")
    return out


class ModuleGraph:
    """Import graph of every module under one source root."""

    def __init__(self, root: Path):
        self.root = root.resolve()
        self._edges: dict[str, set[str]] = {}
        self._paths: dict[str, Path] = {}
        self._sources: dict[str, str] = {}
        self._closures: dict[str, frozenset[str]] = {}
        self._closure_digests: dict[str, str] = {}
        for file in sorted(self.root.rglob("*.py")):
            module = module_name_for(file)
            if not module:
                continue
            self._paths[module] = file
            source = file.read_text(encoding="utf-8")
            self._sources[module] = source
            try:
                tree = ast.parse(source)
            except SyntaxError:
                continue
            self._edges[module] = _imports_of(
                tree, module, is_package=file.name == "__init__.py"
            )

    def modules(self) -> tuple[str, ...]:
        """Every module in the graph, sorted."""
        return tuple(sorted(self._paths))

    def path_of(self, module: str) -> Path | None:
        """Source path of ``module``, or None when unknown."""
        return self._paths.get(module)

    def source_of(self, module: str) -> str | None:
        """Source text of ``module`` as read at graph build time."""
        return self._sources.get(module)

    def closure_of(self, module: str) -> frozenset[str]:
        """``module`` plus everything it transitively imports (within
        the root). Memoized — the runner asks per linted file."""
        cached = self._closures.get(module)
        if cached is None:
            cached = self.reachable_from((module,))
            self._closures[module] = cached
        return cached

    def closure_digest(self, module: str) -> str:
        """sha256 over the sorted (module, source) pairs of
        :meth:`closure_of` — the cache-key ingredient that makes
        cross-module lint facts invalidate when any dependency edits."""
        cached = self._closure_digests.get(module)
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        for name in sorted(self.closure_of(module)):
            digest.update(name.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(self._sources.get(name, "").encode("utf-8"))
            digest.update(b"\x01")
        out = digest.hexdigest()
        self._closure_digests[module] = out
        return out

    def program_source_digest(self) -> str:
        """sha256 over every module's source, sorted by name — the
        whole-program ingredient for program-scoped rule caching."""
        digest = hashlib.sha256()
        for name in sorted(self._sources):
            digest.update(name.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(self._sources[name].encode("utf-8"))
            digest.update(b"\x01")
        return digest.hexdigest()

    def dependents_of(self, modules: frozenset[str]) -> frozenset[str]:
        """``modules`` plus every module whose import closure touches
        one of them — the re-lint set for ``--changed``."""
        out: set[str] = set()
        for module in sorted(self._paths):
            if module in modules or (self.closure_of(module) & modules):
                out.add(module)
        return frozenset(out)

    def reachable_from(self, entries: tuple[str, ...]) -> frozenset[str]:
        """Modules transitively imported from ``entries`` (inclusive),
        restricted to modules that exist under the root."""
        seen: set[str] = set()
        stack = [entry for entry in entries if entry in self._paths]
        while stack:
            module = stack.pop()
            if module in seen:
                continue
            seen.add(module)
            for target in sorted(self._edges.get(module, set())):
                resolved = self._resolve(target)
                if resolved is not None and resolved not in seen:
                    stack.append(resolved)
        return frozenset(seen)

    def _resolve(self, dotted: str) -> str | None:
        """Map an imported dotted name to a module in this graph (the
        name itself, or its parent when the tail is a symbol)."""
        if dotted in self._paths:
            return dotted
        parent = dotted.rpartition(".")[0]
        if parent in self._paths:
            return parent
        return None
