"""Function-level call graph over a set of parsed modules.

The interprocedural rule families (X1xx taint, X2xx lock order, X3xx
shard purity) need to follow facts *across* function and module
boundaries — a wall-clock read three calls away from a digest helper, a
lock acquired inside a callee while another is held. This module builds
the program-wide structure they share:

* :class:`ModuleUnit` — one parsed module (name, path, source, AST).
* :class:`CallGraph` — every function/method in the program, each call
  site resolved (best effort, statically) to a dotted callee name, plus
  forward/transitive reachability and shortest call paths for chain
  reporting.
* :class:`ProgramContext` — the bundle handed to
  :class:`~repro.analysis.registry.ProgramRule` instances: the units,
  the active policy, and the lazily-built call graph.

Resolution is deliberately conservative: a call is an edge only when the
target is nameable from the AST alone (local function, ``self.method``
within the class, ``from mod import fn``, ``mod.fn`` through an import
alias, or a class constructor). Unresolvable calls (first-class
functions, duck-typed attributes) produce no edges — the passes
over-report nothing they cannot see a path for.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.policy import LintPolicy

#: Qualname suffix used for a module's top-level statements (module body
#: code runs on import — inside pool workers too, so it is a graph node).
MODULE_BODY = "<module>"


@dataclass(frozen=True)
class ModuleUnit:
    """One module of the program under analysis."""

    module: str
    path: str
    source: str
    tree: ast.Module


@dataclass(frozen=True)
class CallSite:
    """One resolved call expression inside a function body.

    ``callee`` is a dotted name — a function/method in the program
    (``pkg.mod.fn``, ``pkg.mod.Cls.meth``), a class (constructor call),
    or a function in a module outside the program (still useful: policy
    sink lists name functions by dotted path, wherever they live).
    """

    caller: str
    callee: str
    line: int
    col: int


@dataclass(frozen=True, eq=False)
class FunctionInfo:
    """One function, method, or module body in the program."""

    qualname: str
    module: str
    path: str
    name: str
    lineno: int
    node: ast.AST
    class_name: str = ""

    def body_nodes(self) -> list[ast.stmt]:
        """The statements this function's scan covers (its whole body —
        nested defs are attributed to the enclosing function)."""
        body = getattr(self.node, "body", [])
        return list(body) if isinstance(body, list) else []


def owned_statements(info: FunctionInfo) -> list[ast.stmt]:
    """The statements attributed to ``info`` and nobody else.

    For a module-body node that means top-level statements minus
    def/class bodies (those belong to their own graph nodes); for a
    function it is the def itself — nested defs ride along with their
    enclosing function.
    """
    if info.name == MODULE_BODY:
        return [
            stmt
            for stmt in info.node.body  # type: ignore[attr-defined]
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
    return [info.node]  # type: ignore[list-item]


@dataclass
class _ModuleSymbols:
    """Name-resolution tables for one module."""

    #: local alias -> imported module dotted name (``import numpy as np``).
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local alias -> imported symbol dotted name (``from m import f as g``).
    from_bindings: dict[str, str] = field(default_factory=dict)
    #: top-level def/class local names (resolve to ``module.<name>``).
    local_names: set[str] = field(default_factory=set)
    #: class local name -> method names defined on it.
    class_methods: dict[str, set[str]] = field(default_factory=dict)


def _collect_symbols(unit: ModuleUnit) -> _ModuleSymbols:
    syms = _ModuleSymbols()
    for node in ast.walk(unit.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                syms.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                syms.from_bindings[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    for stmt in unit.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            syms.local_names.add(stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            syms.local_names.add(stmt.name)
            syms.class_methods[stmt.name] = {
                item.name
                for item in stmt.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
    return syms


def _dotted_parts(node: ast.expr) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None when the base is dynamic."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


class CallGraph:
    """Functions and resolved call sites of one program."""

    def __init__(self, units: dict[str, ModuleUnit]):
        self.functions: dict[str, FunctionInfo] = {}
        self.calls: dict[str, tuple[CallSite, ...]] = {}
        self._symbols: dict[str, _ModuleSymbols] = {}
        self._classes: dict[str, str] = {}  # dotted class name -> module
        for module in sorted(units):
            self._add_module(units[module])
        for module in sorted(units):
            self._resolve_module(units[module])

    # -- construction -------------------------------------------------

    def _add_module(self, unit: ModuleUnit) -> None:
        self._symbols[unit.module] = _collect_symbols(unit)
        self.functions[unit.module] = FunctionInfo(
            qualname=unit.module,
            module=unit.module,
            path=unit.path,
            name=MODULE_BODY,
            lineno=1,
            node=unit.tree,
        )
        for stmt in unit.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{unit.module}.{stmt.name}"
                self.functions[qual] = FunctionInfo(
                    qualname=qual,
                    module=unit.module,
                    path=unit.path,
                    name=stmt.name,
                    lineno=stmt.lineno,
                    node=stmt,
                )
            elif isinstance(stmt, ast.ClassDef):
                self._classes[f"{unit.module}.{stmt.name}"] = unit.module
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{unit.module}.{stmt.name}.{item.name}"
                        self.functions[qual] = FunctionInfo(
                            qualname=qual,
                            module=unit.module,
                            path=unit.path,
                            name=item.name,
                            lineno=item.lineno,
                            node=item,
                            class_name=stmt.name,
                        )

    def _resolve_module(self, unit: ModuleUnit) -> None:
        syms = self._symbols[unit.module]
        module_fn = self.functions[unit.module]
        owned: list[tuple[FunctionInfo, list[ast.stmt]]] = []
        owned.append((module_fn, owned_statements(module_fn)))
        for stmt in unit.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                owned.append((self.functions[f"{unit.module}.{stmt.name}"], [stmt]))
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{unit.module}.{stmt.name}.{item.name}"
                        owned.append((self.functions[qual], [item]))
        for info, roots in owned:
            sites: list[CallSite] = []
            for root in roots:
                for node in ast.walk(root):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = self.resolve_call(unit.module, info.class_name, node.func)
                    if callee is not None:
                        sites.append(
                            CallSite(
                                caller=info.qualname,
                                callee=callee,
                                line=node.lineno,
                                col=node.col_offset,
                            )
                        )
            self.calls[info.qualname] = tuple(sites)

    def resolve_call(
        self, module: str, class_name: str, func: ast.expr
    ) -> str | None:
        """Dotted callee name for a call expression, or None."""
        parts = _dotted_parts(func)
        if parts is None:
            return None
        syms = self._symbols[module]
        head, rest = parts[0], parts[1:]
        if head == "self" and class_name and len(rest) == 1:
            if rest[0] in syms.class_methods.get(class_name, set()):
                return f"{module}.{class_name}.{rest[0]}"
            return None
        dotted: str | None = None
        if head in syms.from_bindings:
            dotted = syms.from_bindings[head]
        elif head in syms.module_aliases:
            if not rest:
                return None  # calling a module object: not a thing
            dotted = syms.module_aliases[head]
        elif head in syms.local_names:
            dotted = f"{module}.{head}"
        if dotted is None:
            return None
        if rest:
            dotted = f"{dotted}.{'.'.join(rest)}"
        return dotted

    # -- queries ------------------------------------------------------

    def sites_of(self, qualname: str) -> tuple[CallSite, ...]:
        """Every resolved call site inside ``qualname``."""
        return self.calls.get(qualname, ())

    def class_of(self, dotted: str) -> str | None:
        """The defining module when ``dotted`` names a program class."""
        return self._classes.get(dotted)

    def callees_of(self, qualname: str) -> tuple[str, ...]:
        """Known program functions ``qualname`` calls directly, sorted.

        A call to a class resolves to its ``__init__`` when one exists
        (constructor bodies run at the call site).
        """
        out: set[str] = set()
        for site in self.calls.get(qualname, ()):
            target = self.as_function(site.callee)
            if target is not None:
                out.add(target)
        return tuple(sorted(out))

    def as_function(self, dotted: str) -> str | None:
        """Resolve a dotted callee to a graph function (classes map to
        their ``__init__`` when defined), or None."""
        if dotted in self.functions:
            return dotted
        if dotted in self._classes:
            init = f"{dotted}.__init__"
            if init in self.functions:
                return init
        return None

    def reachable_from(self, roots: tuple[str, ...]) -> frozenset[str]:
        """Functions transitively callable from ``roots`` (inclusive),
        restricted to functions known to the graph."""
        seen: set[str] = set()
        stack = sorted(root for root in roots if root in self.functions)
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for callee in self.callees_of(qual):
                if callee not in seen:
                    stack.append(callee)
        return frozenset(seen)

    def call_path(self, src: str, dst: str) -> list[CallSite] | None:
        """Shortest chain of call sites from ``src`` to ``dst``.

        Returns ``[]`` when ``src == dst`` and ``None`` when no chain
        exists. BFS over sorted edges, so the witness path is stable.
        """
        if src == dst:
            return []
        if src not in self.functions:
            return None
        prev: dict[str, CallSite] = {}
        queue = [src]
        seen = {src}
        while queue:
            current = queue.pop(0)
            for site in self.calls.get(current, ()):
                target = self.as_function(site.callee)
                if target is None or target in seen:
                    continue
                prev[target] = site
                if target == dst:
                    chain: list[CallSite] = []
                    node = dst
                    while node != src:
                        site = prev[node]
                        chain.append(site)
                        node = site.caller
                    return list(reversed(chain))
                seen.add(target)
                queue.append(target)
        return None


class ProgramContext:
    """Everything an interprocedural rule may consult about the program.

    Attributes:
        units: module name -> :class:`ModuleUnit`.
        policy: the active :class:`~repro.analysis.policy.LintPolicy`.
    """

    def __init__(self, units: dict[str, ModuleUnit], policy: LintPolicy):
        self.units = dict(units)
        self.policy = policy
        self._graph: CallGraph | None = None

    @property
    def callgraph(self) -> CallGraph:
        """The (lazily built) call graph over :attr:`units`."""
        if self._graph is None:
            self._graph = CallGraph(self.units)
        return self._graph

    def unit_for(self, qualname: str) -> ModuleUnit | None:
        """The unit defining a function qualname from the call graph."""
        info = self.callgraph.functions.get(qualname)
        if info is None:
            return None
        return self.units.get(info.module)


def build_program(
    sources: dict[str, tuple[str, str]], policy: LintPolicy
) -> ProgramContext:
    """Program context from ``module -> (path, source)`` pairs.

    Modules that fail to parse are skipped (the per-file pass reports
    the syntax error; interprocedural facts about broken files would be
    noise on top).
    """
    units: dict[str, ModuleUnit] = {}
    for module in sorted(sources):
        path, source = sources[module]
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        units[module] = ModuleUnit(module=module, path=path, source=source, tree=tree)
    return ProgramContext(units, policy)
