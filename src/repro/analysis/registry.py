"""Rule base classes, registries, and the per-file analysis context.

Rules self-register at import time via :func:`register` (per-file) or
:func:`register_program` (interprocedural); the runner asks
:func:`all_rules` / :func:`all_program_rules` for the catalogs. A
per-file rule sees a :class:`FileContext` — one parsed file plus
everything repo-level the rule families need (module name, worker
reachability, policy). A :class:`ProgramRule` sees the whole
:class:`~repro.analysis.callgraph.ProgramContext` instead and declares a
``scope``:

* ``"file"`` — every finding is explained by the finding-file's import
  closure, so the runner may cache it per file under a closure digest
  (X101 taint chains, X202 lock-across-dispatch).
* ``"program"`` — findings depend on facts outside any single closure
  (lock-order cycles across unrelated files, reverse reachability from
  worker entries), so they are cached only under a whole-program digest
  (X201, X301).
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.findings import Finding
from repro.analysis.policy import DEFAULT_POLICY, LintPolicy
from repro.errors import FillError

if TYPE_CHECKING:
    from repro.analysis.callgraph import ProgramContext


@dataclass
class FileContext:
    """Everything a rule may consult about one file under analysis.

    Attributes:
        path: the path findings are reported under.
        module: dotted module name (``""`` for non-package files, e.g.
            fixture snippets — package-scoped rules then skip the file
            unless the caller forces a module name).
        source: raw file text.
        tree: parsed AST of ``source``.
        policy: the active :class:`LintPolicy`.
        worker_reachable: True when the module is transitively imported
            from the worker-payload entry modules (C201 scope).
    """

    path: str
    module: str
    source: str
    tree: ast.Module
    policy: LintPolicy = field(default_factory=lambda: DEFAULT_POLICY)
    worker_reachable: bool = False


class Rule(abc.ABC):
    """One analysis rule: an id, a one-line summary, and a check."""

    #: Unique id, e.g. ``"D104"``. Families: D = determinism,
    #: C = concurrency, T = typing, A = suppression hygiene.
    rule_id: str = ""
    #: One-line description shown by ``pilfill lint --rules``.
    summary: str = ""

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> list[Finding]:
        """Findings for one file (empty when clean)."""

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """A finding anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


class ProgramRule(abc.ABC):
    """One interprocedural rule over the whole program.

    Findings from a program rule must be anchored (``path``) at a file
    of the program so suppressions and per-file filtering apply; rules
    with ``scope == "file"`` additionally promise every finding is fully
    determined by that file's import closure.
    """

    #: Unique id, e.g. ``"X101"``. Families: X1xx = determinism taint,
    #: X2xx = lock order, X3xx = shard purity.
    rule_id: str = ""
    #: One-line description shown by ``pilfill lint --rules``.
    summary: str = ""
    #: ``"file"`` when findings are closure-local (cacheable per file),
    #: ``"program"`` when they depend on the whole program.
    scope: str = "file"

    @abc.abstractmethod
    def check_program(self, ctx: ProgramContext) -> list[Finding]:
        """Findings for the whole program (empty when clean)."""


_RULES: dict[str, Rule] = {}
_PROGRAM_RULES: dict[str, ProgramRule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by instance) to the registry."""
    rule = rule_cls()
    if not rule.rule_id:
        raise FillError(f"rule {rule_cls.__name__} has no rule_id")
    if rule.rule_id in _RULES or rule.rule_id in _PROGRAM_RULES:
        raise FillError(f"duplicate rule id {rule.rule_id!r}")
    _RULES[rule.rule_id] = rule
    return rule_cls


def register_program(rule_cls: type[ProgramRule]) -> type[ProgramRule]:
    """Class decorator adding a program rule to the registry."""
    rule = rule_cls()
    if not rule.rule_id:
        raise FillError(f"rule {rule_cls.__name__} has no rule_id")
    if rule.rule_id in _RULES or rule.rule_id in _PROGRAM_RULES:
        raise FillError(f"duplicate rule id {rule.rule_id!r}")
    if rule.scope not in ("file", "program"):
        raise FillError(f"rule {rule.rule_id} has invalid scope {rule.scope!r}")
    _PROGRAM_RULES[rule.rule_id] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered per-file rule, ordered by id (import side
    effects load the built-in rule modules)."""
    _load_builtin_rules()
    return tuple(_RULES[rule_id] for rule_id in sorted(_RULES))


def all_program_rules() -> tuple[ProgramRule, ...]:
    """Every registered interprocedural rule, ordered by id."""
    _load_builtin_rules()
    return tuple(_PROGRAM_RULES[rule_id] for rule_id in sorted(_PROGRAM_RULES))


def known_rule_ids() -> frozenset[str]:
    """The ids suppression comments may reference."""
    _load_builtin_rules()
    return frozenset(_RULES) | frozenset(_PROGRAM_RULES)


def _load_builtin_rules() -> None:
    # Imported lazily (not at module top) to avoid a registry/rules
    # import cycle; idempotent because registration is keyed by id.
    from repro.analysis import (  # noqa: F401
        rules_concurrency,
        rules_determinism,
        rules_lockorder,
        rules_purity,
        rules_taint,
        rules_typing,
    )
