"""Rule base class, registry, and the per-file analysis context.

Rules self-register at import time via :func:`register`; the runner asks
:func:`all_rules` for the catalog. Each rule sees a :class:`FileContext`
— one parsed file plus everything repo-level the rule families need
(module name, worker reachability, policy) — and yields findings.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.policy import DEFAULT_POLICY, LintPolicy
from repro.errors import FillError


@dataclass
class FileContext:
    """Everything a rule may consult about one file under analysis.

    Attributes:
        path: the path findings are reported under.
        module: dotted module name (``""`` for non-package files, e.g.
            fixture snippets — package-scoped rules then skip the file
            unless the caller forces a module name).
        source: raw file text.
        tree: parsed AST of ``source``.
        policy: the active :class:`LintPolicy`.
        worker_reachable: True when the module is transitively imported
            from the worker-payload entry modules (C201 scope).
    """

    path: str
    module: str
    source: str
    tree: ast.Module
    policy: LintPolicy = field(default_factory=lambda: DEFAULT_POLICY)
    worker_reachable: bool = False


class Rule(abc.ABC):
    """One analysis rule: an id, a one-line summary, and a check."""

    #: Unique id, e.g. ``"D104"``. Families: D = determinism,
    #: C = concurrency, T = typing, A = suppression hygiene.
    rule_id: str = ""
    #: One-line description shown by ``pilfill lint --rules``.
    summary: str = ""

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> list[Finding]:
        """Findings for one file (empty when clean)."""

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """A finding anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


_RULES: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by instance) to the registry."""
    rule = rule_cls()
    if not rule.rule_id:
        raise FillError(f"rule {rule_cls.__name__} has no rule_id")
    if rule.rule_id in _RULES:
        raise FillError(f"duplicate rule id {rule.rule_id!r}")
    _RULES[rule.rule_id] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by id (import side effects load
    the built-in rule modules)."""
    _load_builtin_rules()
    return tuple(_RULES[rule_id] for rule_id in sorted(_RULES))


def known_rule_ids() -> frozenset[str]:
    """The ids suppression comments may reference."""
    _load_builtin_rules()
    return frozenset(_RULES)


def _load_builtin_rules() -> None:
    # Imported lazily (not at module top) to avoid a registry/rules
    # import cycle; idempotent because registration is keyed by id.
    from repro.analysis import rules_concurrency, rules_determinism, rules_typing  # noqa: F401
