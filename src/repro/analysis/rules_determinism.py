"""D-family rules: the bit-identity contract, checked statically.

Every rule here protects the PR-1/2 determinism contract — identical
results for any worker count, backend, or tile completion order:

* D101 — no global/unseeded RNG: per-tile seeded ``random.Random`` /
  ``np.random.default_rng(seed)`` streams only.
* D102 — no wall-clock reads outside the deadline/timing allowlist.
* D103 — no iteration over set expressions (order is hash-dependent)
  unless wrapped in ``sorted(...)``.
* D104 — no float ``==`` / ``!=`` in the numeric packages.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register

#: Legacy module-level numpy RNG functions (``np.random.<fn>``).
_NP_GLOBAL_RNG_FNS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "binomial",
        "poisson",
        "exponential",
        "beta",
        "gamma",
        "get_state",
        "set_state",
    }
)

#: ``random`` module attributes that are legitimate to reference (seeded
#: RNG classes, not the hidden module-global stream).
_RANDOM_MODULE_OK = frozenset({"Random", "SystemRandom"})

#: Wall-clock reads: attribute name per module family.
_TIME_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
    }
)
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})


def _module_aliases(tree: ast.Module, target: str) -> set[str]:
    """Names the file binds to module ``target`` (``import numpy as np``
    puts ``np`` in the result for target ``numpy``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == target:
                    aliases.add(alias.asname or alias.name.split(".")[0])
    return aliases


def _from_imports(tree: ast.Module, module: str) -> dict[str, str]:
    """``local name -> original name`` for ``from <module> import ...``."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                out[alias.asname or alias.name] = alias.name
    return out


@register
class GlobalRngRule(Rule):
    """D101: RNG use must go through an explicitly seeded generator."""

    rule_id = "D101"
    summary = (
        "global or unseeded RNG (random.<fn>, np.random.<fn>, seedless "
        "Random()/default_rng()) — derive a seeded per-tile generator instead"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        random_aliases = _module_aliases(ctx.tree, "random")
        numpy_aliases = _module_aliases(ctx.tree, "numpy")
        nprandom_aliases = _module_aliases(ctx.tree, "numpy.random")
        random_fns = {
            local
            for local, orig in _from_imports(ctx.tree, "random").items()
            if orig not in _RANDOM_MODULE_OK
        }
        np_fns = {
            local
            for local, orig in _from_imports(ctx.tree, "numpy.random").items()
            if orig in _NP_GLOBAL_RNG_FNS
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in random_fns or func.id in np_fns:
                    findings.append(
                        self.finding(
                            ctx, node, f"call of global RNG function {func.id!r}"
                        )
                    )
                elif func.id == "default_rng" and not (node.args or node.keywords):
                    findings.append(
                        self.finding(ctx, node, "default_rng() without an explicit seed")
                    )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            # random.<fn>(...) on the stdlib module.
            if isinstance(base, ast.Name) and base.id in random_aliases:
                if func.attr in _RANDOM_MODULE_OK:
                    if func.attr == "Random" and not (node.args or node.keywords):
                        findings.append(
                            self.finding(
                                ctx, node, "random.Random() without an explicit seed"
                            )
                        )
                else:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"call of module-global RNG 'random.{func.attr}'",
                        )
                    )
                continue
            # np.random.<fn>(...) / numpy.random aliased imports.
            is_np_random = (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in numpy_aliases
            ) or (isinstance(base, ast.Name) and base.id in nprandom_aliases)
            if is_np_random:
                if func.attr in _NP_GLOBAL_RNG_FNS:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"call of legacy global numpy RNG 'np.random.{func.attr}'",
                        )
                    )
                elif func.attr == "default_rng" and not (node.args or node.keywords):
                    findings.append(
                        self.finding(
                            ctx, node, "np.random.default_rng() without an explicit seed"
                        )
                    )
        return findings


@register
class WallClockRule(Rule):
    """D102: wall-clock reads only in the deadline/timing allowlist."""

    rule_id = "D102"
    summary = (
        "wall-clock read (time.time/perf_counter/monotonic, datetime.now) "
        "outside the timing allowlist — results must not depend on when they run"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        if ctx.policy.wall_clock_allowed(ctx.module):
            return []
        findings: list[Finding] = []
        time_aliases = _module_aliases(ctx.tree, "time")
        datetime_aliases = _module_aliases(ctx.tree, "datetime") | set(
            _from_imports(ctx.tree, "datetime")
        )
        time_fns = {
            local
            for local, orig in _from_imports(ctx.tree, "time").items()
            if orig in _TIME_FNS
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name) and node.id in time_fns:
                if isinstance(node.ctx, ast.Load):
                    findings.append(
                        self.finding(ctx, node, f"wall-clock read {node.id!r}")
                    )
                continue
            if not isinstance(node, ast.Attribute):
                continue
            base = node.value
            if (
                isinstance(base, ast.Name)
                and base.id in time_aliases
                and node.attr in _TIME_FNS
            ):
                findings.append(
                    self.finding(ctx, node, f"wall-clock read 'time.{node.attr}'")
                )
                continue
            if node.attr not in _DATETIME_FNS:
                continue
            root = base
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id in datetime_aliases:
                findings.append(
                    self.finding(ctx, node, f"wall-clock read 'datetime...{node.attr}'")
                )
        return findings


def _is_keys_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
        and not node.keywords
    )


def _is_set_expr(node: ast.expr) -> bool:
    """Expressions that definitely evaluate to a hash-ordered set (or a
    set-algebra combination of dict key views)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return _is_set_expr(node.func.value) or _is_keys_call(node.func.value)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        for side in (node.left, node.right):
            if _is_set_expr(side) or _is_keys_call(side):
                return True
    return False


@register
class UnorderedIterationRule(Rule):
    """D103: never iterate a set expression directly — sort it first."""

    rule_id = "D103"
    summary = (
        "iteration over a set expression (set(...), key-view algebra) — "
        "hash order leaks into results; wrap in sorted(...)"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    findings.append(
                        self.finding(
                            ctx,
                            it,
                            "iteration over a set expression; wrap in sorted(...) "
                            "so numeric accumulation / output order is stable",
                        )
                    )
        return findings


def _is_floatish(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    return False


@register
class FloatEqualityRule(Rule):
    """D104: no float ``==`` / ``!=`` in the numeric packages."""

    rule_id = "D104"
    summary = (
        "float == / != in a numeric package — use a tolerance (math.isclose) "
        "or justify an exact-representation test"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        if not ctx.policy.in_float_eq_scope(ctx.module):
            return []
        findings: list[Finding] = []
        # The LP modeling DSL overloads == to *build constraints*; those
        # comparisons are not float equality, so subtrees passed to
        # add_constraint(...) are exempt.
        skip: set[int] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_constraint"
            ):
                for arg in node.args:
                    for sub in ast.walk(arg):
                        skip.add(id(sub))
        for node in ast.walk(ctx.tree):
            if id(node) in skip or not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            if any(_is_floatish(cmp) for cmp in [node.left, *node.comparators]):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "exact float comparison; use a tolerance or justify "
                        "an exact-representation test",
                    )
                )
        return findings
