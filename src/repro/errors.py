"""Exception hierarchy for the PIL-Fill reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the package with a single ``except`` clause,
while still being able to discriminate on more specific subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GeometryError(ReproError):
    """Invalid geometric construction or operation (e.g. negative extents)."""


class LayoutError(ReproError):
    """Inconsistent layout model (unknown net, segment outside die, ...)."""


class TechError(ReproError):
    """Invalid technology description (non-positive pitch, missing layer)."""


class DissectionError(ReproError):
    """Invalid fixed-dissection parameters (w not divisible by r, ...)."""


class ParseError(ReproError):
    """Malformed LEF-lite / DEF-lite input."""

    def __init__(self, message: str, line_no: int | None = None):
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class SolverError(ReproError):
    """ILP/LP solver failure (infeasible where feasibility was required,
    iteration limit, numerical breakdown)."""


class SolveTimeoutError(SolverError):
    """A solve exceeded its wall-clock deadline (per-tile or per-run).

    Raised by the per-tile methods when the backend reports
    ``SolveStatus.TIME_LIMIT``; the robust solve layer catches it and
    degrades to a cheaper method instead of retrying (a retry under the
    same deadline would just time out again).

    ``rung_errors`` carries the fallback-chain error history accumulated
    *before* the deadline fired (e.g. the run deadline expiring between
    rungs), so failed reports keep the full story."""

    def __init__(self, message: str, rung_errors: tuple[str, ...] = ()):
        self.rung_errors = tuple(rung_errors)
        super().__init__(message)

    def __reduce__(self) -> tuple[type[SolveTimeoutError], tuple[str, tuple[str, ...]]]:
        # Preserve rung_errors across the process-pool pickle boundary
        # (BaseException.__reduce__ would replay only ``args``).
        message = str(self.args[0]) if self.args else ""
        return (type(self), (message, self.rung_errors))


class WorkerDeathError(ReproError):
    """A tile worker died mid-solve (real crash or injected fault).

    Deliberately *not* caught by the per-tile fallback chain — nothing
    inside a dead worker can run recovery code — so it always escapes to
    the dispatcher, which retries the tile once with the same derived RNG
    and then falls back. Used by the fault-injection harness to simulate
    worker death deterministically."""


class InfeasibleError(SolverError):
    """The optimization instance admits no feasible solution."""


class UnboundedError(SolverError):
    """The LP relaxation is unbounded below."""


class FillError(ReproError):
    """Fill synthesis failure (budget exceeds slack capacity, bad rules)."""
