"""Rule-based fill baseline (paper §2's related work, Stine et al.)."""

from repro.rulefill.rules import (
    CandidateRule,
    RuleScore,
    enumerate_candidates,
    score_rule,
    select_rule,
)
from repro.rulefill.flow import (
    RuleFillResult,
    representative_line_spacing_um,
    run_rule_fill,
)

__all__ = [
    "CandidateRule",
    "RuleScore",
    "enumerate_candidates",
    "score_rule",
    "select_rule",
    "RuleFillResult",
    "representative_line_spacing_um",
    "run_rule_fill",
]
