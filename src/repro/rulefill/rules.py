"""Rule-based fill methodology (paper §2, Stine et al., ref [11]).

The MIT approach the paper contrasts itself against: instead of optimizing
each fill feature's position, derive *one* fill design rule — buffer
distance ``buf``, block width ``w``, block space ``s`` — by modeling the
capacitance effect of each candidate rule together with the density it can
achieve, then apply that rule uniformly everywhere. The paper's critique:
"the MIT methodology yields only a rule: the fill insertion is not driven
by any context (e.g., per-net or per-wire-segment delay or slack
considerations)."

Implemented faithfully as a baseline:

1. enumerate candidate ``(buf, w, s)`` rules,
2. per rule, estimate (a) the worst-case per-unit-length capacitance
   increment on a canonical parallel-line structure and (b) the maximum
   pattern density the rule can realize,
3. select the rule minimizing the capacitance estimate among rules whose
   achievable density meets the density goal,
4. fill every tile to its prescription with the selected rule's grid —
   position-blind, like the original.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cap.fillimpact import exact_column_cap
from repro.errors import FillError
from repro.tech.rules import FillRules


@dataclass(frozen=True)
class CandidateRule:
    """One fill design rule under evaluation (all DBU)."""

    buffer_distance: int
    fill_size: int
    fill_gap: int

    @property
    def max_pattern_density(self) -> float:
        """Density of an infinite fill array under this rule:
        (w / (w + s))²."""
        pitch = self.fill_size + self.fill_gap
        return (self.fill_size / pitch) ** 2

    def as_fill_rules(self) -> FillRules:
        return FillRules(
            fill_size=self.fill_size,
            fill_gap=self.fill_gap,
            buffer_distance=self.buffer_distance,
        )


@dataclass(frozen=True)
class RuleScore:
    """Evaluation of one candidate rule."""

    rule: CandidateRule
    cap_increment_ff: float
    max_pattern_density: float
    meets_density_goal: bool


def score_rule(
    rule: CandidateRule,
    eps_r: float,
    thickness_um: float,
    line_spacing_um: float,
    dbu_per_micron: int,
    density_goal: float,
) -> RuleScore:
    """Score a rule on the canonical structure: two parallel lines at the
    representative spacing, the gap packed as full as the rule allows."""
    w_um = rule.fill_size / dbu_per_micron
    buf_um = rule.buffer_distance / dbu_per_micron
    pitch_um = (rule.fill_size + rule.fill_gap) / dbu_per_micron
    usable = line_spacing_um - 2 * buf_um
    if usable < w_um:
        m = 0
    else:
        m = int((usable - w_um) / pitch_um) + 1
    # Guard the capacitance model's validity: m·w < d.
    while m > 0 and m * w_um >= line_spacing_um:
        m -= 1
    cap = (
        exact_column_cap(eps_r, thickness_um, line_spacing_um, m, w_um) if m else 0.0
    )
    return RuleScore(
        rule=rule,
        cap_increment_ff=cap,
        max_pattern_density=rule.max_pattern_density,
        meets_density_goal=rule.max_pattern_density >= density_goal,
    )


def enumerate_candidates(
    dbu_per_micron: int,
    sizes_um: tuple[float, ...] = (0.4, 0.5, 0.8, 1.0),
    gaps_um: tuple[float, ...] = (0.25, 0.5, 1.0),
    buffers_um: tuple[float, ...] = (0.25, 0.5, 1.0),
) -> list[CandidateRule]:
    """The candidate rule grid (the ref [11] canonical parameters)."""
    out = []
    for size in sizes_um:
        for gap in gaps_um:
            for buf in buffers_um:
                out.append(
                    CandidateRule(
                        buffer_distance=round(buf * dbu_per_micron),
                        fill_size=round(size * dbu_per_micron),
                        fill_gap=round(gap * dbu_per_micron),
                    )
                )
    return out


def select_rule(
    eps_r: float,
    thickness_um: float,
    line_spacing_um: float,
    dbu_per_micron: int,
    density_goal: float,
    candidates: list[CandidateRule] | None = None,
) -> RuleScore:
    """Pick the minimum-capacitance rule meeting the density goal
    (the ref [11] selection step).

    Raises :class:`FillError` when no candidate can reach the goal.
    """
    if candidates is None:
        candidates = enumerate_candidates(dbu_per_micron)
    if not candidates:
        raise FillError("no candidate rules to select from")
    scores = [
        score_rule(rule, eps_r, thickness_um, line_spacing_um, dbu_per_micron, density_goal)
        for rule in candidates
    ]
    feasible = [s for s in scores if s.meets_density_goal]
    if not feasible:
        raise FillError(
            f"no candidate rule achieves pattern density {density_goal:.2f}; "
            f"best is {max(s.max_pattern_density for s in scores):.2f}"
        )
    return min(feasible, key=lambda s: (s.cap_increment_ff, -s.max_pattern_density))
