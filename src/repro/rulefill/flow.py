"""End-to-end rule-based fill flow (the ref [11] baseline).

Select a rule (:func:`repro.rulefill.rules.select_rule`), then apply it
position-blind: per tile, place the prescribed feature count row-major
into the rule's legal sites. Comparable to the PIL-Fill engine output via
the same evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dissection.density import DensityMap
from repro.dissection.fixed import FixedDissection
from repro.fillsynth.budget import lp_minvar_budget
from repro.fillsynth.placer import place_normal
from repro.fillsynth.slack_sites import SiteLegality
from repro.layout.layout import FillFeature, RoutedLayout
from repro.rulefill.rules import RuleScore, select_rule
from repro.tech.rules import DensityRules


@dataclass
class RuleFillResult:
    """Outcome of a rule-based fill run."""

    selected: RuleScore
    features: list[FillFeature] = field(default_factory=list)
    budget: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def total_features(self) -> int:
        return len(self.features)


def representative_line_spacing_um(layout: RoutedLayout, layer: str) -> float:
    """Median gap between cross-axis-adjacent parallel lines — the
    canonical structure spacing the rule is scored on."""
    from repro.pilfill.scanline import layer_sweep_lines, sweep_gap_blocks

    lines, horizontal = layer_sweep_lines(layout, layer)
    blocks = sweep_gap_blocks(lines, layout.die, horizontal)
    gaps = sorted(
        b.gap for b in blocks if b.below is not None and b.above is not None and b.gap > 0
    )
    if not gaps:
        return 4.0  # no parallel pairs: any default works, nothing couples
    return gaps[len(gaps) // 2] / layout.stack.dbu_per_micron


def run_rule_fill(
    layout: RoutedLayout,
    layer: str,
    density_rules: DensityRules,
    density_goal: float = 0.25,
    target_density: float | None = None,
    seed: int = 0,
    placement: str = "row_major",
) -> RuleFillResult:
    """Run the full rule-based baseline on one layer.

    Args:
        density_goal: minimum pattern density the selected rule must be
            able to realize (the ref [11] coupling of rule choice with
            density goals).
        target_density: density floor for the budget LP (defaults to the
            pre-fill mean window density, as in the PIL engine).
        placement: ``"row_major"`` (deterministic, the classic array fill)
            or ``"random"``.
    """
    proc = layout.stack.layer(layer)
    spacing = representative_line_spacing_um(layout, layer)
    selected = select_rule(
        eps_r=proc.eps_r,
        thickness_um=proc.thickness_um,
        line_spacing_um=spacing,
        dbu_per_micron=layout.stack.dbu_per_micron,
        density_goal=density_goal,
    )
    rules = selected.rule.as_fill_rules()

    dissection = FixedDissection(layout.die, density_rules)
    legality = SiteLegality(layout, layer, rules)
    density = DensityMap.from_layout(dissection, layout, layer)
    capacity = legality.legal_count_by_tile(dissection)
    if target_density is None:
        target_density = float(density.window_density().mean())
    budget = lp_minvar_budget(density, capacity, rules, target_density=target_density)

    scratch = list(layout.fills)  # place_normal appends to layout.fills
    features = place_normal(
        layout, layer, dissection, legality, budget, seed=seed, order=placement
    )
    layout.fills[:] = scratch  # leave the input layout unmodified
    return RuleFillResult(selected=selected, features=features, budget=budget)
