#!/usr/bin/env python
"""Quickstart: timing-aware dummy fill in ~20 lines.

Generates the T1 testcase, runs the ILP-II (lookup table) PIL-Fill flow on
its metal3 layer, and reports the delay impact against the timing-oblivious
Normal baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    EngineConfig,
    PILFillEngine,
    density_rules_for,
    default_fill_rules,
    evaluate_impact,
    make_t1,
)


def main() -> None:
    layout = make_t1()
    print(f"layout {layout.name}: {layout.stats()['nets']:.0f} nets, "
          f"{layout.stats()['segments']:.0f} segments")

    fill_rules = default_fill_rules(layout.stack)
    density_rules = density_rules_for(window_um=32, r=2, stack=layout.stack)

    shared_budget = None
    for method in ("normal", "ilp2"):
        config = EngineConfig(
            fill_rules=fill_rules,
            density_rules=density_rules,
            method=method,
            backend="scipy",
        )
        result = PILFillEngine(layout, "metal3", config).run(budget=shared_budget)
        if shared_budget is None:
            shared_budget = result.requested_budget  # identical density control
        impact = evaluate_impact(layout, "metal3", result.features, fill_rules)
        print(
            f"{method:>8}: {result.total_features} features, "
            f"delay impact tau={impact.total_ps:.4f} ps, "
            f"weighted tau={impact.weighted_total_ps:.4f} ps"
        )


if __name__ == "__main__":
    main()
