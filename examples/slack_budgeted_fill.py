#!/usr/bin/env python
"""Extension demo: MVDC and per-net capacitance budgets.

The paper's closing sections sketch two formulations beyond MDFC:

* footnote ‡: *minimum variation with delay constraint* (MVDC) — fill as
  much as a delay cap allows;
* Section 7: per-net capacitance budgets derived from timing slack.

This example runs both on T1 and shows the trade-offs: MVDC trades density
uniformity for timing safety as the slack fraction shrinks; net budgets
redirect fill away from a protected critical net.

Run:  python examples/slack_budgeted_fill.py
"""

from repro import (
    EngineConfig,
    PILFillEngine,
    default_fill_rules,
    density_rules_for,
    evaluate_impact,
    make_t1,
)
from repro.pilfill import derive_net_cap_budgets


def main() -> None:
    layout = make_t1()
    rules = default_fill_rules(layout.stack)
    config = EngineConfig(
        fill_rules=rules,
        density_rules=density_rules_for(32, 2, layout.stack),
        method="ilp2",
        backend="scipy",
    )
    engine = PILFillEngine(layout, "metal3", config)

    # Reference: plain MDFC.
    plain = engine.run()
    plain_impact = evaluate_impact(layout, "metal3", plain.features, rules)
    print("MDFC (ILP-II reference):")
    print(f"  features={plain.total_features} "
          f"wtau={plain_impact.weighted_total_ps:.4f} ps")

    # MVDC: sweep the slack fraction.
    print("\nMVDC — maximize fill under a per-tile delay cap:")
    print(f"{'slack':>7} {'features':>9} {'coverage':>9} {'wtau (ps)':>10}")
    for slack in (0.02, 0.1, 0.3, 0.7):
        result = engine.run_mvdc(slack_fraction=slack)
        impact = evaluate_impact(layout, "metal3", result.features, rules)
        coverage = result.total_features / max(sum(result.requested_budget.values()), 1)
        print(f"{slack:>7.2f} {result.total_features:>9} {coverage:>9.0%} "
              f"{impact.weighted_total_ps:>10.4f}")

    # Per-net budgets: protect the three worst-hit nets of the plain run.
    victims = sorted(
        plain_impact.per_net_weighted_ps,
        key=plain_impact.per_net_weighted_ps.get,
        reverse=True,
    )[:3]
    budgets = derive_net_cap_budgets(layout, slack_fraction_ps=1.0)
    for net in victims:
        budgets[net] = 1e-6  # effectively: no added coupling on these nets

    result = engine.run_budgeted(budgets)
    impact = evaluate_impact(layout, "metal3", result.features, rules)
    print(f"\nPer-net budgets — protecting {', '.join(victims)}:")
    print(f"  features={result.total_features} "
          f"wtau={impact.weighted_total_ps:.4f} ps")
    for net in victims:
        before = plain_impact.per_net_weighted_ps.get(net, 0.0)
        after = impact.per_net_weighted_ps.get(net, 0.0)
        print(f"  {net}: {before:.5f} -> {after:.5f} ps")


if __name__ == "__main__":
    main()
