#!/usr/bin/env python
"""Density control walkthrough: the fixed r-dissection, window densities,
and the Min-Var LP vs Monte-Carlo budget back-ends (the ref [3] baseline
the PIL-Fill methods build on).

Prints before/after window-density statistics and an ASCII density map of
the layout so the hotspot structure is visible.

Run:  python examples/density_control.py
"""

import numpy as np

from repro import (
    DensityMap,
    FixedDissection,
    SiteLegality,
    default_fill_rules,
    density_rules_for,
    lp_minvar_budget,
    make_t1,
    montecarlo_budget,
)

SHADES = " .:-=+*#%@"


def ascii_map(values: np.ndarray, vmax: float) -> str:
    """Render a 2-D array as ASCII art, row (0,0) at the bottom-left."""
    rows = []
    for iy in range(values.shape[1] - 1, -1, -1):
        row = ""
        for ix in range(values.shape[0]):
            level = min(int(values[ix, iy] / vmax * (len(SHADES) - 1)), len(SHADES) - 1)
            row += SHADES[level]
        rows.append(row)
    return "\n".join(rows)


def apply_budget(density: DensityMap, budget: dict, fill_area: int) -> DensityMap:
    extra = np.zeros_like(density.tile_area)
    for (ix, iy), count in budget.items():
        extra[ix, iy] = count * fill_area
    return density.added(extra)


def main() -> None:
    layout = make_t1()
    rules = default_fill_rules(layout.stack)
    dissection = FixedDissection(layout.die, density_rules_for(32, 4, layout.stack))
    density = DensityMap.from_layout(dissection, layout, "metal3")

    print(f"dissection: {dissection.nx}x{dissection.ny} tiles of "
          f"{dissection.tile_size} DBU, {dissection.window_count} windows")
    before = density.stats()
    print(f"pre-fill window density: min={before.min_density:.4f} "
          f"mean={before.mean_density:.4f} max={before.max_density:.4f} "
          f"(variation {before.variation:.4f})")

    tile_density = np.array([
        [density.tile_density(ix, iy) for iy in range(dissection.ny)]
        for ix in range(dissection.nx)
    ])
    print("\ntile density map (darker = denser; note the hotspot):")
    print(ascii_map(tile_density, vmax=max(tile_density.max(), 1e-9)))

    legality = SiteLegality(layout, "metal3", rules)
    capacity = legality.legal_count_by_tile(dissection)
    target = before.mean_density

    for name, budget in (
        ("Min-Var LP", lp_minvar_budget(density, capacity, rules, target_density=target)),
        ("Monte-Carlo", montecarlo_budget(density, capacity, rules,
                                          target_density=target, seed=0)),
    ):
        after = apply_budget(density, budget, rules.fill_area).stats()
        print(f"\n{name}: {sum(budget.values())} features prescribed")
        print(f"  post-fill window density: min={after.min_density:.4f} "
              f"mean={after.mean_density:.4f} max={after.max_density:.4f} "
              f"(variation {after.variation:.4f})")


if __name__ == "__main__":
    main()
