#!/usr/bin/env python
"""File-based workflow: LEF-lite / DEF-lite round trip with fill.

1. Generate a layout and write its technology (LEF-lite) and routing
   (DEF-lite) to disk — the shape of data a foundry flow would exchange.
2. Read both back, verify timing equivalence.
3. Run PIL-Fill on the parsed layout and write the filled DEF.

Run:  python examples/def_workflow.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    EngineConfig,
    PILFillEngine,
    default_fill_rules,
    density_rules_for,
    evaluate_impact,
    make_t1,
    parse_def,
    parse_lef,
    validate_fill,
    write_def,
    write_lef,
)
from repro.timing import baseline_sink_delays


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    out_dir.mkdir(parents=True, exist_ok=True)

    # 1. Generate and export.
    layout = make_t1()
    lef_path = out_dir / "gsc180.lef"
    def_path = out_dir / "t1.def"
    lef_path.write_text(write_lef(layout.stack))
    def_path.write_text(write_def(layout))
    print(f"wrote {lef_path} ({lef_path.stat().st_size} bytes)")
    print(f"wrote {def_path} ({def_path.stat().st_size} bytes)")

    # 2. Re-import and verify timing equivalence.
    stack = parse_lef(lef_path.read_text())
    parsed = parse_def(def_path.read_text(), stack)
    orig_delays = baseline_sink_delays(layout)
    back_delays = baseline_sink_delays(parsed)
    worst_error = max(
        abs(orig_delays[n][s] - back_delays[n][s])
        for n in orig_delays for s in orig_delays[n]
    )
    print(f"round-trip Elmore delay error: {worst_error:.3e} ps (expect ~0)")

    # 3. Fill the parsed layout and export the result.
    rules = default_fill_rules(stack)
    config = EngineConfig(
        fill_rules=rules,
        density_rules=density_rules_for(32, 2, stack),
        method="ilp2",
        backend="scipy",
    )
    result = PILFillEngine(parsed, "metal3", config).run()
    impact = evaluate_impact(parsed, "metal3", result.features, rules)
    for feature in result.features:
        parsed.add_fill(feature)
    report = validate_fill(parsed, rules)
    filled_path = out_dir / "t1_filled.def"
    filled_path.write_text(write_def(parsed))
    print(f"placed {result.total_features} fill features "
          f"(weighted tau {impact.weighted_total_ps:.4f} ps, DRC {report})")
    print(f"wrote {filled_path}")


if __name__ == "__main__":
    main()
