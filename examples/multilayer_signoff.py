#!/usr/bin/env python
"""Sign-off scenario: fill every routed layer, then verify like a tapeout
deck would.

Chains the library end to end:

1. multi-layer PIL-Fill (``run_all_layers``),
2. density-rule sign-off per layer (``check_density``),
3. DRC check of the fill itself (``validate_fill``),
4. timing sign-off against a clock (``post_fill_slack_report``),
5. smoothness metrics before/after (ref [4]).

Run:  python examples/multilayer_signoff.py
"""

from repro import (
    DensityMap,
    EngineConfig,
    FixedDissection,
    default_fill_rules,
    density_rules_for,
    make_t2,
    validate_fill,
)
from repro.dissection import check_density, smoothness
from repro.pilfill import run_all_layers
from repro.tech import DensityRules
from repro.timing import post_fill_slack_report, slack_report


def main() -> None:
    layout = make_t2()
    rules = default_fill_rules(layout.stack)
    density_rules = density_rules_for(32, 2, layout.stack)
    config = EngineConfig(
        fill_rules=rules, density_rules=density_rules,
        method="ilp2", backend="scipy",
    )

    # 1. Fill all layers.
    result = run_all_layers(layout, config)
    print(f"filled layers: {sorted(result.per_layer)}")
    for layer, run in result.per_layer.items():
        impact = result.per_layer_impact[layer]
        print(f"  {layer}: {run.total_features} features, "
              f"wtau {impact.weighted_total_ps:.4f} ps")
    print(f"combined weighted delay impact: {result.weighted_total_ps:.4f} ps")

    for feature in result.features:
        layout.add_fill(feature)

    # 2. Density sign-off: every window must stay under the ceiling and
    #    reach the floor the fill achieved.
    for layer in result.per_layer:
        dissection = FixedDissection(layout.die, density_rules)
        achieved = DensityMap.from_layout(
            dissection, layout, layer, include_fill=True
        ).stats().min_density
        signoff_rules = DensityRules(
            window_size=density_rules.window_size, r=density_rules.r,
            min_density=max(achieved - 1e-9, 0.0),
            max_density=density_rules.max_density,
        )
        report = check_density(layout, layer, signoff_rules)
        print(f"density sign-off {layer}: {report}")

        before = smoothness(DensityMap.from_layout(dissection, layout, layer))
        after = smoothness(
            DensityMap.from_layout(dissection, layout, layer, include_fill=True)
        )
        print(f"  smoothness pre:  {before}")
        print(f"  smoothness post: {after}")

    # 3. Fill DRC.
    drc = validate_fill(layout, rules)
    print(f"fill DRC: {'OK' if drc.ok else drc.violations[:3]}")

    # 4. Timing sign-off: pick a clock 10% above the worst baseline delay
    #    and confirm fill ate into, but did not exhaust, the slack.
    base = slack_report(layout, clock_ps=1.0)  # probe delays
    worst = max(n.worst_delay_ps for n in base.nets.values())
    clock = worst * 1.1
    before = slack_report(layout, clock)
    after = post_fill_slack_report(
        layout, "metal3", result.per_layer["metal3"].features, rules, clock
    )
    print(f"\nclock {clock:.2f} ps: worst slack "
          f"{before.worst_slack_ps:.3f} -> {after.worst_slack_ps:.3f} ps, "
          f"violations after fill: {len(after.violations)}")


if __name__ == "__main__":
    main()
