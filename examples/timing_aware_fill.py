#!/usr/bin/env python
"""Method comparison: regenerate one row of the paper's Table 2 and show
the per-net timing picture.

Runs all four methods of the paper (plus the marginal-greedy extension) on
T2 at window 32 µm / r 2 with a shared fill budget, scores each with the
common evaluator, and prints which nets pay the most delay under Normal
fill vs ILP-II.

Run:  python examples/timing_aware_fill.py
"""

from repro import (
    EngineConfig,
    PILFillEngine,
    default_fill_rules,
    density_rules_for,
    evaluate_impact,
    make_t2,
)
from repro.timing import timing_report

METHODS = ("normal", "greedy", "ilp1", "ilp2", "greedy_marginal")


def main() -> None:
    layout = make_t2()
    fill_rules = default_fill_rules(layout.stack)
    density_rules = density_rules_for(32, 2, layout.stack)

    budget = None
    placements = {}
    print(f"{'method':>16} {'features':>9} {'tau (ps)':>10} {'wtau (ps)':>10} "
          f"{'vs normal':>10} {'solve s':>8}")
    baseline_wtau = None
    for method in METHODS:
        config = EngineConfig(
            fill_rules=fill_rules,
            density_rules=density_rules,
            method=method,
            backend="scipy",
        )
        result = PILFillEngine(layout, "metal3", config).run(budget=budget)
        if budget is None:
            budget = result.requested_budget
        impact = evaluate_impact(layout, "metal3", result.features, fill_rules)
        placements[method] = result.features
        if baseline_wtau is None:
            baseline_wtau = impact.weighted_total_ps
        reduction = 1 - impact.weighted_total_ps / baseline_wtau
        print(f"{method:>16} {result.total_features:>9} {impact.total_ps:>10.4f} "
              f"{impact.weighted_total_ps:>10.4f} {reduction:>10.0%} "
              f"{result.solve_seconds:>8.2f}")

    # Per-net view: the nets Normal fill hurts most, and what ILP-II does
    # to them instead.
    normal_report = timing_report(layout, "metal3", placements["normal"], fill_rules)
    ilp2_report = timing_report(layout, "metal3", placements["ilp2"], fill_rules)
    worst = sorted(
        normal_report.nets.values(), key=lambda n: n.fill_increment_ps, reverse=True
    )[:5]
    print("\nworst-hit nets under Normal fill:")
    print(f"{'net':>8} {'baseline (ps)':>14} {'normal +ps':>11} {'ilp2 +ps':>10}")
    for net in worst:
        ilp2_inc = ilp2_report.nets[net.net].fill_increment_ps
        print(f"{net.net:>8} {net.worst_sink_ps:>14.3f} "
              f"{net.fill_increment_ps:>11.4f} {ilp2_inc:>10.4f}")


if __name__ == "__main__":
    main()
