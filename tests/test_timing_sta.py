"""Static-timing aggregation (baseline + fill increments)."""

import pytest

from repro.geometry import Rect
from repro.layout import FillFeature
from repro.timing import baseline_sink_delays, timing_report


class TestBaseline:
    def test_all_nets_reported(self, small_generated_layout):
        delays = baseline_sink_delays(small_generated_layout)
        assert set(delays) == set(small_generated_layout.nets)
        for name, sinks in delays.items():
            net = small_generated_layout.nets[name]
            assert set(sinks) == {p.name for p in net.sinks}
            assert all(v > 0 for v in sinks.values())


class TestTimingReport:
    def test_empty_fill_zero_increments(self, two_line_layout, fill_rules):
        report = timing_report(two_line_layout, "metal3", [], fill_rules)
        assert report.total_increment_ps == 0.0
        assert all(n.fill_increment_ps == 0.0 for n in report.nets.values())

    def test_increment_attributed_to_adjacent_nets(self, two_line_layout, fill_rules):
        segs = two_line_layout.segments_on_layer("metal3")
        gap_lo = min(s.rect.yhi for s in segs)
        feature = FillFeature("metal3", Rect(20000, gap_lo + 1000, 20500, gap_lo + 1500))
        report = timing_report(two_line_layout, "metal3", [feature], fill_rules)
        assert report.nets["n0"].fill_increment_ps > 0
        assert report.nets["n1"].fill_increment_ps > 0
        assert report.total_increment_ps == pytest.approx(
            report.nets["n0"].fill_increment_ps + report.nets["n1"].fill_increment_ps
        )

    def test_weighted_vs_unweighted(self, two_line_layout, fill_rules):
        segs = two_line_layout.segments_on_layer("metal3")
        gap_lo = min(s.rect.yhi for s in segs)
        feature = FillFeature("metal3", Rect(20000, gap_lo + 1000, 20500, gap_lo + 1500))
        weighted = timing_report(two_line_layout, "metal3", [feature], fill_rules, weighted=True)
        plain = timing_report(two_line_layout, "metal3", [feature], fill_rules, weighted=False)
        # single-sink nets: identical
        assert weighted.total_increment_ps == pytest.approx(plain.total_increment_ps)

    def test_worst_net_and_relative_increase(self, two_line_layout, fill_rules):
        segs = two_line_layout.segments_on_layer("metal3")
        gap_lo = min(s.rect.yhi for s in segs)
        feature = FillFeature("metal3", Rect(20000, gap_lo + 1000, 20500, gap_lo + 1500))
        report = timing_report(two_line_layout, "metal3", [feature], fill_rules)
        assert report.worst_net is not None
        name, value = report.worst_relative_increase()
        assert name in ("n0", "n1")
        assert value > 0
        assert report.nets[name].relative_increase == pytest.approx(value)

    def test_net_timing_worst_sink(self, branched_layout, fill_rules):
        report = timing_report(branched_layout, "metal3", [], fill_rules)
        timing = report.nets["n1"]
        assert timing.worst_sink_ps == max(timing.sink_delays_ps.values())
