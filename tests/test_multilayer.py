"""Multi-layer fill orchestration."""

import pytest

from repro.layout import validate_fill
from repro.pilfill import EngineConfig, run_all_layers
from repro.tech import DensityRules


@pytest.fixture
def config(fill_rules):
    return EngineConfig(
        fill_rules=fill_rules,
        density_rules=DensityRules(window_size=16000, r=2, max_density=0.6),
        method="greedy",
        backend="scipy",
    )


class TestRunAllLayers:
    def test_covers_used_layers(self, small_generated_layout, config):
        result = run_all_layers(small_generated_layout, config)
        assert set(result.per_layer) == set(small_generated_layout.used_layers)
        assert set(result.per_layer_impact) == set(result.per_layer)

    def test_totals_are_sums(self, small_generated_layout, config):
        result = run_all_layers(small_generated_layout, config)
        assert result.total_features == sum(
            r.total_features for r in result.per_layer.values()
        )
        assert result.weighted_total_ps == pytest.approx(
            sum(i.weighted_total_ps for i in result.per_layer_impact.values())
        )
        assert result.total_ps == pytest.approx(
            sum(i.total_ps for i in result.per_layer_impact.values())
        )

    def test_features_on_correct_layers(self, small_generated_layout, config):
        result = run_all_layers(small_generated_layout, config)
        for layer, run in result.per_layer.items():
            assert all(f.layer == layer for f in run.features)

    def test_layer_subset(self, small_generated_layout, config):
        result = run_all_layers(small_generated_layout, config, layers=["metal3"])
        assert set(result.per_layer) == {"metal3"}

    def test_empty_layer_skipped(self, small_generated_layout, config):
        result = run_all_layers(small_generated_layout, config, layers=["metal5"])
        assert result.per_layer == {}
        assert result.total_features == 0

    def test_combined_fill_drc_clean(self, small_generated_layout, config, fill_rules):
        result = run_all_layers(small_generated_layout, config)
        for feature in result.features:
            small_generated_layout.add_fill(feature)
        try:
            assert validate_fill(small_generated_layout, fill_rules).ok
        finally:
            small_generated_layout.fills.clear()

    def test_per_net_aggregation(self, small_generated_layout, config):
        result = run_all_layers(small_generated_layout, config)
        per_net = result.per_net_weighted_ps
        assert sum(per_net.values()) == pytest.approx(result.weighted_total_ps)

    def test_input_not_mutated(self, small_generated_layout, config):
        before = small_generated_layout.stats()
        run_all_layers(small_generated_layout, config)
        assert small_generated_layout.stats() == before
