"""Atomic artifact writes: content fidelity, crash safety, no tmp litter.

The contract every JSON artifact writer (bench trajectories, run
reports, lint cache, solution store) leans on: a reader observes either
the previous complete file or the new complete file — never a torn
prefix — and a failed write leaves the target exactly as it was.
"""

from __future__ import annotations

import json

import pytest

from repro.io.atomic import atomic_write_json, atomic_write_text


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "artifact.txt"
        atomic_write_text(target, "deep")
        assert target.read_text() == "deep"

    def test_overwrites_existing_file(self, tmp_path):
        target = tmp_path / "artifact.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temporary_litter(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "x")
        atomic_write_text(target, "y")
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.txt"]

    def test_failed_write_leaves_target_untouched(self, tmp_path, monkeypatch):
        target = tmp_path / "artifact.txt"
        target.write_text("previous complete file")

        def torn_replace(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr("repro.io.atomic.os.replace", torn_replace)
        with pytest.raises(OSError):
            atomic_write_text(target, "half-writ")
        assert target.read_text() == "previous complete file"
        # The temporary was cleaned up on the way out.
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.txt"]


class TestAtomicWriteJson:
    def test_round_trips_payload(self, tmp_path):
        target = tmp_path / "artifact.json"
        payload = {"b": [1, 2], "a": {"nested": True}, "f": 0.1}
        atomic_write_json(target, payload)
        assert json.loads(target.read_text()) == payload

    def test_appends_trailing_newline(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_json(target, {"k": 1})
        assert target.read_text().endswith("}\n")

    def test_compact_and_sorted_modes(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_json(target, {"b": 1, "a": 2}, indent=None, sort_keys=True)
        assert target.read_text() == '{"a": 2, "b": 1}\n'
