"""Regression: the lint cache must key on the import-closure digest.

Pre-PR, a cache entry was keyed on single-file content + policy only, so
a finding explained by an *imported* module (worker reachability, and
now every X-family fact) survived edits to that module. These tests
build a tiny two-module package, lint it, edit the dependency, and
assert the dependent is re-linted — plus the flip side: a warm cache
must not pay for call-graph construction at all.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import LintPolicy, lint_paths
from repro.analysis.callgraph import CallGraph
from repro.analysis.modgraph import ModuleGraph

_POLICY = LintPolicy(taint_sink_functions=("fxpkg.sink.digest_key",))

_SRC_CLEAN = """def read_host(host: str) -> str:
    return host or "local"
"""

_SRC_TAINTED = """import os


def read_host(host: str) -> str:
    return os.environ.get("PILFILL_HOST", host)
"""

_SINK = """import hashlib

from fxpkg.src import read_host


def digest_key(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_key(host: str) -> str:
    return digest_key("payload:" + read_host(host))
"""


@pytest.fixture()
def pkg(tmp_path: Path) -> Path:
    root = tmp_path / "fxpkg"
    root.mkdir()
    (root / "__init__.py").write_text("", encoding="utf-8")
    (root / "src.py").write_text(_SRC_CLEAN, encoding="utf-8")
    (root / "sink.py").write_text(_SINK, encoding="utf-8")
    return root


def test_editing_a_dependency_relints_the_dependent(pkg: Path, tmp_path: Path) -> None:
    cache = tmp_path / "cache.json"
    clean = lint_paths([str(pkg)], policy=_POLICY, cache_path=cache)
    assert clean.findings == []
    warm = lint_paths([str(pkg)], policy=_POLICY, cache_path=cache)
    assert warm.cache_hits >= 3  # all files + the program section

    # Edit ONLY the dependency; sink.py's own bytes are unchanged.
    (pkg / "src.py").write_text(_SRC_TAINTED, encoding="utf-8")
    dirty = lint_paths([str(pkg)], policy=_POLICY, cache_path=cache)
    assert [f.rule_id for f in dirty.findings] == ["X101"]
    (finding,) = dirty.findings
    assert finding.path == str(pkg / "sink.py")

    # And back: restoring the dependency clears the finding again.
    (pkg / "src.py").write_text(_SRC_CLEAN, encoding="utf-8")
    assert lint_paths([str(pkg)], policy=_POLICY, cache_path=cache).findings == []


def test_closure_digest_changes_only_for_dependents(pkg: Path) -> None:
    graph = ModuleGraph(pkg.parent)
    before_sink = graph.closure_digest("fxpkg.sink")
    before_src = graph.closure_digest("fxpkg.src")
    (pkg / "src.py").write_text(_SRC_TAINTED, encoding="utf-8")
    graph2 = ModuleGraph(pkg.parent)
    assert graph2.closure_digest("fxpkg.sink") != before_sink
    assert graph2.closure_digest("fxpkg.src") != before_src
    # An unrelated module's closure is untouched.
    (pkg / "lone.py").write_text("VALUE = 1\n", encoding="utf-8")
    graph3 = ModuleGraph(pkg.parent)
    assert graph3.closure_digest("fxpkg.sink") == graph2.closure_digest("fxpkg.sink")


def test_dependents_of_inverts_the_closure(pkg: Path) -> None:
    graph = ModuleGraph(pkg.parent)
    dependents = graph.dependents_of(frozenset({"fxpkg.src"}))
    assert "fxpkg.sink" in dependents
    assert "fxpkg.src" in dependents


def test_warm_cache_never_builds_the_call_graph(
    pkg: Path, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
) -> None:
    cache = tmp_path / "cache.json"
    lint_paths([str(pkg)], policy=_POLICY, cache_path=cache)

    def boom(self: CallGraph, units: dict) -> None:
        raise AssertionError("call graph built on a fully warm cache")

    monkeypatch.setattr(CallGraph, "__init__", boom)
    warm = lint_paths([str(pkg)], policy=_POLICY, cache_path=cache)
    assert warm.findings == []
    assert warm.cache_hits >= 3


def test_cache_version_mismatch_discards_entries(pkg: Path, tmp_path: Path) -> None:
    cache = tmp_path / "cache.json"
    lint_paths([str(pkg)], policy=_POLICY, cache_path=cache)
    text = cache.read_text(encoding="utf-8")
    cache.write_text(text.replace('"version": 2', '"version": 1'), encoding="utf-8")
    assert lint_paths([str(pkg)], policy=_POLICY, cache_path=cache).cache_hits == 0
