"""The impact evaluator and the end-to-end engine."""

import pytest

from repro.cap import exact_column_cap
from repro.errors import FillError
from repro.geometry import Rect
from repro.layout import FillFeature, validate_fill
from repro.layout.rctree import OHM_FF_TO_PS
from repro.pilfill import (
    EngineConfig,
    METHODS,
    PILFillEngine,
    SlackColumnDef,
    evaluate_impact,
)
from repro.dissection import DensityMap, FixedDissection
from repro.tech import DensityRules
from tests.conftest import build_two_line_layout
from tests.invariants import assert_fill_invariants


class TestEvaluator:
    def test_no_features_zero_impact(self, two_line_layout, fill_rules):
        report = evaluate_impact(two_line_layout, "metal3", [], fill_rules)
        assert report.total_ps == 0.0
        assert report.weighted_total_ps == 0.0

    def test_single_feature_hand_computed(self, two_line_layout, fill_rules, stack):
        """One feature centered between the two lines: ΔC from Eq. 5 with
        m = 1, charged to both lines at their column-position resistance."""
        # The two trunks sit at gap 4 um; place a feature centered in the gap.
        segs = two_line_layout.segments_on_layer("metal3")
        gap_lo = min(s.rect.yhi for s in segs)
        gap_hi = max(s.rect.ylo for s in segs)
        assert gap_hi - gap_lo == 4000
        x0 = 20000
        y0 = (gap_lo + gap_hi) // 2 - fill_rules.fill_size // 2
        feature = FillFeature(
            "metal3", Rect(x0, y0, x0 + fill_rules.fill_size, y0 + fill_rules.fill_size)
        )
        report = evaluate_impact(two_line_layout, "metal3", [feature], fill_rules)

        layer = stack.layer("metal3")
        delta_c = exact_column_cap(layer.eps_r, layer.thickness_um, 4.0, 1, 0.5)
        center_x = x0 + fill_rules.fill_size // 2
        expected = 0.0
        for name in ("n0", "n1"):
            line = two_line_layout.tree(name).lines[0]
            expected += line.resistance_at(center_x) * delta_c * OHM_FF_TO_PS
        assert report.total_ps == pytest.approx(expected)
        assert report.weighted_total_ps == pytest.approx(expected)  # 1 sink each
        assert report.features_scored == 1
        assert report.features_free == 0

    def test_stacked_features_nonlinear(self, two_line_layout, fill_rules, stack):
        """Two features in the same column must cost more than 2× one
        feature (convexity of Eq. 5) — the evaluator must recombine them."""
        segs = two_line_layout.segments_on_layer("metal3")
        gap_lo = min(s.rect.yhi for s in segs)
        x0 = 20000
        pitch = fill_rules.pitch
        feats = [
            FillFeature("metal3", Rect(x0, gap_lo + 500 + i * pitch,
                                       x0 + 500, gap_lo + 1000 + i * pitch))
            for i in range(2)
        ]
        one = evaluate_impact(two_line_layout, "metal3", feats[:1], fill_rules)
        two = evaluate_impact(two_line_layout, "metal3", feats, fill_rules)
        assert two.total_ps > 2 * one.total_ps

    def test_feature_outside_gap_free(self, two_line_layout, fill_rules):
        """A feature far below both lines (boundary block) has no modeled
        coupling impact."""
        feature = FillFeature("metal3", Rect(20000, 1000, 20500, 1500))
        report = evaluate_impact(two_line_layout, "metal3", [feature], fill_rules)
        assert report.total_ps == 0.0
        assert report.features_free == 1

    def test_feature_on_active_rejected(self, two_line_layout, fill_rules):
        seg_rect = two_line_layout.segments_on_layer("metal3")[0].rect
        bad = FillFeature("metal3", Rect(seg_rect.xlo + 100, seg_rect.ylo,
                                         seg_rect.xlo + 600, seg_rect.ylo + 500))
        with pytest.raises(FillError, match="active"):
            evaluate_impact(two_line_layout, "metal3", [bad], fill_rules)

    def test_per_net_breakdown_sums_to_total(self, two_line_layout, fill_rules):
        segs = two_line_layout.segments_on_layer("metal3")
        gap_lo = min(s.rect.yhi for s in segs)
        feats = [
            FillFeature("metal3", Rect(x, gap_lo + 1000, x + 500, gap_lo + 1500))
            for x in (10000, 20000, 30000)
        ]
        report = evaluate_impact(two_line_layout, "metal3", feats, fill_rules)
        assert sum(report.per_net_ps.values()) == pytest.approx(report.total_ps)
        assert sum(report.per_net_weighted_ps.values()) == pytest.approx(
            report.weighted_total_ps
        )

    def test_other_layer_features_ignored(self, two_line_layout, fill_rules):
        feature = FillFeature("metal5", Rect(20000, 1000, 20500, 1500))
        report = evaluate_impact(two_line_layout, "metal3", [feature], fill_rules)
        assert report.features_scored == 0

    def test_downstream_positions_cost_more(self, two_line_layout, fill_rules):
        """Same column geometry, farther from the driver → larger impact
        (entry resistance grows)."""
        segs = two_line_layout.segments_on_layer("metal3")
        gap_lo = min(s.rect.yhi for s in segs)
        near = FillFeature("metal3", Rect(5000, gap_lo + 1000, 5500, gap_lo + 1500))
        far = FillFeature("metal3", Rect(35000, gap_lo + 1000, 35500, gap_lo + 1500))
        near_r = evaluate_impact(two_line_layout, "metal3", [near], fill_rules)
        far_r = evaluate_impact(two_line_layout, "metal3", [far], fill_rules)
        assert far_r.total_ps > near_r.total_ps


class TestEngine:
    def make_config(self, fill_rules, method="greedy", **kwargs):
        return EngineConfig(
            fill_rules=fill_rules,
            density_rules=DensityRules(window_size=16000, r=2, max_density=0.6),
            method=method,
            **kwargs,
        )

    def test_unknown_method_rejected(self, fill_rules):
        with pytest.raises(FillError):
            self.make_config(fill_rules, method="anneal")

    def test_bad_margin_rejected(self, fill_rules):
        with pytest.raises(FillError):
            self.make_config(fill_rules, capacity_margin=0.0)

    def test_bad_target_rejected(self, fill_rules):
        with pytest.raises(FillError):
            self.make_config(fill_rules, target_density="median")

    def test_unknown_layer_rejected(self, small_generated_layout, fill_rules):
        with pytest.raises(FillError):
            PILFillEngine(small_generated_layout, "poly", self.make_config(fill_rules))

    def test_run_places_requested_budget(self, small_generated_layout, fill_rules):
        engine = PILFillEngine(
            small_generated_layout, "metal3", self.make_config(fill_rules)
        )
        result = engine.run()
        assert result.total_features == sum(result.effective_budget.values())
        assert result.shortfall >= 0
        assert result.clean
        assert_fill_invariants(result, engine.prepared)

    def test_fill_is_drc_clean(self, small_generated_layout, fill_rules):
        engine = PILFillEngine(
            small_generated_layout, "metal3", self.make_config(fill_rules)
        )
        result = engine.run()
        assert result.features
        for feature in result.features:
            small_generated_layout.add_fill(feature)
        try:
            assert validate_fill(small_generated_layout, fill_rules).ok
        finally:
            small_generated_layout.fills.clear()

    def test_engine_does_not_mutate_layout(self, small_generated_layout, fill_rules):
        before = small_generated_layout.stats()
        PILFillEngine(
            small_generated_layout, "metal3", self.make_config(fill_rules)
        ).run()
        assert small_generated_layout.stats() == before

    @pytest.mark.parametrize("method", METHODS)
    def test_all_methods_place_identical_counts(
        self, small_generated_layout, fill_rules, method
    ):
        """Identical per-tile budgets → identical density-control quality."""
        base = PILFillEngine(
            small_generated_layout, "metal3", self.make_config(fill_rules)
        ).run()
        engine = PILFillEngine(
            small_generated_layout, "metal3", self.make_config(fill_rules, method=method)
        )
        result = engine.run(budget=base.requested_budget)
        assert result.effective_budget == base.effective_budget
        assert_fill_invariants(result, engine.prepared)

    def test_method_ordering_on_small_case(self, small_generated_layout, fill_rules):
        """ILP-II must beat Normal; the DP oracle must match ILP-II's
        model objective."""
        budget = None
        impacts = {}
        objectives = {}
        for method in ("normal", "ilp2", "dp"):
            engine = PILFillEngine(
                small_generated_layout, "metal3",
                self.make_config(fill_rules, method=method, backend="scipy"),
            )
            result = engine.run(budget=budget)
            if budget is None:
                budget = result.requested_budget
            objectives[method] = result.model_objective_ps
            impacts[method] = evaluate_impact(
                small_generated_layout, "metal3", result.features, fill_rules
            ).weighted_total_ps
        assert impacts["ilp2"] <= impacts["normal"]
        # DP is exactly optimal; ILP-II matches within the MILP solver's
        # relative gap tolerance (HiGHS defaults to ~1e-4). Different
        # tie-breaks also mean evaluated impact is only approximately equal.
        assert objectives["dp"] <= objectives["ilp2"] + 1e-12
        assert objectives["dp"] == pytest.approx(objectives["ilp2"], rel=1e-3)
        assert impacts["dp"] == pytest.approx(impacts["ilp2"], rel=0.05)

    def test_normal_seed_changes_placement(self, small_generated_layout, fill_rules):
        a = PILFillEngine(
            small_generated_layout, "metal3",
            self.make_config(fill_rules, method="normal", seed=1),
        ).run()
        b = PILFillEngine(
            small_generated_layout, "metal3",
            self.make_config(fill_rules, method="normal", seed=2),
        ).run(budget=a.requested_budget)
        ra = {f.rect for f in a.features}
        rb = {f.rect for f in b.features}
        assert ra != rb

    def test_montecarlo_budget_mode(self, small_generated_layout, fill_rules):
        engine = PILFillEngine(
            small_generated_layout, "metal3",
            self.make_config(fill_rules, budget_mode="montecarlo"),
        )
        result = engine.run()
        assert result.total_features > 0

    def test_density_improves_post_fill(self, small_generated_layout, fill_rules):
        cfg = self.make_config(fill_rules)
        engine = PILFillEngine(small_generated_layout, "metal3", cfg)
        result = engine.run()
        dissection = FixedDissection(small_generated_layout.die, cfg.density_rules)
        before = DensityMap.from_layout(
            dissection, small_generated_layout, "metal3"
        ).stats()
        for f in result.features:
            small_generated_layout.add_fill(f)
        try:
            after = DensityMap.from_layout(
                dissection, small_generated_layout, "metal3", include_fill=True
            ).stats()
        finally:
            small_generated_layout.fills.clear()
        assert after.min_density > before.min_density
        assert after.variation < before.variation

    def test_phase_seconds_recorded(self, small_generated_layout, fill_rules):
        result = PILFillEngine(
            small_generated_layout, "metal3", self.make_config(fill_rules)
        ).run()
        assert set(result.phase_seconds) == {
            "setup", "scanline", "density", "costs", "budget", "solve"
        }
        assert all(v >= 0 for v in result.phase_seconds.values())
        # Per-tile breakdown: one entry per solved tile, summing to no more
        # than the solve phase's wall clock (serial path).
        assert set(result.tile_seconds) == set(result.tile_solutions)
        assert all(v >= 0 for v in result.tile_seconds.values())

    def test_column_def_ablation_runs(self, small_generated_layout, fill_rules):
        for definition in SlackColumnDef:
            engine = PILFillEngine(
                small_generated_layout, "metal3",
                self.make_config(fill_rules, column_def=definition),
            )
            result = engine.run()
            assert result.total_features >= 0
