"""CLI: ablation, report, and lint subcommands, plus render helpers not
covered elsewhere."""

import json
import subprocess

import pytest

from repro.cli import build_parser, main


class TestAblationCommand:
    def test_capmodel(self, capsys):
        assert main(["ablation", "capmodel"]) == 0
        out = capsys.readouterr().out
        assert "Capacitance models" in out
        assert "exact/lin" in out

    def test_unknown_study_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "nope"])

    def test_parser_accepts_testcase(self):
        args = build_parser().parse_args(["ablation", "columns", "--testcase", "T2"])
        assert args.name == "columns" and args.testcase == "T2"


class TestReportCommand:
    def test_quick_report(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert main(["report", "--quick", "-o", str(out)]) == 0
        text = out.read_text()
        assert "# PIL-Fill reproduction report" in text
        assert "Table 1" in text and "Table 2" in text
        assert "T1/32/2" in text
        # quick mode skips ablations
        assert "Ablation A" not in text


class TestLintCommand:
    @staticmethod
    def _write_pkg(root):
        pkg = root / "clipkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "mod.py").write_text("VALUE = 1\n", encoding="utf-8")
        return pkg

    def test_sarif_format_prints_a_valid_document(self, tmp_path, capsys):
        pkg = self._write_pkg(tmp_path)
        assert main(["lint", str(pkg), "--no-cache", "--format", "sarif"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"] == []

    def test_sarif_out_writes_alongside_text(self, tmp_path, capsys):
        pkg = self._write_pkg(tmp_path)
        sarif_path = tmp_path / "lint.sarif"
        assert main(
            ["lint", str(pkg), "--no-cache", "--sarif-out", str(sarif_path)]
        ) == 0
        assert "0 findings" in capsys.readouterr().out
        document = json.loads(sarif_path.read_text(encoding="utf-8"))
        assert document["runs"][0]["tool"]["driver"]["name"] == "pilfill-lint"

    def test_jobs_flag_accepted(self, tmp_path, capsys):
        pkg = self._write_pkg(tmp_path)
        assert main(["lint", str(pkg), "--no-cache", "--jobs", "4"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_changed_lints_only_dirty_closure(self, tmp_path, capsys, monkeypatch):
        pkg = self._write_pkg(tmp_path)
        (pkg / "dep.py").write_text("BASE = 1\n", encoding="utf-8")
        (pkg / "user.py").write_text(
            "from clipkg.dep import BASE\n\nTOTAL = BASE + 1\n", encoding="utf-8"
        )

        def git(*args):
            subprocess.run(
                ["git", "-c", "user.name=t", "-c", "user.email=t@example.com", *args],
                cwd=tmp_path,
                check=True,
                capture_output=True,
            )

        git("init", "-q")
        git("add", "-A")
        git("commit", "-qm", "seed")
        monkeypatch.chdir(tmp_path)

        # Clean tree: nothing to lint.
        assert main(["lint", str(pkg), "--no-cache", "--changed"]) == 0
        assert "0 file(s)" in capsys.readouterr().out

        # Touch the dependency: it AND its dependent are selected.
        (pkg / "dep.py").write_text("BASE = 2\n", encoding="utf-8")
        assert main(["lint", str(pkg), "--no-cache", "--changed"]) == 0
        assert "2 file(s)" in capsys.readouterr().out

    def test_changed_outside_git_falls_back_to_full_lint(
        self, tmp_path, capsys, monkeypatch
    ):
        pkg = self._write_pkg(tmp_path)
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "nonexistent-gitdir"))
        assert main(["lint", str(pkg), "--no-cache", "--changed"]) == 0
        assert "2 file(s)" in capsys.readouterr().out


class TestQuickstartCommand:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "weighted delay impact" in out


class TestVizRenderDensity:
    def test_render_density(self, small_generated_layout):
        from repro import viz
        from repro.dissection import DensityMap, FixedDissection
        from repro.tech import DensityRules

        dissection = FixedDissection(small_generated_layout.die, DensityRules(16000, 2))
        density = DensityMap.from_layout(dissection, small_generated_layout, "metal3")
        art = viz.render_density(density)
        lines = art.splitlines()
        assert len(lines) == dissection.ny
        assert all(len(line) == dissection.nx for line in lines)
        assert any(ch != " " for line in lines for ch in line)
