"""CLI: ablation and report subcommands, plus render helpers not covered
elsewhere."""

import pytest

from repro.cli import build_parser, main


class TestAblationCommand:
    def test_capmodel(self, capsys):
        assert main(["ablation", "capmodel"]) == 0
        out = capsys.readouterr().out
        assert "Capacitance models" in out
        assert "exact/lin" in out

    def test_unknown_study_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "nope"])

    def test_parser_accepts_testcase(self):
        args = build_parser().parse_args(["ablation", "columns", "--testcase", "T2"])
        assert args.name == "columns" and args.testcase == "T2"


class TestReportCommand:
    def test_quick_report(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert main(["report", "--quick", "-o", str(out)]) == 0
        text = out.read_text()
        assert "# PIL-Fill reproduction report" in text
        assert "Table 1" in text and "Table 2" in text
        assert "T1/32/2" in text
        # quick mode skips ablations
        assert "Ablation A" not in text


class TestQuickstartCommand:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "weighted delay impact" in out


class TestVizRenderDensity:
    def test_render_density(self, small_generated_layout):
        from repro import viz
        from repro.dissection import DensityMap, FixedDissection
        from repro.tech import DensityRules

        dissection = FixedDissection(small_generated_layout.die, DensityRules(16000, 2))
        density = DensityMap.from_layout(dissection, small_generated_layout, "metal3")
        art = viz.render_density(density)
        lines = art.splitlines()
        assert len(lines) == dissection.ny
        assert all(len(line) == dissection.nx for line in lines)
        assert any(ch != " " for line in lines for ch in line)
