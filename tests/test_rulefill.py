"""Rule-based fill baseline (ref [11]): rule scoring, selection, flow."""

import pytest

from repro.errors import FillError
from repro.layout import validate_fill
from repro.pilfill import evaluate_impact
from repro.rulefill import (
    CandidateRule,
    enumerate_candidates,
    representative_line_spacing_um,
    run_rule_fill,
    score_rule,
    select_rule,
)
from repro.tech import DensityRules

EPS_R, T = 3.9, 0.5


class TestCandidateRule:
    def test_max_pattern_density(self):
        rule = CandidateRule(buffer_distance=250, fill_size=500, fill_gap=500)
        assert rule.max_pattern_density == pytest.approx(0.25)

    def test_as_fill_rules(self):
        rule = CandidateRule(buffer_distance=250, fill_size=500, fill_gap=250)
        fr = rule.as_fill_rules()
        assert (fr.fill_size, fr.fill_gap, fr.buffer_distance) == (500, 250, 250)

    def test_enumerate_grid(self):
        candidates = enumerate_candidates(1000, sizes_um=(0.5,), gaps_um=(0.25, 0.5),
                                          buffers_um=(0.25,))
        assert len(candidates) == 2


class TestScoring:
    def test_larger_buffer_lower_cap(self):
        """Stine guideline (iv): larger buffer distance → lower impact."""
        small = score_rule(CandidateRule(250, 500, 250), EPS_R, T, 4.0, 1000, 0.1)
        big = score_rule(CandidateRule(1000, 500, 250), EPS_R, T, 4.0, 1000, 0.1)
        assert big.cap_increment_ff <= small.cap_increment_ff

    def test_wider_spacing_lower_cap(self):
        """Stine guideline (iii): more space between fill lines → fewer
        features in the gap → lower impact."""
        dense = score_rule(CandidateRule(250, 500, 250), EPS_R, T, 6.0, 1000, 0.1)
        sparse = score_rule(CandidateRule(250, 500, 1000), EPS_R, T, 6.0, 1000, 0.1)
        assert sparse.cap_increment_ff <= dense.cap_increment_ff

    def test_rule_that_cannot_fill_gap_scores_zero(self):
        score = score_rule(CandidateRule(2000, 500, 250), EPS_R, T, 4.0, 1000, 0.1)
        assert score.cap_increment_ff == 0.0

    def test_density_goal_flag(self):
        # 0.5/0.75 pitch -> 0.44 density
        ok = score_rule(CandidateRule(250, 500, 250), EPS_R, T, 4.0, 1000, 0.4)
        assert ok.meets_density_goal
        bad = score_rule(CandidateRule(250, 500, 250), EPS_R, T, 4.0, 1000, 0.5)
        assert not bad.meets_density_goal


class TestSelection:
    def test_selects_feasible_minimum_cap(self):
        candidates = [
            CandidateRule(250, 500, 250),    # dense, higher cap
            CandidateRule(1000, 500, 1000),  # sparse, lower cap, density 0.11
        ]
        selected = select_rule(EPS_R, T, 6.0, 1000, density_goal=0.3,
                               candidates=candidates)
        # Only the first meets a 0.3 goal.
        assert selected.rule is candidates[0]
        loose = select_rule(EPS_R, T, 6.0, 1000, density_goal=0.05,
                            candidates=candidates)
        assert loose.rule is candidates[1]  # lower cap wins once feasible

    def test_impossible_goal_raises(self):
        with pytest.raises(FillError, match="no candidate rule"):
            select_rule(EPS_R, T, 6.0, 1000, density_goal=0.99)

    def test_no_candidates_raises(self):
        with pytest.raises(FillError):
            select_rule(EPS_R, T, 6.0, 1000, density_goal=0.1, candidates=[])


class TestFlow:
    def test_representative_spacing(self, two_line_layout):
        spacing = representative_line_spacing_um(two_line_layout, "metal3")
        assert spacing == pytest.approx(4.0)

    def test_representative_spacing_no_pairs(self, stack):
        from repro.geometry import Point, Rect
        from repro.layout import Net, Pin, RoutedLayout, WireSegment

        layout = RoutedLayout("one", Rect(0, 0, 20000, 20000), stack)
        net = Net("n")
        net.add_pin(Pin("d", Point(1000, 10000), "metal3", is_driver=True))
        net.add_pin(Pin("s", Point(19000, 10000), "metal3", load_cap_ff=1))
        net.add_segment(WireSegment("n", 0, "metal3", Point(1000, 10000),
                                    Point(19000, 10000), 400))
        layout.add_net(net)
        assert representative_line_spacing_um(layout, "metal3") == 4.0  # default

    def test_run_rule_fill_end_to_end(self, small_generated_layout):
        result = run_rule_fill(
            small_generated_layout, "metal3",
            DensityRules(window_size=16000, r=2, max_density=0.6),
            density_goal=0.2,
        )
        assert result.total_features > 0
        assert result.selected.meets_density_goal
        # The input layout is left unmodified.
        assert small_generated_layout.fills == []
        # The placement is DRC-clean under the selected rule.
        rules = result.selected.rule.as_fill_rules()
        for f in result.features:
            small_generated_layout.add_fill(f)
        try:
            assert validate_fill(small_generated_layout, rules).ok
        finally:
            small_generated_layout.fills.clear()

    def test_rule_fill_worse_than_pilfill(self, small_generated_layout):
        """The paper's point: a context-blind rule cannot match
        slack-aware placement. Compare at (roughly) equal fill amounts."""
        from repro.pilfill import EngineConfig, PILFillEngine

        density_rules = DensityRules(window_size=16000, r=2, max_density=0.6)
        rule_result = run_rule_fill(
            small_generated_layout, "metal3", density_rules, density_goal=0.2
        )
        rule_impact = evaluate_impact(
            small_generated_layout, "metal3", rule_result.features,
            rule_result.selected.rule.as_fill_rules(),
        )
        cfg = EngineConfig(
            fill_rules=rule_result.selected.rule.as_fill_rules(),
            density_rules=density_rules,
            method="ilp2",
            backend="scipy",
        )
        pil = PILFillEngine(small_generated_layout, "metal3", cfg).run()
        pil_impact = evaluate_impact(
            small_generated_layout, "metal3", pil.features, cfg.fill_rules
        )
        assert pil_impact.weighted_total_ps <= rule_impact.weighted_total_ps + 1e-12
