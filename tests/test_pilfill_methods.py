"""Per-tile MDFC solvers: DP oracle, marginal greedy, paper Greedy,
ILP-I, ILP-II — optimality relations and budget conservation."""

import itertools

import pytest

from repro.errors import FillError
from repro.geometry import Rect
from repro.pilfill import (
    allocate_dp,
    allocate_marginal_greedy,
    allocation_cost,
    solve_tile_greedy,
    solve_tile_greedy_marginal,
    solve_tile_ilp1,
    solve_tile_ilp2,
)
from repro.pilfill.columns import ColumnNeighbor, SlackColumn
from repro.pilfill.costs import ColumnCosts


def brute_force(tables, budget):
    """Exhaustive optimum for tiny instances."""
    best = None
    ranges = [range(len(t)) for t in tables]
    for combo in itertools.product(*ranges):
        if sum(combo) != budget:
            continue
        cost = sum(t[n] for t, n in zip(tables, combo))
        if best is None or cost < best:
            best = cost
    return best


def convex_table(marginals):
    table = [0.0]
    for m in marginals:
        table.append(table[-1] + m)
    return tuple(table)


class TestAllocators:
    def test_marginal_greedy_hand_case(self):
        tables = [convex_table([1, 2, 3]), convex_table([2, 2, 2])]
        counts = allocate_marginal_greedy(tables, 4)
        assert sum(counts) == 4
        # cheapest marginals: 1,2,2,2 -> [2,2] or [1,3]? marginals taken: 1,2,2,2
        assert allocation_cost(tables, counts) == pytest.approx(7.0)

    @pytest.mark.parametrize("seed", range(10))
    def test_marginal_greedy_matches_brute_force_on_convex(self, seed):
        import random

        rng = random.Random(seed)
        tables = []
        for _ in range(4):
            k = rng.randint(0, 3)
            marginals = sorted(rng.uniform(0, 5) for _ in range(k))
            tables.append(convex_table(marginals))
        capacity = sum(len(t) - 1 for t in tables)
        for budget in range(capacity + 1):
            counts = allocate_marginal_greedy(tables, budget)
            assert sum(counts) == budget
            assert allocation_cost(tables, counts) == pytest.approx(
                brute_force(tables, budget)
            )

    @pytest.mark.parametrize("seed", range(10))
    def test_dp_matches_brute_force_even_nonconvex(self, seed):
        import random

        rng = random.Random(100 + seed)
        tables = []
        for _ in range(3):
            k = rng.randint(1, 3)
            values = [0.0] + [rng.uniform(0, 10) for _ in range(k)]
            tables.append(tuple(values))  # arbitrary, not convex
        capacity = sum(len(t) - 1 for t in tables)
        budget = rng.randint(0, capacity)
        counts = allocate_dp(tables, budget)
        assert sum(counts) == budget
        assert allocation_cost(tables, counts) == pytest.approx(
            brute_force(tables, budget)
        )

    def test_budget_over_capacity_raises(self):
        with pytest.raises(FillError):
            allocate_marginal_greedy([convex_table([1.0])], 2)
        with pytest.raises(FillError):
            allocate_dp([convex_table([1.0])], 2)

    def test_negative_budget_raises(self):
        with pytest.raises(FillError):
            allocate_marginal_greedy([], -1)

    def test_zero_budget(self):
        assert allocate_marginal_greedy([convex_table([1, 2])], 0) == [0]
        assert allocate_dp([convex_table([1, 2])], 0) == [0]

    def test_allocation_cost_validates(self):
        with pytest.raises(FillError):
            allocation_cost([convex_table([1.0])], [5])
        with pytest.raises(FillError):
            allocation_cost([convex_table([1.0])], [0, 0])


def make_costs(specs):
    """Build ColumnCosts from (exact_marginals, linear_per_feature) pairs.

    Site rects are placeholders; only capacities matter to the solvers.
    """
    out = []
    for i, (exact_marginals, lin) in enumerate(specs):
        cap = len(exact_marginals)
        sites = tuple(
            Rect(i * 1000, n * 1000, i * 1000 + 500, n * 1000 + 500) for n in range(cap)
        )
        neighbor = ColumnNeighbor(net="n", line_index=0, sinks=1, resistance_ohm=1.0)
        col = SlackColumn(
            layer="metal3", tile=(0, 0), col=i, sites=sites,
            gap_um=4.0, below=neighbor, above=neighbor,
        )
        exact = convex_table(exact_marginals)
        linear = tuple(lin * n for n in range(cap + 1))
        out.append(ColumnCosts(col, exact, linear))
    return out


class TestTileSolvers:
    SPECS = [
        ([1.0, 2.0, 4.0], 1.0),   # cheap first feature, costly later
        ([0.5, 3.0], 0.6),        # cheapest single feature
        ([2.0, 2.5, 3.0, 3.5], 2.0),
        ([10.0], 9.0),            # expensive singleton
    ]

    def test_ilp2_matches_dp_optimum(self):
        costs = make_costs(self.SPECS)
        tables = [c.exact for c in costs]
        for budget in (1, 3, 5, 8):
            sol = solve_tile_ilp2(costs, budget, backend="bundled")
            assert sum(sol.counts) == budget
            dp = allocate_dp(tables, budget)
            assert allocation_cost(tables, sol.counts) == pytest.approx(
                allocation_cost(tables, dp)
            )

    def test_ilp2_scipy_backend_agrees(self):
        costs = make_costs(self.SPECS)
        a = solve_tile_ilp2(costs, 4, backend="bundled")
        b = solve_tile_ilp2(costs, 4, backend="scipy")
        assert a.model_objective_ps == pytest.approx(b.model_objective_ps)

    def test_greedy_marginal_equals_ilp2(self):
        costs = make_costs(self.SPECS)
        for budget in (2, 5, 7):
            ilp = solve_tile_ilp2(costs, budget, backend="bundled")
            gm = solve_tile_greedy_marginal(costs, budget)
            assert gm.model_objective_ps == pytest.approx(ilp.model_objective_ps)

    def test_paper_greedy_fills_whole_columns(self):
        costs = make_costs(self.SPECS)
        sol = solve_tile_greedy(costs, 5)
        assert sum(sol.counts) == 5
        # Whole-column order by exact[cap]: col1 (3.5), col0 (7.0), ...
        # budget 5 -> col1 fully (2), col0 gets 3.
        assert sol.counts[1] == 2
        assert sol.counts[0] == 3

    def test_paper_greedy_never_better_than_ilp2(self):
        costs = make_costs(self.SPECS)
        tables = [c.exact for c in costs]
        for budget in range(1, 9):
            greedy = solve_tile_greedy(costs, budget)
            ilp = solve_tile_ilp2(costs, budget, backend="bundled")
            g_cost = allocation_cost(tables, greedy.counts)
            assert g_cost >= ilp.model_objective_ps - 1e-9

    def test_ilp1_optimal_under_linear_model(self):
        costs = make_costs(self.SPECS)
        for budget in (2, 4, 6):
            sol = solve_tile_ilp1(costs, budget, weighted=False, backend="bundled")
            assert sum(sol.counts) == budget
            lin_tables = [c.linear for c in costs]
            dp = allocate_dp(lin_tables, budget)
            assert allocation_cost(lin_tables, sol.counts) == pytest.approx(
                allocation_cost(lin_tables, dp)
            )

    def test_ilp1_can_be_suboptimal_under_exact_model(self):
        # Linear costs that rank columns opposite to their exact costs.
        specs = [
            ([1.0, 8.0, 27.0], 0.5),   # looks cheapest linearly, explodes
            ([2.0, 2.1, 2.2], 2.0),
        ]
        costs = make_costs(specs)
        tables = [c.exact for c in costs]
        ilp1 = solve_tile_ilp1(costs, 3, weighted=False, backend="bundled")
        ilp2 = solve_tile_ilp2(costs, 3, backend="bundled")
        assert allocation_cost(tables, ilp1.counts) > allocation_cost(tables, ilp2.counts)

    def test_zero_budget_all_methods(self):
        costs = make_costs(self.SPECS)
        for solver in (
            lambda: solve_tile_ilp1(costs, 0, weighted=True),
            lambda: solve_tile_ilp2(costs, 0),
            lambda: solve_tile_greedy(costs, 0),
            lambda: solve_tile_greedy_marginal(costs, 0),
        ):
            sol = solver()
            assert sol.counts == [0, 0, 0, 0]
            assert sol.model_objective_ps == 0.0

    def test_budget_over_capacity_raises(self):
        costs = make_costs(self.SPECS)
        capacity = sum(c.capacity for c in costs)
        with pytest.raises(FillError):
            solve_tile_ilp2(costs, capacity + 1)
        with pytest.raises(FillError):
            solve_tile_greedy(costs, capacity + 1)
        with pytest.raises(FillError):
            solve_tile_ilp1(costs, capacity + 1, weighted=True)

    def test_free_columns_preferred(self):
        """Columns without both neighbors cost nothing and absorb budget."""
        neighbor = ColumnNeighbor(net="n", line_index=0, sinks=1, resistance_ohm=1.0)
        free_sites = tuple(Rect(0, n * 1000, 500, n * 1000 + 500) for n in range(3))
        free_col = SlackColumn(
            layer="metal3", tile=(0, 0), col=0, sites=free_sites,
            gap_um=None, below=neighbor, above=None,
        )
        zero = tuple(0.0 for _ in range(4))
        free = ColumnCosts(free_col, zero, zero)
        paid = make_costs([([5.0, 6.0], 5.0)])[0]
        for solver in (
            lambda c, b: solve_tile_ilp2(c, b, backend="bundled"),
            solve_tile_greedy,
            solve_tile_greedy_marginal,
        ):
            sol = solver([free, paid], 3)
            assert sol.counts[0] == 3
            assert sol.model_objective_ps == pytest.approx(0.0)
