"""Streaming DEF-lite ingest: equivalence, banding, memory, error paths.

The contract under test (see :mod:`repro.io.deflite` and
:func:`repro.pilfill.prepare.prepare_streaming`): consuming a DEF-lite
source net-by-net must be *indistinguishable* from materializing it —
same layout digest, same :meth:`PreparedInstance.digest`, same engine
placements across every dispatch backend — while holding only one net
resident. Malformed input must fail loud with the offending line number
from both readers.
"""

from __future__ import annotations

import io
import tracemalloc

import pytest

from repro.errors import FillError, LayoutError, ParseError
from repro.io.deflite import (
    DefWindowStream,
    iter_def_windows,
    layout_digest,
    net_ylo,
    parse_def,
    parse_def_streaming,
    write_def,
)
from repro.pilfill import EngineConfig, PILFillEngine, prepare, prepare_streaming
from repro.synth import (
    default_fill_rules,
    density_rules_for,
    edit_window,
    generate_layout,
    iter_banded_def_lines,
    make_t1,
    make_t2,
    t1_spec,
    t3_spec,
)

LAYER = "metal3"


@pytest.fixture(scope="module")
def t1_text(stack):
    return write_def(make_t1(stack))


@pytest.fixture(scope="module")
def banded_t1_lines(stack):
    return list(iter_banded_def_lines(t1_spec(), stack))


@pytest.fixture(scope="module")
def t1_rules(stack):
    return default_fill_rules(stack), density_rules_for(32, 2, stack)


@pytest.fixture(scope="module")
def mat_prep(stack, t1_text, t1_rules):
    fill_rules, density_rules = t1_rules
    return prepare(parse_def(t1_text, stack), LAYER, fill_rules, density_rules)


@pytest.fixture(scope="module")
def stream_prep(stack, t1_text, t1_rules):
    fill_rules, density_rules = t1_rules
    return prepare_streaming(t1_text, stack, LAYER, fill_rules, density_rules)


class TestStreamingLayoutEquivalence:
    def test_t1_streaming_equals_materialized(self, stack, t1_text):
        streamed = parse_def_streaming(io.StringIO(t1_text), stack)
        assert layout_digest(streamed) == layout_digest(parse_def(t1_text, stack))

    def test_t2_streaming_equals_materialized(self, stack):
        text = write_def(make_t2(stack))
        streamed = parse_def_streaming(iter(text.splitlines()), stack)
        assert layout_digest(streamed) == layout_digest(parse_def(text, stack))

    def test_eco_edited_layout_roundtrips_identically(self, stack):
        layout = make_t1(stack)
        edited, _summary = edit_window(layout, layout.die, seed=7)
        text = write_def(edited)
        streamed = parse_def_streaming(io.StringIO(text), stack)
        assert layout_digest(streamed) == layout_digest(parse_def(text, stack))

    def test_shell_layout_has_die_but_no_nets(self, stack, t1_text):
        shell = parse_def_streaming(t1_text, stack, keep_nets=False)
        full = parse_def(t1_text, stack)
        assert shell.die == full.die
        assert shell.name == full.name
        assert not shell.nets

    def test_bounded_memory_on_multiwindow_input(self, stack):
        # A chip-scale slice: many nets spread over many bands. The
        # text and its split lines are materialized *outside* both
        # measured regions, so the peaks compare resident parse state
        # only: full layout vs one net at a time.
        layout = generate_layout(t3_spec(seed=3, n_nets=250), stack)
        text = write_def(layout)
        lines = text.splitlines()

        tracemalloc.start()
        parse_def(text, stack)
        mat_peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

        tracemalloc.start()
        parse_def_streaming(iter(lines), stack, keep_nets=False)
        stream_peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

        assert stream_peak < 0.5 * mat_peak, (stream_peak, mat_peak)


class TestPreparedDigestEquivalence:
    def test_streaming_prepare_digest_equals_materialized(self, mat_prep, stream_prep):
        assert stream_prep.digest() == mat_prep.digest()

    def test_banded_prepare_digest_equals_materialized(
        self, stack, banded_t1_lines, t1_rules
    ):
        fill_rules, density_rules = t1_rules
        text = "\n".join(banded_t1_lines) + "\n"
        banded = prepare_streaming(
            iter(banded_t1_lines), stack, LAYER, fill_rules, density_rules,
            banded=True,
        )
        reference = prepare(parse_def(text, stack), LAYER, fill_rules, density_rules)
        assert banded.digest() == reference.digest()

    def test_banded_rejects_unsorted_input(self, stack, t1_text, t1_rules):
        # write_def emits nets in insertion order, not band order; the
        # banded contract must fail loud, never emit columns a late net
        # could have invalidated.
        fill_rules, density_rules = t1_rules
        with pytest.raises(FillError, match="band-sorted"):
            prepare_streaming(
                t1_text, stack, LAYER, fill_rules, density_rules, banded=True
            )

    def test_diearea_must_precede_nets(self, stack, t1_text, t1_rules):
        fill_rules, density_rules = t1_rules
        lines = t1_text.splitlines()
        die_line = next(ln for ln in lines if ln.startswith("DIEAREA"))
        lines.remove(die_line)
        lines.insert(lines.index("END NETS") + 1, die_line)
        with pytest.raises(ParseError, match="DIEAREA must precede NETS"):
            prepare_streaming(
                iter(lines), stack, LAYER, fill_rules, density_rules
            )


class TestStreamedEngineRuns:
    def test_features_bit_identical_across_backends(
        self, stack, t1_rules, mat_prep, stream_prep
    ):
        fill_rules, density_rules = t1_rules
        results = {}
        for label, workers, backend in (
            ("materialized", 1, "thread"),
            ("serial", 1, "thread"),
            ("thread", 2, "thread"),
            ("process", 2, "process"),
        ):
            prep = mat_prep if label == "materialized" else stream_prep
            config = EngineConfig(
                fill_rules=fill_rules, density_rules=density_rules,
                method="greedy", backend="scipy", seed=0,
                workers=workers, parallel_backend=backend,
            )
            engine = PILFillEngine(prep.layout, LAYER, config, prepared=prep)
            results[label] = engine.run().features
        assert results["serial"] == results["materialized"]
        assert results["thread"] == results["serial"]
        assert results["process"] == results["serial"]


def _banded_def(stack, ys, die_hi=100000):
    """A DEF-lite text with one horizontal net per entry of ``ys``.

    Each net ``n<i>`` is a 400-wide wire centered at ``ys[i]``, so its
    lowest geometry (``net_ylo``) is ``ys[i] - 200`` — tests pick the
    center to land ``net_ylo`` exactly where they want it.
    """
    lines = [
        "VERSION 1.0 ;",
        "DESIGN banded ;",
        f"UNITS DISTANCE MICRONS {stack.dbu_per_micron} ;",
        f"DIEAREA ( 0 0 ) ( {die_hi} {die_hi} ) ;",
        f"NETS {len(ys)} ;",
    ]
    for i, y in enumerate(ys):
        lines += [
            f"- n{i}",
            f"  + PIN drv ( 1000 {y} ) LAYER metal3 DRIVER RES 100",
            f"  + PIN s0 ( 9000 {y} ) LAYER metal3 CAP 5",
            f"  + ROUTED metal3 ( 1000 {y} ) ( 9000 {y} ) WIDTH 400",
            ";",
        ]
    lines += ["END NETS", "FILLS 0 ;", "END FILLS", "END DESIGN"]
    return "\n".join(lines) + "\n"


class TestWindowStreaming:
    BAND = 32000

    def test_banded_input_streams_sorted_windows(self, stack, banded_t1_lines):
        stream = DefWindowStream(iter(banded_t1_lines), stack, self.BAND)
        seen: list[str] = []
        indices: list[int] = []
        for window in stream.windows():
            indices.append(window.index)
            for net in window.nets:
                seen.append(net.name)
                assert window.y_lo <= net_ylo(net) < window.y_hi
        assert stream.sorted_input
        assert indices == sorted(indices)
        reference = parse_def("\n".join(banded_t1_lines), stack)
        assert sorted(seen) == sorted(reference.nets)

    def test_unsorted_input_still_covers_every_net(self, stack, t1_text):
        names = [
            net.name
            for window in iter_def_windows(t1_text, stack, self.BAND)
            for net in window.nets
        ]
        reference = parse_def(t1_text, stack)
        assert sorted(names) == sorted(reference.nets)
        assert len(names) == len(reference.nets)

    def test_late_net_in_yielded_band_raises(self, stack):
        """A net landing in a band that was already yielded cannot be
        silently dropped into a window the consumer has seen: the stream
        must fail loud. (The old behavior flipped ``sorted_input`` and
        kept going — the already-emitted windows were wrong.)"""
        # n0 -> band 0; n1 -> band 2, which yields band 0 eagerly;
        # n2 -> band 0 again, below the yield watermark.
        text = _banded_def(stack, [1000, 70000, 2000])
        stream = DefWindowStream(io.StringIO(text), stack, self.BAND)
        windows = stream.windows()
        first = next(windows)
        assert first.index == 0
        with pytest.raises(FillError, match="already yielded"):
            list(windows)

    def test_out_of_order_above_watermark_buffers_exactly_once(self, stack):
        """Out-of-order input that never dips below the watermark is
        still legal: eager yielding stops, bands buffer, and EOF flushes
        each window exactly once in index order."""
        # n0 -> band 0; n1 -> band 2 (yields band 0); n2 -> band 1:
        # out of order but above the watermark.
        text = _banded_def(stack, [1000, 70000, 40000])
        stream = DefWindowStream(io.StringIO(text), stack, self.BAND)
        windows = list(stream.windows())
        assert not stream.sorted_input
        assert [w.index for w in windows] == [0, 1, 2]
        assert [net.name for w in windows for net in w.nets] == ["n0", "n2", "n1"]
        for window in windows:
            for net in window.nets:
                assert window.y_lo <= net_ylo(net) < window.y_hi

    def test_band_boundary_is_half_open(self, stack):
        """The off-by-one pin: a net whose lowest geometry sits exactly
        on a band cut line belongs to the *upper* band (bands are
        half-open ``[y_lo, y_hi)``), while one DBU below stays in the
        lower band."""
        # Wires are 400 wide: centers BAND+199 / BAND+200 put net_ylo at
        # BAND-1 and exactly BAND.
        text = _banded_def(stack, [self.BAND + 199, self.BAND + 200])
        stream = DefWindowStream(io.StringIO(text), stack, self.BAND)
        windows = list(stream.windows())
        assert stream.sorted_input
        assert [(w.index, [n.name for n in w.nets]) for w in windows] == [
            (0, ["n0"]),
            (1, ["n1"]),
        ]
        below, on_cut = windows[0].nets[0], windows[1].nets[0]
        assert net_ylo(below) == self.BAND - 1
        assert net_ylo(on_cut) == self.BAND
        assert windows[0].y_hi == self.BAND == windows[1].y_lo


# ---------------------------------------------------------------------------
# malformed input, both readers


def _tiny_def(stack, *, net_items=None, fills=(), tail=None, header_order="normal"):
    """A numbered DEF-lite template: returns (text, line numbers dict)."""
    net_items = net_items if net_items is not None else [
        "  + PIN drv ( 1000 1000 ) LAYER metal3 DRIVER RES 100",
        "  + PIN s0 ( 9000 1000 ) LAYER metal3 CAP 5",
        "  + ROUTED metal3 ( 1000 1000 ) ( 9000 1000 ) WIDTH 400",
    ]
    lines = [
        "VERSION 1.0 ;",
        "DESIGN tiny ;",
        f"UNITS DISTANCE MICRONS {stack.dbu_per_micron} ;",
    ]
    if header_order == "normal":
        lines.append("DIEAREA ( 0 0 ) ( 20000 20000 ) ;")
    lines.append("NETS 1 ;")
    net_line = len(lines) + 1
    lines.append("- n0")
    item_lines = list(range(len(lines) + 1, len(lines) + 1 + len(net_items)))
    lines.extend(net_items)
    lines.extend([";", "END NETS", f"FILLS {len(fills)} ;"])
    fill_lines = list(range(len(lines) + 1, len(lines) + 1 + len(fills)))
    lines.extend(fills)
    lines.append("END FILLS")
    if tail:
        lines.extend(tail)
    lines.append("END DESIGN")
    text = "\n".join(lines) + "\n"
    return text, {"net": net_line, "items": item_lines, "fills": fill_lines}


def _readers():
    return [
        pytest.param(lambda text, stack: parse_def(text, stack), id="materialized"),
        pytest.param(
            lambda text, stack: parse_def_streaming(io.StringIO(text), stack),
            id="streaming",
        ),
    ]


class TestMalformedInput:
    @pytest.mark.parametrize("read", _readers())
    def test_truncated_fill_record(self, stack, read):
        text, where = _tiny_def(stack, fills=["- LAYER metal3 RECT ( 0 0 100"])
        with pytest.raises(ParseError, match="truncated fill record") as err:
            read(text, stack)
        assert err.value.line_no == where["fills"][0]

    @pytest.mark.parametrize("read", _readers())
    def test_unknown_toplevel_token(self, stack, read):
        text, _ = _tiny_def(stack, tail=["FROBNICATE 3 ;"])
        with pytest.raises(ParseError, match="unexpected token 'FROBNICATE'"):
            read(text, stack)

    @pytest.mark.parametrize("read", _readers())
    def test_truncated_sink_cap(self, stack, read):
        text, where = _tiny_def(
            stack,
            net_items=["  + PIN s0 ( 1000 1000 ) LAYER metal3 CAP"],
        )
        with pytest.raises(ParseError, match="sink pin needs 'CAP <ff>'") as err:
            read(text, stack)
        assert err.value.line_no == where["items"][0]

    @pytest.mark.parametrize("read", _readers())
    def test_truncated_driver_res(self, stack, read):
        text, where = _tiny_def(
            stack,
            net_items=["  + PIN drv ( 1000 1000 ) LAYER metal3 DRIVER RES"],
        )
        with pytest.raises(ParseError, match="driver pin needs") as err:
            read(text, stack)
        assert err.value.line_no == where["items"][0]

    @pytest.mark.parametrize("read", _readers())
    def test_unknown_net_item(self, stack, read):
        text, where = _tiny_def(
            stack, net_items=["  + VIAS metal3 ( 0 0 ) ( 1 1 )"]
        )
        with pytest.raises(ParseError, match="unknown net item") as err:
            read(text, stack)
        assert err.value.line_no == where["items"][0]

    @pytest.mark.parametrize("read", _readers())
    def test_net_validation_reports_net_start_line(self, stack, read):
        # A net on a layer the stack doesn't know fails *net-level*
        # validation (not statement parsing); the error must point at
        # the net's opening '-' line, not at EOF or a later statement.
        text, where = _tiny_def(
            stack,
            net_items=[
                "  + PIN drv ( 1000 1000 ) LAYER metal9 DRIVER RES 100",
                "  + PIN s0 ( 9000 1000 ) LAYER metal9 CAP 5",
                "  + ROUTED metal9 ( 1000 1000 ) ( 9000 1000 ) WIDTH 400",
            ],
        )
        with pytest.raises(ParseError) as err:
            read(text, stack)
        assert err.value.line_no == where["net"]

    def test_net_ylo_requires_geometry(self):
        from repro.layout import Net

        with pytest.raises(LayoutError, match="no geometry"):
            net_ylo(Net("empty"))
