"""The two-phase simplex engine on hand-checked LPs."""

import numpy as np
import pytest

from repro.ilp import SolveStatus
from repro.ilp.simplex import solve_lp


def lp(c, a_ub=(), b_ub=(), a_eq=(), b_eq=()):
    n = len(c)
    return solve_lp(
        np.array(c, dtype=float),
        np.array(a_ub, dtype=float).reshape(-1, n),
        np.array(b_ub, dtype=float),
        np.array(a_eq, dtype=float).reshape(-1, n),
        np.array(b_eq, dtype=float),
    )


class TestBasicLPs:
    def test_textbook_max_as_min(self):
        # max 3x+2y st x+y<=4, x+3y<=6  -> min -3x-2y, optimum (4,0), z=-12
        res = lp([-3, -2], a_ub=[[1, 1], [1, 3]], b_ub=[4, 6])
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-12.0)
        np.testing.assert_allclose(res.x, [4, 0], atol=1e-9)

    def test_equality_constraint(self):
        # min x+y st x+y=3 -> any point on the line; objective 3
        res = lp([1, 1], a_eq=[[1, 1]], b_eq=[3])
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(3.0)

    def test_negative_rhs_inequality(self):
        # x >= 2 expressed as -x <= -2; min x -> 2
        res = lp([1], a_ub=[[-1]], b_ub=[-2])
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(2.0)

    def test_infeasible(self):
        # x <= 1 and x >= 3
        res = lp([1], a_ub=[[1], [-1]], b_ub=[1, -3])
        assert res.status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        res = lp([-1], a_ub=[[-1]], b_ub=[0])  # min -x, x >= 0 unbounded
        assert res.status is SolveStatus.UNBOUNDED

    def test_no_constraints_zero_optimum(self):
        res = lp([1, 2])
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == 0.0

    def test_no_constraints_unbounded(self):
        res = lp([-1])
        assert res.status is SolveStatus.UNBOUNDED

    def test_degenerate_vertex(self):
        # Three constraints through one vertex — classic degeneracy.
        res = lp(
            [-1, -1],
            a_ub=[[1, 0], [0, 1], [1, 1]],
            b_ub=[1, 1, 2],
        )
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-2.0)

    def test_redundant_equalities(self):
        # Same equality twice -> residual zero-level artificial.
        res = lp([1, 1], a_eq=[[1, 1], [1, 1]], b_eq=[3, 3])
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(3.0)


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_feasible_lps(self, seed):
        from scipy.optimize import linprog

        rng = np.random.default_rng(seed)
        n, m = 6, 4
        a_ub = rng.normal(size=(m, n))
        x0 = rng.uniform(0.1, 1.0, size=n)  # feasible interior point
        b_ub = a_ub @ x0 + rng.uniform(0.1, 1.0, size=m)
        c = rng.normal(size=n)

        ours = lp(c, a_ub=a_ub.tolist(), b_ub=b_ub.tolist())
        ref = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * n, method="highs")
        if ref.status == 3:
            assert ours.status is SolveStatus.UNBOUNDED
        else:
            assert ref.status == 0
            assert ours.status is SolveStatus.OPTIMAL
            assert ours.objective == pytest.approx(ref.fun, abs=1e-7)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_equality_lps(self, seed):
        from scipy.optimize import linprog

        rng = np.random.default_rng(100 + seed)
        n, m = 7, 3
        a_eq = rng.normal(size=(m, n))
        x0 = rng.uniform(0.1, 1.0, size=n)
        b_eq = a_eq @ x0
        c = rng.uniform(0.1, 2.0, size=n)  # positive costs keep it bounded

        ours = lp(c, a_eq=a_eq.tolist(), b_eq=b_eq.tolist())
        ref = linprog(c, A_eq=a_eq, b_eq=b_eq, bounds=[(0, None)] * n, method="highs")
        assert ref.status == 0
        assert ours.status is SolveStatus.OPTIMAL
        assert ours.objective == pytest.approx(ref.fun, abs=1e-7)

    def test_solution_satisfies_constraints(self):
        rng = np.random.default_rng(42)
        n, m = 8, 5
        a_ub = rng.normal(size=(m, n))
        b_ub = np.abs(rng.normal(size=m)) + 1
        c = rng.uniform(0.1, 1.0, size=n)
        res = lp(c, a_ub=a_ub.tolist(), b_ub=b_ub.tolist())
        assert res.status is SolveStatus.OPTIMAL
        assert np.all(a_ub @ res.x <= b_ub + 1e-8)
        assert np.all(res.x >= -1e-10)
