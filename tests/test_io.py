"""LEF-lite / DEF-lite round trips and error handling."""

import pytest

from repro.errors import ParseError
from repro.geometry import Rect
from repro.io import parse_def, parse_lef, write_def, write_lef
from repro.layout import FillFeature
from repro.tech import default_stack
from tests.conftest import build_two_line_layout


class TestLefRoundtrip:
    def test_roundtrip_preserves_stack(self, stack):
        text = write_lef(stack)
        parsed = parse_lef(text)
        assert parsed.dbu_per_micron == stack.dbu_per_micron
        assert parsed.layer_names == stack.layer_names
        for name in stack.layer_names:
            a, b = stack.layer(name), parsed.layer(name)
            assert a.direction == b.direction
            assert a.thickness_um == pytest.approx(b.thickness_um)
            assert a.eps_r == pytest.approx(b.eps_r)
            assert a.sheet_res_ohm == pytest.approx(b.sheet_res_ohm)
            assert a.min_width_dbu == b.min_width_dbu
            assert a.ground_cap_ff_per_um == pytest.approx(b.ground_cap_ff_per_um)

    def test_missing_units_rejected(self):
        with pytest.raises(ParseError, match="UNITS"):
            parse_lef("LAYER m1\n  TYPE ROUTING ;\nEND m1\nEND LIBRARY\n")

    def test_missing_fields_rejected(self):
        text = (
            "UNITS DATABASE MICRONS 1000 ;\n"
            "LAYER m1\n  TYPE ROUTING ;\n  DIRECTION HORIZONTAL ;\nEND m1\n"
            "END LIBRARY\n"
        )
        with pytest.raises(ParseError, match="missing fields"):
            parse_lef(text)

    def test_bad_direction_rejected(self):
        text = (
            "UNITS DATABASE MICRONS 1000 ;\n"
            "LAYER m1\n  DIRECTION DIAGONAL ;\nEND m1\nEND LIBRARY\n"
        )
        with pytest.raises(ParseError, match="DIRECTION"):
            parse_lef(text)

    def test_unterminated_layer_rejected(self):
        text = "UNITS DATABASE MICRONS 1000 ;\nLAYER m1\n  TYPE ROUTING ;\n"
        with pytest.raises(ParseError, match="unterminated"):
            parse_lef(text)

    def test_error_carries_line_number(self):
        text = "UNITS DATABASE MICRONS 1000 ;\nLAYER m1\n  BOGUS 1 ;\nEND m1\nEND LIBRARY\n"
        with pytest.raises(ParseError, match="line 3"):
            parse_lef(text)


class TestDefRoundtrip:
    def test_roundtrip_preserves_layout(self, stack):
        layout = build_two_line_layout(stack)
        layout.add_fill(FillFeature("metal3", Rect(1000, 1000, 1500, 1500)))
        text = write_def(layout)
        parsed = parse_def(text, stack)
        assert parsed.name == layout.name
        assert parsed.die == layout.die
        assert set(parsed.nets) == set(layout.nets)
        for name in layout.nets:
            a, b = layout.nets[name], parsed.nets[name]
            assert len(a.segments) == len(b.segments)
            assert {p.name for p in a.pins} == {p.name for p in b.pins}
            assert a.driver.driver_res_ohm == pytest.approx(b.driver.driver_res_ohm)
        assert len(parsed.fills) == 1
        assert parsed.fills[0].rect == Rect(1000, 1000, 1500, 1500)

    def test_roundtrip_timing_equivalent(self, stack):
        """Parsed layouts must produce identical Elmore delays."""
        layout = build_two_line_layout(stack)
        parsed = parse_def(write_def(layout), stack)
        for name in layout.nets:
            orig = layout.tree(name).elmore_delays()
            back = parsed.tree(name).elmore_delays()
            assert orig.keys() == back.keys()
            for sink in orig:
                assert orig[sink] == pytest.approx(back[sink])

    def test_units_mismatch_rejected(self, stack):
        layout = build_two_line_layout(stack)
        text = write_def(layout).replace("MICRONS 1000", "MICRONS 2000")
        with pytest.raises(ParseError, match="units"):
            parse_def(text, stack)

    def test_missing_diearea_rejected(self, stack):
        with pytest.raises(ParseError, match="DIEAREA"):
            parse_def("VERSION 1.0 ;\nEND DESIGN\n", stack)

    def test_malformed_pin_rejected(self, stack):
        text = (
            "UNITS DISTANCE MICRONS 1000 ;\n"
            "DIEAREA ( 0 0 ) ( 1000 1000 ) ;\n"
            "NETS 1 ;\n"
            "- n1\n"
            "  + PIN p ( 10 10 ) LAYER metal3 WEIRD\n"
            ";\nEND NETS\nEND DESIGN\n"
        )
        with pytest.raises(ParseError):
            parse_def(text, stack)

    def test_generated_layout_roundtrip(self, small_generated_layout, stack):
        text = write_def(small_generated_layout)
        parsed = parse_def(text, stack)
        assert parsed.stats() == small_generated_layout.stats()
