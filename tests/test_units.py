"""Unit conversion helpers."""

import pytest

from repro import units


class TestDbuConversions:
    def test_dbu_to_um_default_scale(self):
        assert units.dbu_to_um(1000) == 1.0

    def test_dbu_to_um_custom_scale(self):
        assert units.dbu_to_um(200, dbu_per_micron=100) == 2.0

    def test_um_to_dbu_rounds_to_nearest(self):
        assert units.um_to_dbu(1.2345) == 1234  # 1234.5 banker-rounds to 1234
        assert units.um_to_dbu(1.2346) == 1235

    def test_um_to_dbu_roundtrip(self):
        assert units.dbu_to_um(units.um_to_dbu(3.5)) == 3.5

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            units.dbu_to_um(1, dbu_per_micron=0)
        with pytest.raises(ValueError):
            units.um_to_dbu(1.0, dbu_per_micron=-5)


class TestDelayConversions:
    def test_ps_ns_roundtrip(self):
        assert units.ns_to_ps(units.ps_to_ns(1234.0)) == pytest.approx(1234.0)

    def test_ps_to_ns(self):
        assert units.ps_to_ns(2500.0) == 2.5


class TestFormatSi:
    def test_zero(self):
        assert units.format_si(0.0, "s") == "0 s"

    def test_milli(self):
        assert units.format_si(0.0042, "s") == "4.2 ms"

    def test_kilo(self):
        assert units.format_si(4200.0, "Hz") == "4.2 kHz"

    def test_femto(self):
        assert "f" in units.format_si(3e-15, "F")

    def test_below_femto_falls_back_to_scientific(self):
        assert "e" in units.format_si(1e-20, "F")

    def test_constants_consistent(self):
        # eps0 = 8.854e-12 F/m = 8.854e-3 fF/um
        assert units.EPS0_FF_PER_UM == pytest.approx(8.854e-3)
