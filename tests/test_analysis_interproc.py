"""Interprocedural analysis: call graph, X-rule traces, SARIF output.

The fixture corpus (``test_analysis_fixtures.py``) pins that each X rule
fires exactly; this file pins the *machinery* — call-graph resolution,
the source→sink chain carried on findings (acceptance criterion: present
in both text and SARIF), and the SARIF document shape GitHub code
scanning expects.
"""

from __future__ import annotations

import ast
import json

from repro.analysis import LintPolicy, lint_source, render_sarif
from repro.analysis.callgraph import CallGraph, ModuleUnit, build_program


def _unit(module: str, source: str) -> ModuleUnit:
    return ModuleUnit(
        module=module,
        path=module.replace(".", "/") + ".py",
        source=source,
        tree=ast.parse(source),
    )


def _graph(sources: dict[str, str]) -> CallGraph:
    return CallGraph({m: _unit(m, s) for m, s in sources.items()})


class TestCallGraph:
    def test_local_and_from_import_calls_resolve(self) -> None:
        graph = _graph(
            {
                "pkg.a": "def helper() -> int:\n    return 1\n",
                "pkg.b": (
                    "from pkg.a import helper\n\n\n"
                    "def caller() -> int:\n    return helper()\n"
                ),
            }
        )
        assert graph.callees_of("pkg.b.caller") == ("pkg.a.helper",)

    def test_module_alias_attribute_call_resolves(self) -> None:
        graph = _graph(
            {
                "pkg.a": "def helper() -> int:\n    return 1\n",
                "pkg.b": (
                    "import pkg.a as pa\n\n\n"
                    "def caller() -> int:\n    return pa.helper()\n"
                ),
            }
        )
        assert graph.callees_of("pkg.b.caller") == ("pkg.a.helper",)

    def test_self_method_and_constructor_resolve(self) -> None:
        graph = _graph(
            {
                "pkg.a": (
                    "class Box:\n"
                    "    def __init__(self) -> None:\n"
                    "        self.n = 0\n\n"
                    "    def bump(self) -> None:\n"
                    "        self.n += 1\n\n"
                    "    def run(self) -> None:\n"
                    "        self.bump()\n\n\n"
                    "def make() -> Box:\n"
                    "    return Box()\n"
                )
            }
        )
        assert graph.callees_of("pkg.a.Box.run") == ("pkg.a.Box.bump",)
        # A constructor call lands on __init__.
        assert graph.callees_of("pkg.a.make") == ("pkg.a.Box.__init__",)

    def test_module_body_is_a_graph_node(self) -> None:
        graph = _graph(
            {
                "pkg.a": (
                    "def setup() -> int:\n    return 1\n\n\n"
                    "VALUE = setup()\n"
                )
            }
        )
        assert graph.callees_of("pkg.a") == ("pkg.a.setup",)

    def test_reachability_and_call_path(self) -> None:
        graph = _graph(
            {
                "pkg.a": (
                    "def c() -> int:\n    return 1\n\n\n"
                    "def b() -> int:\n    return c()\n\n\n"
                    "def a() -> int:\n    return b()\n\n\n"
                    "def unrelated() -> int:\n    return 0\n"
                )
            }
        )
        reachable = graph.reachable_from(("pkg.a.a",))
        assert "pkg.a.c" in reachable
        assert "pkg.a.unrelated" not in reachable
        path = graph.call_path("pkg.a.a", "pkg.a.c")
        assert path is not None
        assert [(s.caller, s.callee) for s in path] == [
            ("pkg.a.a", "pkg.a.b"),
            ("pkg.a.b", "pkg.a.c"),
        ]
        assert graph.call_path("pkg.a.unrelated", "pkg.a.c") is None

    def test_build_program_skips_broken_modules(self) -> None:
        program = build_program(
            {
                "pkg.ok": ("pkg/ok.py", "def f() -> int:\n    return 1\n"),
                "pkg.bad": ("pkg/bad.py", "def broken(:\n"),
            },
            LintPolicy(),
        )
        assert set(program.units) == {"pkg.ok"}


_TAINT_POLICY = LintPolicy(
    taint_sink_functions=("repro.experiments.fx.digest_key",)
)

_TAINT_SOURCE = """
import hashlib
import os


def read_host() -> str:
    return os.environ.get("PILFILL_HOST", "local")


def build_payload() -> str:
    return "payload:" + read_host()


def digest_key(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_key() -> str:
    return digest_key(build_payload())
"""


class TestTaintChain:
    def _finding(self):
        findings = lint_source(
            _TAINT_SOURCE,
            path="fx.py",
            module="repro.experiments.fx",
            policy=_TAINT_POLICY,
        )
        assert [f.rule_id for f in findings] == ["X101"]
        return findings[0]

    def test_text_report_carries_the_full_chain(self) -> None:
        finding = self._finding()
        notes = [step.note for step in finding.trace]
        assert notes[0].startswith("source: environment read")
        assert notes[-1] == "sink: call of repro.experiments.fx.digest_key"
        # Intermediate hops walk the actual call chain.
        assert any("build_payload -> repro.experiments.fx.read_host" in n for n in notes)
        text = finding.format()
        for step in finding.trace:
            assert step.format() in text

    def test_sarif_report_carries_the_chain_as_a_code_flow(self) -> None:
        finding = self._finding()
        document = json.loads(render_sarif([finding], files_checked=1))
        assert document["version"] == "2.1.0"
        (run,) = document["runs"]
        (result,) = run["results"]
        assert result["ruleId"] == "X101"
        (flow,) = result["codeFlows"]
        (thread,) = flow["threadFlows"]
        notes = [
            loc["location"]["message"]["text"] for loc in thread["locations"]
        ]
        assert notes == [step.note for step in finding.trace]
        # Every rule in the catalog ships metadata, findings or not.
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"D101", "C201", "T301", "X101", "X201", "X202", "X301"} <= rule_ids

    def test_sarif_of_clean_run_has_rules_but_no_results(self) -> None:
        document = json.loads(render_sarif([], files_checked=3))
        (run,) = document["runs"]
        assert run["results"] == []
        assert run["properties"]["filesChecked"] == 3
        assert run["tool"]["driver"]["rules"]


class TestLockRules:
    def test_consistent_order_through_calls_is_clean(self) -> None:
        source = """
from threading import Lock


class Pair:
    def __init__(self) -> None:
        self._a = Lock()
        self._b = Lock()
        self.value = 0

    def _locked_bump(self) -> None:
        with self._b:
            self.value += 1

    def forward(self) -> None:
        with self._a:
            self._locked_bump()
"""
        findings = lint_source(source, path="fx.py", module="repro.experiments.fx")
        assert findings == []

    def test_cycle_through_a_callee_is_detected(self) -> None:
        source = """
from threading import Lock


class Pair:
    def __init__(self) -> None:
        self._a = Lock()
        self._b = Lock()
        self.value = 0

    def _locked_bump(self) -> None:
        with self._b:
            self.value += 1

    def forward(self) -> None:
        with self._a:
            self._locked_bump()

    def backward(self) -> None:
        with self._b:
            with self._a:
                self.value -= 1
"""
        findings = lint_source(source, path="fx.py", module="repro.experiments.fx")
        assert [f.rule_id for f in findings] == ["X201"]
        assert "lock-order cycle" in findings[0].message

    def test_nonreentrant_self_nesting_is_a_cycle(self) -> None:
        source = """
from threading import Lock

GUARD = Lock()


def outer() -> None:
    with GUARD:
        inner()


def inner() -> None:
    with GUARD:
        pass
"""
        findings = lint_source(source, path="fx.py", module="repro.experiments.fx")
        assert [f.rule_id for f in findings] == ["X201"]

    def test_rlock_self_nesting_is_legal(self) -> None:
        source = """
from threading import RLock

GUARD = RLock()


def outer() -> None:
    with GUARD:
        inner()


def inner() -> None:
    with GUARD:
        pass
"""
        findings = lint_source(source, path="fx.py", module="repro.experiments.fx")
        assert findings == []

    def test_dispatch_through_a_helper_is_detected(self) -> None:
        source = """
from concurrent.futures import ThreadPoolExecutor
from threading import Lock


class Dispatcher:
    def __init__(self) -> None:
        self._lock = Lock()
        self._pool = ThreadPoolExecutor(max_workers=2)

    def _ship(self, item: int) -> None:
        self._pool.submit(print, item)

    def run(self, items: list[int]) -> None:
        with self._lock:
            for item in items:
                self._ship(item)
"""
        findings = lint_source(source, path="fx.py", module="repro.experiments.fx")
        assert [f.rule_id for f in findings] == ["X202"]
        notes = [step.note for step in findings[0].trace]
        assert notes[0].startswith("lock acquired:")


class TestPurityRule:
    def test_unreachable_writes_are_not_flagged(self) -> None:
        source = """
_RESULTS: list[int] = []


def record(value: int) -> None:
    _RESULTS.append(value)


def worker_main(value: int) -> int:
    return value * 2
"""
        policy = LintPolicy(
            worker_entry_functions=("repro.experiments.fx.worker_main",)
        )
        findings = lint_source(
            source, path="fx.py", module="repro.experiments.fx", policy=policy
        )
        assert findings == []

    def test_allowlisted_state_is_sanctioned(self) -> None:
        source = """
_CACHE: dict[str, int] = {}


def resolve(key: str) -> int:
    if key not in _CACHE:
        _CACHE[key] = len(key)
    return _CACHE[key]


def worker_main(key: str) -> int:
    return resolve(key)
"""
        policy = LintPolicy(
            worker_entry_functions=("repro.experiments.fx.worker_main",),
            worker_state_allowlist=("repro.experiments.fx._CACHE",),
        )
        findings = lint_source(
            source, path="fx.py", module="repro.experiments.fx", policy=policy
        )
        assert findings == []

    def test_global_rebind_is_flagged_with_entry_trace(self) -> None:
        source = """
_EPOCH = 0


def advance() -> None:
    global _EPOCH
    _EPOCH += 1


def worker_main(value: int) -> int:
    advance()
    return value
"""
        policy = LintPolicy(
            worker_entry_functions=("repro.experiments.fx.worker_main",)
        )
        findings = lint_source(
            source, path="fx.py", module="repro.experiments.fx", policy=policy
        )
        assert [f.rule_id for f in findings] == ["X301"]
        notes = [step.note for step in findings[0].trace]
        assert notes[0] == "worker entry: repro.experiments.fx.worker_main"
        assert notes[-1].startswith("write:")

    def test_local_shadow_is_not_module_state(self) -> None:
        source = """
_RESULTS: list[int] = []


def worker_main(value: int) -> int:
    _RESULTS = [value]
    _RESULTS.append(value)
    return _RESULTS[0]
"""
        policy = LintPolicy(
            worker_entry_functions=("repro.experiments.fx.worker_main",)
        )
        findings = lint_source(
            source, path="fx.py", module="repro.experiments.fx", policy=policy
        )
        assert findings == []


class TestSuppression:
    def test_x_findings_are_suppressible_at_the_anchor_line(self) -> None:
        source = """
import hashlib
import os


def digest_key(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_key() -> str:
    host = os.environ.get("H", "x")
    return digest_key(host)  # pilfill: allow[X101] -- fixture: documented env pin
"""
        findings = lint_source(
            source,
            path="fx.py",
            module="repro.experiments.fx",
            policy=_TAINT_POLICY,
        )
        assert findings == []
