"""Scan-line gap-block sweep and slack-column extraction (paper Fig. 7)."""

import pytest

from repro.dissection import FixedDissection
from repro.fillsynth import SiteLegality
from repro.geometry import Interval, Rect
from repro.pilfill import SlackColumnDef, extract_columns, sweep_gap_blocks
from repro.pilfill.scanline import SweepLine, layer_sweep_lines
from repro.tech import DensityRules
from tests.conftest import build_two_line_layout


def region():
    return Rect(0, 0, 10000, 10000)


def line(xlo, ylo, xhi, yhi):
    return SweepLine(rect=Rect(xlo, ylo, xhi, yhi), timing=None)


class TestSweep:
    def test_empty_region_single_block(self):
        blocks = sweep_gap_blocks([], region(), horizontal=True)
        assert len(blocks) == 1
        b = blocks[0]
        assert b.along == Interval(0, 10000)
        assert (b.cross_lo, b.cross_hi) == (0, 10000)
        assert b.below is None and b.above is None

    def test_one_full_width_line_two_blocks(self):
        ln = line(0, 4000, 10000, 4400)
        blocks = sweep_gap_blocks([ln], region(), horizontal=True)
        assert len(blocks) == 2
        below = next(b for b in blocks if b.above is ln)
        above = next(b for b in blocks if b.below is ln)
        assert (below.cross_lo, below.cross_hi) == (0, 4000)
        assert (above.cross_lo, above.cross_hi) == (4400, 10000)

    def test_two_stacked_lines_middle_gap_has_both_neighbors(self):
        lo = line(0, 2000, 10000, 2400)
        hi = line(0, 6000, 10000, 6400)
        blocks = sweep_gap_blocks([lo, hi], region(), horizontal=True)
        middle = next(b for b in blocks if b.below is lo and b.above is hi)
        assert (middle.cross_lo, middle.cross_hi) == (2400, 6000)
        assert middle.gap == 3600

    def test_partial_line_splits_fragments(self):
        ln = line(3000, 5000, 7000, 5400)
        blocks = sweep_gap_blocks([ln], region(), horizontal=True)
        # Bottom gap under the line span + full-height side gaps + gap above.
        under = [b for b in blocks if b.above is ln]
        assert len(under) == 1
        assert under[0].along == Interval(3000, 7000)
        sides = [
            b for b in blocks
            if b.below is None and b.above is None and b.cross_hi == 10000
        ]
        assert {b.along for b in sides} == {Interval(0, 3000), Interval(7000, 10000)}

    def test_staggered_lines_neighbor_resolution(self):
        left = line(0, 3000, 5000, 3400)
        right = line(5000, 6000, 10000, 6400)
        blocks = sweep_gap_blocks([left, right], region(), horizontal=True)
        # Above 'left', the left half of the region runs to the boundary.
        above_left = [b for b in blocks if b.below is left]
        assert all(b.above is None for b in above_left)
        # Under 'right', blocks start from bottom boundary.
        under_right = [b for b in blocks if b.above is right]
        assert all(b.below is None for b in under_right)

    def test_vertical_direction_transposed(self):
        ln = line(4000, 0, 4400, 10000)  # vertical line
        blocks = sweep_gap_blocks([ln], region(), horizontal=False)
        assert len(blocks) == 2
        below = next(b for b in blocks if b.above is ln)
        assert (below.cross_lo, below.cross_hi) == (0, 4000)  # x gap
        assert below.along == Interval(0, 10000)  # y extent

    def test_blocks_tile_free_space_exactly(self):
        """Blocks plus line rects partition the region area."""
        lines = [
            line(0, 2000, 6000, 2400),
            line(4000, 5000, 10000, 5400),
            line(1000, 8000, 9000, 8400),
        ]
        blocks = sweep_gap_blocks(lines, region(), horizontal=True)
        block_area = sum(b.along.length * b.gap for b in blocks)
        line_area = sum(ln.rect.area for ln in lines)
        assert block_area + line_area == region().area

    def test_blocks_disjoint(self):
        lines = [
            line(0, 2000, 6000, 2400),
            line(4000, 5000, 10000, 5400),
        ]
        blocks = sweep_gap_blocks(lines, region(), horizontal=True)
        rects = [
            Rect(b.along.lo, b.cross_lo, b.along.hi, b.cross_hi) for b in blocks
        ]
        for i, a in enumerate(rects):
            for b in rects[i + 1:]:
                assert not a.overlaps(b)

    def test_overlapping_same_net_lines_tolerated(self):
        # Junction-style overlap: two rects overlapping in both axes.
        a = line(0, 4000, 6000, 4400)
        b = line(5800, 4200, 9000, 4600)
        blocks = sweep_gap_blocks([a, b], region(), horizontal=True)
        for blk in blocks:
            assert blk.gap > 0


class TestExtractColumns:
    @pytest.fixture
    def setup(self, stack, fill_rules):
        layout = build_two_line_layout(stack, gap_dbu=4000)
        dissection = FixedDissection(layout.die, DensityRules(20000, 2))
        legality = SiteLegality(layout, "metal3", fill_rules)
        return layout, dissection, legality

    def test_layer_sweep_lines_direction_filter(self, setup):
        layout, _d, _l = setup
        lines, horizontal = layer_sweep_lines(layout, "metal3")
        assert horizontal
        assert len(lines) == 2  # both trunks

    def test_full_layout_columns_have_true_neighbors(self, setup, fill_rules):
        layout, dissection, legality = setup
        columns = extract_columns(
            layout, "metal3", dissection, legality, fill_rules,
            SlackColumnDef.FULL_LAYOUT,
        )
        all_cols = [c for cols in columns.values() for c in cols]
        assert all_cols
        mid = [c for c in all_cols if c.has_impact]
        assert mid, "expected columns between the two lines"
        for col in mid:
            assert col.gap_um == pytest.approx(4.0)
            assert {col.below.net, col.above.net} == {"n0", "n1"}

    def test_columns_within_gap_capacity(self, setup, fill_rules):
        layout, dissection, legality = setup
        columns = extract_columns(
            layout, "metal3", dissection, legality, fill_rules,
            SlackColumnDef.FULL_LAYOUT,
        )
        pitch = fill_rules.pitch
        for cols in columns.values():
            for col in cols:
                if col.has_impact:
                    usable = col.gap_um * 1000 - 2 * fill_rules.buffer_distance
                    assert col.capacity <= usable // pitch + 1

    def test_def1_only_between_lines(self, setup, fill_rules):
        layout, dissection, legality = setup
        columns = extract_columns(
            layout, "metal3", dissection, legality, fill_rules,
            SlackColumnDef.WITHIN_TILE,
        )
        for cols in columns.values():
            for col in cols:
                assert col.below is not None and col.above is not None

    def test_def1_capacity_at_most_def3(self, setup, fill_rules):
        layout, dissection, legality = setup
        def1 = extract_columns(layout, "metal3", dissection, legality, fill_rules,
                               SlackColumnDef.WITHIN_TILE)
        def3 = extract_columns(layout, "metal3", dissection, legality, fill_rules,
                               SlackColumnDef.FULL_LAYOUT)
        cap1 = sum(c.capacity for cols in def1.values() for c in cols)
        cap3 = sum(c.capacity for cols in def3.values() for c in cols)
        assert cap1 <= cap3

    def test_def2_has_boundary_columns_without_impact(self, setup, fill_rules):
        layout, dissection, legality = setup
        def2 = extract_columns(layout, "metal3", dissection, legality, fill_rules,
                               SlackColumnDef.TILE_BOUNDED)
        cols = [c for cs in def2.values() for c in cs]
        assert any(not c.has_impact for c in cols)

    def test_sites_unique_across_tiles(self, setup, fill_rules):
        layout, dissection, legality = setup
        columns = extract_columns(layout, "metal3", dissection, legality, fill_rules,
                                  SlackColumnDef.FULL_LAYOUT)
        seen = set()
        for cols in columns.values():
            for col in cols:
                for rect in col.sites:
                    assert rect not in seen, "site assigned to two columns"
                    seen.add(rect)

    def test_sites_are_legal_and_in_owner_tile(self, setup, fill_rules):
        layout, dissection, legality = setup
        columns = extract_columns(layout, "metal3", dissection, legality, fill_rules,
                                  SlackColumnDef.FULL_LAYOUT)
        for key, cols in columns.items():
            tile = dissection.tile(*key)
            for col in cols:
                for rect in col.sites:
                    assert legality.is_legal(rect)
                    assert tile.rect.contains_point(rect.center)

    def test_resistance_weight_monotone_along_line(self, setup, fill_rules):
        """Columns farther downstream see larger upstream resistance."""
        layout, dissection, legality = setup
        columns = extract_columns(layout, "metal3", dissection, legality, fill_rules,
                                  SlackColumnDef.FULL_LAYOUT)
        mid = sorted(
            (c for cols in columns.values() for c in cols if c.has_impact),
            key=lambda c: c.col,
        )
        weights = [c.resistance_weight(weighted=False) for c in mid]
        assert weights == sorted(weights)
