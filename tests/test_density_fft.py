"""Property tests: the FFT density backend against the direct oracle.

The contract of ``DensityMap(backend="fft")`` (see
:mod:`repro.dissection.density`):

* on **arbitrary float maps** the FFT window areas agree with the direct
  summed-area oracle within an ULP-scaled tolerance of the total mass
  (FFT round-off is relative to the whole transform, not per window),
* on **integer-valued maps** — every map derived from drawn geometry —
  the canonical ``np.rint`` snap makes the FFT backend *bit-identical*
  to the oracle: window areas, window densities, and ``stats()`` are all
  exactly equal.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dissection import DENSITY_BACKENDS, DensityMap, FixedDissection
from repro.geometry import Rect
from repro.tech.rules import DensityRules


@st.composite
def dissections(draw):
    """A small dissection: tile size, r, grid extent, and a die that may
    end mid-tile on either axis (clipped edge tiles)."""
    r = draw(st.integers(1, 4))
    tile = draw(st.integers(2, 40))
    nx = draw(st.integers(1, 10))
    ny = draw(st.integers(1, 10))
    # Shrink the die below a whole tile multiple to exercise edge clipping;
    # keep at least one positive unit so the die stays non-empty.
    dx = draw(st.integers(0, tile - 1)) if nx > 1 else 0
    dy = draw(st.integers(0, tile - 1)) if ny > 1 else 0
    die = Rect(0, 0, nx * tile - dx, ny * tile - dy)
    rules = DensityRules(window_size=tile * r, r=r, max_density=1.0)
    return FixedDissection(die, rules)


@st.composite
def float_maps(draw):
    """A dissection plus an arbitrary non-negative float tile-area map."""
    d = draw(dissections())
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                      allow_infinity=False),
            min_size=d.nx * d.ny, max_size=d.nx * d.ny,
        )
    )
    return d, np.asarray(values, dtype=np.float64).reshape(d.nx, d.ny)


@st.composite
def integer_maps(draw):
    """A dissection plus an integer-valued tile-area map (as geometry
    produces: exact float64 integers, well below 2**53)."""
    d = draw(dissections())
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=2**40),
            min_size=d.nx * d.ny, max_size=d.nx * d.ny,
        )
    )
    return d, np.asarray(values, dtype=np.float64).reshape(d.nx, d.ny)


@settings(max_examples=80, deadline=None)
@given(float_maps())
def test_fft_matches_direct_within_ulp_tolerance(case):
    dissection, tile_area = case
    direct = DensityMap(dissection, tile_area, backend="direct").window_area()
    fft = DensityMap(dissection, tile_area, backend="fft").window_area()
    assert fft.shape == direct.shape
    # FFT round-off scales with the transform's total mass, not with any
    # single window: a handful of ULPs of the map's mass bounds it.
    tol = 64 * np.spacing(max(1.0, float(np.abs(tile_area).sum())))
    assert np.all(np.abs(fft - direct) <= tol)


@settings(max_examples=80, deadline=None)
@given(integer_maps())
def test_fft_exact_on_integer_maps(case):
    dissection, tile_area = case
    direct = DensityMap(dissection, tile_area, backend="direct")
    fft = DensityMap(dissection, tile_area, backend="fft")
    assert np.array_equal(fft.window_area(), direct.window_area())
    assert np.array_equal(fft.window_density(), direct.window_density())


@settings(max_examples=80, deadline=None)
@given(integer_maps())
def test_stats_exact_after_canonical_rounding(case):
    dissection, tile_area = case
    direct = DensityMap(dissection, tile_area, backend="direct")
    fft = DensityMap(dissection, tile_area, backend="fft")
    # DensityStats is a frozen dataclass of floats: == here means every
    # summary statistic is bit-identical, not merely close.
    assert fft.stats() == direct.stats()


@settings(max_examples=40, deadline=None)
@given(integer_maps())
def test_added_preserves_backend_and_identity(case):
    dissection, tile_area = case
    extra = np.ones_like(tile_area)
    fft = DensityMap(dissection, tile_area, backend="fft").added(extra)
    direct = DensityMap(dissection, tile_area, backend="direct").added(extra)
    assert fft.backend == "fft"
    assert np.array_equal(fft.window_area(), direct.window_area())


def test_unknown_backend_rejected():
    rules = DensityRules(window_size=8, r=2, max_density=1.0)
    dissection = FixedDissection(Rect(0, 0, 16, 16), rules)
    area = np.zeros((dissection.nx, dissection.ny))
    with pytest.raises(ValueError, match="unknown density backend"):
        DensityMap(dissection, area, backend="simd")


def test_backends_registry():
    assert DENSITY_BACKENDS == ("direct", "fft")
