"""D102 passing fixture for the telemetry package: the same wall-clock
read is sanctioned in module="repro.obs.clock" — the single repro.obs
entry on the allowlist, where the injectable Clock implementations live."""

from __future__ import annotations

import time


class FixtureMonotonicClock:
    """The sanctioned clock: everything else in repro.obs injects one."""

    def now(self) -> float:
        return time.perf_counter()
