"""D101 passing fixture: every stream comes from an explicitly seeded RNG."""

import random


def draw(seed: int) -> float:
    return random.Random(seed).random()
