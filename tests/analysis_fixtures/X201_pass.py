"""X201 pass: both paths take the locks in the same global order."""

from threading import Lock


class Pair:
    def __init__(self) -> None:
        self._a = Lock()
        self._b = Lock()
        self.value = 0

    def forward(self) -> None:
        with self._a:
            with self._b:
                self.value += 1

    def backward(self) -> None:
        with self._a:
            with self._b:
                self.value -= 1
