"""A002 failing fixture: suppression names a rule id that does not exist."""

VALUE = 1  # pilfill: allow[Z999] -- there is no rule Z999
