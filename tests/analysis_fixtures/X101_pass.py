"""X101 pass: the digest input is a pure function of its arguments."""

import hashlib


def build_payload(host: str) -> str:
    return "payload:" + host


def digest_key(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_key(host: str) -> str:
    return digest_key(build_payload(host))
