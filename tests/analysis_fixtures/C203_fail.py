"""C203 failing fixture: the class owns a lock but writes the store
without holding it."""

import threading


class Store:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: dict[str, int] = {}

    def put(self, key: str, value: int) -> None:
        self._items[key] = value
