"""D101 failing fixture: draws from the hidden module-global RNG stream."""

import random


def draw() -> float:
    return random.random()
