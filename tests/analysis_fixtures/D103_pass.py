"""D103 passing fixture: the set expression is sorted before iteration."""


def merged_keys(a: dict[str, int], b: dict[str, int]) -> list[str]:
    out = []
    for key in sorted(a.keys() | b.keys()):
        out.append(key)
    return out
