"""C204 passing fixture: the cache gained a lock and mutates under it."""

import threading


class Memo:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cache: dict[str, int] = {}

    def put(self, key: str, value: int) -> None:
        with self._lock:
            self._cache[key] = value
