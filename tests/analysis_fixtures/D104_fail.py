"""D104 failing fixture: exact float equality in a numeric package
(the driver forces module="repro.pilfill.fx")."""


def is_unit(x: float) -> bool:
    return x == 1.0
