"""A001 passing fixture: the suppression carries a justification."""

import random


def draw() -> float:
    return random.random()  # pilfill: allow[D101] -- fixture: exercising a justified suppression
