"""X101 fail: an environment read flows into a digest sink two calls away."""

import hashlib
import os


def read_host() -> str:
    return os.environ.get("PILFILL_HOST", "local")


def build_payload() -> str:
    return "payload:" + read_host()


def digest_key(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_key() -> str:
    return digest_key(build_payload())
