"""X202 fail: pool submits issued while a lock is held."""

from concurrent.futures import ThreadPoolExecutor
from threading import Lock


class Dispatcher:
    def __init__(self) -> None:
        self._lock = Lock()
        self._pool = ThreadPoolExecutor(max_workers=2)
        self.pending = 0

    def run(self, items: list[int]) -> None:
        with self._lock:
            for item in items:
                self._pool.submit(print, item)
                self.pending += 1
