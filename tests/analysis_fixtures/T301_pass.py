"""T301 passing fixture: parameters and return fully annotated."""


def add(a: int, b: int) -> int:
    return a + b
