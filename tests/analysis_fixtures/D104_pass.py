"""D104 passing fixture: tolerance comparison, plus the LP-DSL exemption
(== inside add_constraint builds a Constraint, not a float test)."""

import math


def is_unit(x: float) -> bool:
    return math.isclose(x, 1.0)


def pin(model: object, x: object) -> None:
    model.add_constraint(x == 1.0)
