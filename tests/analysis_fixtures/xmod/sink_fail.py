"""Cross-module X101 fail, sink half: imports the tainted helper and
feeds its value into the digest sink."""

import hashlib

from repro.experiments.fx_src import read_host


def digest_key(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_key() -> str:
    return digest_key("payload:" + read_host())
