"""Cross-module X101 pass, source half: the helper is pure."""


def read_host(host: str) -> str:
    return host or "local"
