"""Cross-module X101 fail, source half: the environment read lives here."""

import os


def read_host() -> str:
    return os.environ.get("PILFILL_HOST", "local")
