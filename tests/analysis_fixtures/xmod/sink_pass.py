"""Cross-module X101 pass, sink half: digest of a pure value."""

import hashlib

from repro.experiments.fx_src import read_host


def digest_key(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_key(host: str) -> str:
    return digest_key("payload:" + read_host(host))
