"""C201 passing fixture: module state is immutable, per-call state is local."""

from types import MappingProxyType

_TABLE = MappingProxyType({"greedy": 1, "ilp1": 2})
_NAMES = ("greedy", "ilp1")


def rank(method: str) -> int:
    return _TABLE.get(method, 0)
