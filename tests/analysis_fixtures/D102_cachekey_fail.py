"""D102 failing fixture for the solution store: a cache key derived from
the wall clock (linted as module="repro.pilfill.incremental", which is NOT on
the allowlist). A timestamped digest can never hash the same twice, so
every lookup misses and warm runs silently stop being reproducible."""

from __future__ import annotations

import hashlib
import time


def stamped_cache_key(payload: str) -> str:
    """Folds the wall clock into the digest — nondeterministic by design."""
    h = hashlib.sha256()
    h.update(payload.encode("utf-8"))
    h.update(repr(time.time()).encode("utf-8"))
    return h.hexdigest()
