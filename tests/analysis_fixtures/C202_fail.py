"""C202 failing fixture: a registered payload class that is not a dataclass
(the driver registers Payload in a custom policy)."""


class Payload:
    value: object
