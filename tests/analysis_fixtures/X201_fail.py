"""X201 fail: two locks nested in opposite orders — a deadlock window."""

from threading import Lock


class Pair:
    def __init__(self) -> None:
        self._a = Lock()
        self._b = Lock()
        self.value = 0

    def forward(self) -> None:
        with self._a:
            with self._b:
                self.value += 1

    def backward(self) -> None:
        with self._b:
            with self._a:
                self.value -= 1
