"""A001 failing fixture: a suppression with no justification (blanket allow).
The D101 finding is swallowed, but the blanket allow itself is reported."""

import random


def draw() -> float:
    return random.random()  # pilfill: allow[D101]
