"""D102 failing fixture: wall-clock read outside the timing allowlist."""

import time


def stamp() -> float:
    return time.time()
