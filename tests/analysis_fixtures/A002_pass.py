"""A002 passing fixture: ordinary comments are not suppression directives."""

VALUE = 1  # a plain comment; nothing for the suppression parser here
