"""D102 failing fixture for the telemetry package: telemetry code reading
the wall clock directly (linted as module="repro.obs.report", which is NOT
on the allowlist — spans must take time from an injected Clock)."""

from __future__ import annotations

import time


class InlineClockTracer:
    """A tracer that bypasses the injected clock."""

    def start(self) -> float:
        return time.perf_counter()
