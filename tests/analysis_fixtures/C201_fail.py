"""C201 failing fixture: mutable module state in a worker-reachable module
(the driver forces worker_reachable=True)."""

_CACHE: dict[str, int] = {}


def remember(key: str, value: int) -> None:
    global _CACHE
    _CACHE[key] = value
