"""C203 passing fixture: every store mutation happens under the lock."""

import threading


class Store:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: dict[str, int] = {}

    def put(self, key: str, value: int) -> None:
        with self._lock:
            self._items[key] = value
