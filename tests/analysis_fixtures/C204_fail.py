"""C204 failing fixture: a *cache*-named store on a class with no lock."""


class Memo:
    def __init__(self) -> None:
        self._cache: dict[str, int] = {}

    def put(self, key: str, value: int) -> None:
        self._cache[key] = value
