"""D102 passing fixture: same read, but linted as an allowlisted module
(the driver forces module="repro.pilfill.engine", which owns deadlines)."""

import time


def stamp() -> float:
    return time.time()
