"""T301 failing fixture: unannotated def in a strict-typing package
(the driver forces module="repro.pilfill.fx")."""


def add(a, b):
    return a + b
