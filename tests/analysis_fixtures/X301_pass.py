"""X301 pass: the worker is a pure function of its payload."""


def record(value: int) -> int:
    return value


def worker_main(value: int) -> int:
    return record(value * 2)
