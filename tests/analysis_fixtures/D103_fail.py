"""D103 failing fixture: iterating key-view algebra in hash order."""


def merged_keys(a: dict[str, int], b: dict[str, int]) -> list[str]:
    out = []
    for key in a.keys() | b.keys():
        out.append(key)
    return out
