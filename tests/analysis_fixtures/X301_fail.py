"""X301 fail: a worker entry reaches a module-level accumulator write."""

_RESULTS: list[int] = []


def record(value: int) -> None:
    _RESULTS.append(value)


def worker_main(value: int) -> None:
    record(value * 2)
