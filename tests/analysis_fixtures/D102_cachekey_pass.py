"""D102 passing fixture for the solution store: the sanctioned shape — a
cache key that is a pure content hash of the solve inputs (canonical
JSON, sorted keys), with nothing environment-dependent folded in. Same
inputs, same key, on any machine, forever."""

from __future__ import annotations

import hashlib
import json


def content_cache_key(payload: dict[str, object]) -> str:
    """sha256 over canonical JSON of the inputs that determine the output."""
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()
