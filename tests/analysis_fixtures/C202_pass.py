"""C202 passing fixture: frozen dataclass, picklable-by-construction fields."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Payload:
    key: tuple[int, int]
    budget: int
    tables: tuple[float, ...]
    label: str | None = None
