"""Slack sites, budget computation (LP + Monte-Carlo), Normal placement."""

import pytest

from repro.dissection import DensityMap, FixedDissection
from repro.errors import FillError
from repro.fillsynth import (
    SiteLegality,
    lp_minvar_budget,
    montecarlo_budget,
    place_normal,
)
from repro.geometry import Rect
from repro.layout import validate_fill
from repro.tech import DensityRules, FillRules
from tests.conftest import build_two_line_layout


@pytest.fixture
def two_line_setup(stack, fill_rules):
    layout = build_two_line_layout(stack)
    rules = DensityRules(window_size=16000, r=2, max_density=0.6)
    dissection = FixedDissection(layout.die, rules)
    legality = SiteLegality(layout, "metal3", fill_rules)
    density = DensityMap.from_layout(dissection, layout, "metal3")
    return layout, dissection, legality, density


class TestSiteLegality:
    def test_site_on_line_illegal(self, two_line_setup, fill_rules):
        layout, _d, legality, _ = two_line_setup
        line_rect = layout.segments_on_layer("metal3")[0].rect
        on_line = Rect(line_rect.xlo + 1000, line_rect.ylo,
                       line_rect.xlo + 1500, line_rect.ylo + 500)
        assert not legality.is_legal(on_line)

    def test_site_within_buffer_illegal(self, two_line_setup, fill_rules):
        layout, _d, legality, _ = two_line_setup
        line_rect = layout.segments_on_layer("metal3")[0].rect
        # 100 DBU above the line top, buffer is 250
        near = Rect(line_rect.xlo + 1000, line_rect.yhi + 100,
                    line_rect.xlo + 1500, line_rect.yhi + 600)
        assert not legality.is_legal(near)

    def test_far_site_legal(self, two_line_setup):
        _l, _d, legality, _ = two_line_setup
        assert legality.is_legal(Rect(2000, 2000, 2500, 2500))

    def test_site_outside_die_illegal(self, two_line_setup):
        layout, _d, legality, _ = two_line_setup
        edge = layout.die.xhi
        assert not legality.is_legal(Rect(edge - 100, 1000, edge + 400, 1500))

    def test_legal_sites_in_region_drc_clean(self, two_line_setup, fill_rules):
        layout, dissection, legality, _ = two_line_setup
        from repro.layout import FillFeature

        for rect in legality.legal_sites_in_region(Rect(0, 0, 20000, 20000)):
            layout.add_fill(FillFeature("metal3", rect))
        assert layout.fills, "expected some legal sites"
        assert validate_fill(layout, fill_rules).ok

    def test_legal_count_by_tile_covers_all_tiles(self, two_line_setup):
        _l, dissection, legality, _ = two_line_setup
        counts = legality.legal_count_by_tile(dissection)
        assert set(counts) == {t.key for t in dissection.tiles()}
        assert sum(counts.values()) > 0


class TestLpBudget:
    def test_budget_respects_capacity(self, two_line_setup, fill_rules):
        _l, dissection, legality, density = two_line_setup
        capacity = legality.legal_count_by_tile(dissection)
        budget = lp_minvar_budget(density, capacity, fill_rules)
        for key, count in budget.items():
            assert 0 <= count <= capacity.get(key, 0)

    def test_budget_improves_min_density(self, two_line_setup, fill_rules):
        _l, dissection, legality, density = two_line_setup
        capacity = legality.legal_count_by_tile(dissection)
        budget = lp_minvar_budget(density, capacity, fill_rules)
        import numpy as np

        extra = np.zeros((dissection.nx, dissection.ny))
        for (ix, iy), count in budget.items():
            extra[ix, iy] = count * fill_rules.fill_area
        before = density.stats()
        after = density.added(extra).stats()
        assert after.min_density > before.min_density

    def test_budget_respects_max_density(self, two_line_setup, fill_rules):
        _l, dissection, legality, density = two_line_setup
        capacity = legality.legal_count_by_tile(dissection)
        budget = lp_minvar_budget(density, capacity, fill_rules, max_density=0.3)
        import numpy as np

        extra = np.zeros((dissection.nx, dissection.ny))
        for (ix, iy), count in budget.items():
            extra[ix, iy] = count * fill_rules.fill_area
        after = density.added(extra).stats()
        assert after.max_density <= 0.3 + 1e-6

    def test_target_density_caps_fill(self, two_line_setup, fill_rules):
        _l, dissection, legality, density = two_line_setup
        capacity = legality.legal_count_by_tile(dissection)
        unlimited = lp_minvar_budget(density, capacity, fill_rules)
        capped = lp_minvar_budget(
            density, capacity, fill_rules, target_density=density.stats().mean_density
        )
        assert sum(capped.values()) <= sum(unlimited.values())

    def test_two_phase_minimality(self, two_line_setup, fill_rules):
        """Phase 2 must not waste fill: zero-capacity tiles get zero and a
        dense layout near target gets little fill."""
        _l, dissection, legality, density = two_line_setup
        capacity = legality.legal_count_by_tile(dissection)
        target = density.stats().min_density  # already achieved everywhere
        budget = lp_minvar_budget(density, capacity, fill_rules, target_density=target)
        assert sum(budget.values()) == 0


class TestMonteCarloBudget:
    def test_respects_capacity(self, two_line_setup, fill_rules):
        _l, dissection, legality, density = two_line_setup
        capacity = legality.legal_count_by_tile(dissection)
        budget = montecarlo_budget(density, capacity, fill_rules, seed=3)
        for key, count in budget.items():
            assert 0 <= count <= capacity.get(key, 0)

    def test_deterministic_per_seed(self, two_line_setup, fill_rules):
        _l, dissection, legality, density = two_line_setup
        capacity = legality.legal_count_by_tile(dissection)
        a = montecarlo_budget(density, capacity, fill_rules, seed=5)
        b = montecarlo_budget(density, capacity, fill_rules, seed=5)
        assert a == b

    def test_improves_min_density(self, two_line_setup, fill_rules):
        _l, dissection, legality, density = two_line_setup
        capacity = legality.legal_count_by_tile(dissection)
        budget = montecarlo_budget(density, capacity, fill_rules, seed=1)
        import numpy as np

        extra = np.zeros((dissection.nx, dissection.ny))
        for (ix, iy), count in budget.items():
            extra[ix, iy] = count * fill_rules.fill_area
        assert density.added(extra).stats().min_density >= density.stats().min_density
        assert sum(budget.values()) > 0

    def test_max_steps_limits_insertions(self, two_line_setup, fill_rules):
        _l, dissection, legality, density = two_line_setup
        capacity = legality.legal_count_by_tile(dissection)
        budget = montecarlo_budget(density, capacity, fill_rules, seed=1, max_steps=5)
        assert sum(budget.values()) <= 5


class TestPlaceNormal:
    def test_places_exact_budget_and_drc_clean(self, two_line_setup, fill_rules):
        layout, dissection, legality, _ = two_line_setup
        budget = {t.key: 0 for t in dissection.tiles()}
        budget[(0, 0)] = 5
        budget[(1, 1)] = 3
        placed = place_normal(layout, "metal3", dissection, legality, budget, seed=0)
        assert len(placed) == 8
        assert validate_fill(layout, fill_rules).ok

    def test_seed_determinism(self, two_line_setup, fill_rules):
        layout, dissection, legality, _ = two_line_setup
        budget = {(0, 0): 4}
        a = place_normal(layout, "metal3", dissection, legality, budget, seed=9)
        layout.fills.clear()
        b = place_normal(layout, "metal3", dissection, legality, budget, seed=9)
        assert [f.rect for f in a] == [f.rect for f in b]

    def test_row_major_deterministic_order(self, two_line_setup):
        layout, dissection, legality, _ = two_line_setup
        budget = {(0, 0): 3}
        placed = place_normal(
            layout, "metal3", dissection, legality, budget, order="row_major"
        )
        rects = [f.rect for f in placed]
        assert rects == sorted(rects, key=lambda r: (r.ylo, r.xlo))

    def test_budget_exceeding_sites_raises(self, two_line_setup):
        layout, dissection, legality, _ = two_line_setup
        with pytest.raises(FillError, match="exceeds"):
            place_normal(layout, "metal3", dissection, legality, {(0, 0): 10 ** 6})

    def test_unknown_order_rejected(self, two_line_setup):
        layout, dissection, legality, _ = two_line_setup
        with pytest.raises(FillError):
            place_normal(layout, "metal3", dissection, legality, {}, order="spiral")
