"""Engine-level per-net capacitance-budgeted flow (paper §7 extension)."""

import pytest

from repro.pilfill import (
    EngineConfig,
    PILFillEngine,
    derive_net_cap_budgets,
    evaluate_impact,
)
from repro.tech import DensityRules


@pytest.fixture
def engine(small_generated_layout, fill_rules):
    cfg = EngineConfig(
        fill_rules=fill_rules,
        density_rules=DensityRules(window_size=16000, r=2, max_density=0.6),
        method="ilp2",
        backend="scipy",
    )
    return PILFillEngine(small_generated_layout, "metal3", cfg)


class TestRunBudgeted:
    def test_unconstrained_matches_plain_run_count(self, engine):
        plain = engine.run()
        budgeted = engine.run_budgeted({})
        assert budgeted.total_features == plain.total_features

    def test_generous_budgets_keep_count(self, engine, small_generated_layout):
        budgets = derive_net_cap_budgets(small_generated_layout, slack_fraction_ps=100.0)
        result = engine.run_budgeted(budgets)
        plain = engine.run()
        assert result.total_features == plain.total_features

    def test_tight_budgets_reduce_per_net_impact(self, engine, small_generated_layout, fill_rules):
        plain = engine.run()
        plain_impact = evaluate_impact(
            small_generated_layout, "metal3", plain.features, fill_rules
        )
        # Pick the worst-hit net and cut its allowance to near zero.
        if not plain_impact.per_net_weighted_ps:
            pytest.skip("no coupled fill in this layout")
        victim = max(plain_impact.per_net_weighted_ps,
                     key=plain_impact.per_net_weighted_ps.get)
        result = engine.run_budgeted({victim: 1e-9})
        impact = evaluate_impact(
            small_generated_layout, "metal3", result.features, fill_rules
        )
        before = plain_impact.per_net_weighted_ps[victim]
        after = impact.per_net_weighted_ps.get(victim, 0.0)
        assert after < before * 0.5

    def test_greedy_mode_runs(self, engine, small_generated_layout):
        budgets = derive_net_cap_budgets(small_generated_layout, slack_fraction_ps=0.01)
        result = engine.run_budgeted(budgets, exact=False)
        assert result.total_features >= 0
        assert result.shortfall >= 0

    def test_exact_beats_or_ties_greedy_on_objective(self, engine, small_generated_layout):
        budgets = derive_net_cap_budgets(small_generated_layout, slack_fraction_ps=0.05)
        exact = engine.run_budgeted(budgets, exact=True)
        greedy = engine.run_budgeted(budgets, exact=False)
        # Compare only when both placed the same feature count (otherwise
        # objectives aren't comparable).
        if exact.total_features == greedy.total_features:
            assert exact.model_objective_ps <= greedy.model_objective_ps * (1 + 1e-3) + 1e-9
